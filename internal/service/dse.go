// Design-space exploration endpoints and executors (see DESIGN.md
// "Design-space exploration").
//
// dse.sweep is an ORCHESTRATOR job: its runner expands a parameter grid
// (internal/dse) and fans each wave out as dse.point child jobs through the
// same queue, worker pool and result cache every other kind uses — so
// overlapping sweeps dedupe point evaluations content-addressed, a fleet
// coordinator schedules children like any other work, and a crash recovers
// the parent from the journal, which re-adopts its surviving children by
// key. As waves commit, the runner folds child metrics into a Pareto
// frontier and publishes a "frontier" event per wave on the parent's event
// log — the stream behind GET /v1/jobs/{id}/events.
//
// Determinism: for a fixed grid, objectives, wave size and prune policy the
// final frontier (and the whole result envelope) is byte-identical no
// matter how many workers ran the children, which tenants interleaved, or
// where a crash/recovery split the sweep — prune decisions read only fully
// committed waves (internal/dse's committed-prefix rule) and every child
// result is itself deterministic.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"qisim/internal/dse"
	"qisim/internal/jobs"
	"qisim/internal/microarch"
	"qisim/internal/obs"
	"qisim/internal/rescache"
	"qisim/internal/scalability"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// The grid axes a sweep may vary. design is categorical (named designs);
// distance and extra_gate_error are numeric.
const (
	axisDesign         = "design"
	axisDistance       = "distance"
	axisExtraGateError = "extra_gate_error"
)

// ---- dse.point: one grid-point evaluation ----

type dsePointParams struct {
	Design         string  `json:"design"`
	Distance       int     `json:"distance"`
	ExtraGateError float64 `json:"extra_gate_error"`
	Extended       bool    `json:"extended"`
}

// normalizeDSEPoint decodes and defaults dse.point params. The same
// normalization runs for direct submissions and for the children a sweep
// fans out, so both key (and therefore dedupe) identically.
func normalizeDSEPoint(raw json.RawMessage) (dsePointParams, microarch.Design, error) {
	var p dsePointParams
	if err := decodeParams(raw, &p); err != nil {
		return p, microarch.Design{}, err
	}
	if p.Design == "" {
		return p, microarch.Design{}, simerr.Invalidf("service: dse.point needs a design name")
	}
	d, ok := findDesign(p.Design)
	if !ok {
		return p, microarch.Design{}, simerr.Invalidf("service: unknown design %q", p.Design)
	}
	if p.Distance == 0 {
		p.Distance = 23
	}
	if p.Distance < 3 || p.Distance%2 == 0 {
		return p, microarch.Design{}, simerr.Invalidf("service: distance must be an odd integer >= 3, got %d", p.Distance)
	}
	if math.IsNaN(p.ExtraGateError) || p.ExtraGateError < 0 || p.ExtraGateError > 1 {
		return p, microarch.Design{}, simerr.Invalidf("service: extra_gate_error must be in [0,1], got %v", p.ExtraGateError)
	}
	return p, d, nil
}

func buildDSEPoint(raw json.RawMessage) (jobs.Kind, rescache.Key, jobs.Runner, error) {
	p, d, err := normalizeDSEPoint(raw)
	if err != nil {
		return "", "", nil, err
	}
	// Analyses are deterministic and seedless: seed 0 / shard 0 in the key.
	key, keyed, err := requestKey(jobs.KindDSEPoint, p, 0, 0)
	if err != nil {
		return "", "", nil, err
	}
	pp := p
	run := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		// The evaluation is analytic and near-instant, but a cancelled child
		// (a cascading parent cancel, a drain) must still finalize as a
		// Truncated partial — never compute-and-cache under a dead context.
		if ctx.Err() != nil {
			return nil, simrun.Status{Requested: 1, Truncated: true, StopReason: simrun.StopCanceled}, nil
		}
		opt := scalabilityOptions(pp.Distance, pp.Extended)
		m, err := scalability.AnalyzePointChecked(d, pp.ExtraGateError, opt)
		if err != nil {
			return nil, simrun.Status{}, err
		}
		progress(1, 1)
		st := simrun.Status{Requested: 1, Completed: 1, StopReason: simrun.StopCompleted}
		body, err := marshalEnvelope(jobs.KindDSEPoint, key, keyed, 0, 0, m)
		return body, st, err
	}
	return jobs.KindDSEPoint, key, run, nil
}

// ---- dse.sweep: grid expansion, fan-out, streamed Pareto frontier ----

type dseSweepParams struct {
	Axes       []dse.Axis      `json:"axes"`
	Objectives []dse.Objective `json:"objectives"`
	Wave       int             `json:"wave"`
	Prune      *bool           `json:"prune"`
	Distance   int             `json:"distance"`
	Extended   bool            `json:"extended"`
}

// defaultObjectives is the paper's headline trade-off: qubit capacity
// against 4 K power against logical error rate.
func defaultObjectives() []dse.Objective {
	return []dse.Objective{
		{Metric: scalability.MetricMaxQubits, Goal: dse.Max},
		{Metric: scalability.MetricPower4K, Goal: dse.Min},
		{Metric: scalability.MetricLogicalError, Goal: dse.Min},
	}
}

func knownPointMetric(name string) bool {
	switch name {
	case scalability.MetricMaxQubits, scalability.MetricLogicalError,
		scalability.MetricPower4K, scalability.MetricPower100mK,
		scalability.MetricPower20mK, scalability.MetricErrorLimit:
		return true
	}
	return false
}

// normalizeDSESweep decodes, defaults and validates sweep params, returning
// the normalized params (the cache-key basis) and the validated grid.
func normalizeDSESweep(raw json.RawMessage) (dseSweepParams, dse.Grid, error) {
	var p dseSweepParams
	var zero dse.Grid
	if err := decodeParams(raw, &p); err != nil {
		return p, zero, err
	}
	if p.Distance == 0 {
		p.Distance = 23
	}
	if p.Distance < 3 || p.Distance%2 == 0 {
		return p, zero, simerr.Invalidf("service: distance must be an odd integer >= 3, got %d", p.Distance)
	}
	if p.Wave < 0 {
		return p, zero, simerr.Invalidf("service: wave must be positive, got %d", p.Wave)
	}
	if p.Wave == 0 {
		p.Wave = dse.DefaultWave
	}
	if p.Prune == nil {
		t := true
		p.Prune = &t
	}
	if len(p.Objectives) == 0 {
		p.Objectives = defaultObjectives()
	}
	if err := dse.CheckObjectives(p.Objectives); err != nil {
		return p, zero, err
	}
	for _, o := range p.Objectives {
		if !knownPointMetric(o.Metric) {
			return p, zero, simerr.Invalidf("service: unknown objective metric %q", o.Metric)
		}
	}
	// A grid without a design axis sweeps every named design.
	hasDesign := false
	for _, a := range p.Axes {
		if a.Name == axisDesign {
			hasDesign = true
		}
	}
	if !hasDesign {
		names := []any{}
		for _, d := range microarch.AllDesigns() {
			names = append(names, d.Name)
		}
		p.Axes = append([]dse.Axis{{Name: axisDesign, Values: names}}, p.Axes...)
	}
	grid := dse.Grid{Axes: p.Axes}
	vals, err := grid.Expanded()
	if err != nil {
		return p, zero, err
	}
	for i, a := range p.Axes {
		switch a.Name {
		case axisDesign:
			if a.Values == nil {
				return p, zero, simerr.Invalidf("service: the design axis must list design names")
			}
			for _, v := range vals[i] {
				name, ok := v.(string)
				if !ok {
					return p, zero, simerr.Invalidf("service: design axis values must be strings, got %v", v)
				}
				if _, ok := findDesign(name); !ok {
					return p, zero, simerr.Invalidf("service: unknown design %q", name)
				}
			}
		case axisDistance:
			for _, v := range vals[i] {
				f, ok := v.(float64)
				if !ok || f != math.Trunc(f) || int(f) < 3 || int(f)%2 == 0 {
					return p, zero, simerr.Invalidf("service: distance axis values must be odd integers >= 3, got %v", v)
				}
			}
		case axisExtraGateError:
			for _, v := range vals[i] {
				f, ok := v.(float64)
				if !ok || f < 0 || f > 1 {
					return p, zero, simerr.Invalidf("service: extra_gate_error axis values must be in [0,1], got %v", v)
				}
			}
		default:
			return p, zero, simerr.Invalidf("service: unknown axis %q (axes: %s, %s, %s)",
				a.Name, axisDesign, axisDistance, axisExtraGateError)
		}
	}
	return p, grid, nil
}

// pointParamsFor projects one grid point onto dse.point params: swept axes
// override the sweep-level defaults.
func pointParamsFor(pt dse.Point, base dseSweepParams) dsePointParams {
	cp := dsePointParams{Distance: base.Distance, Extended: base.Extended}
	for name, v := range pt.Coords {
		switch name {
		case axisDesign:
			cp.Design, _ = v.(string)
		case axisDistance:
			if f, ok := v.(float64); ok {
				cp.Distance = int(f)
			}
		case axisExtraGateError:
			cp.ExtraGateError, _ = v.(float64)
		}
	}
	return cp
}

// sweepResult is the dse.sweep result body: the deterministic outcome (with
// its final frontier block) plus the run status.
type sweepResult struct {
	dse.Outcome
	Status simrun.Status `json:"status"`
}

func buildDSESweep(raw json.RawMessage, env buildEnv) (jobs.Kind, rescache.Key, jobs.Runner, error) {
	p, grid, err := normalizeDSESweep(raw)
	if err != nil {
		return "", "", nil, err
	}
	key, keyed, err := requestKey(jobs.KindDSESweep, p, 0, 0)
	if err != nil {
		return "", "", nil, err
	}
	pp := p
	run := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		if env.mgr == nil {
			return nil, simrun.Status{}, simerr.Invalidf("service: dse.sweep needs an orchestrating job manager")
		}
		parentID := obs.JobID(ctx)
		tenant := ""
		if snap, ok := env.mgr.Get(parentID); ok {
			tenant = snap.Tenant
		}
		pol := dse.Policy{Wave: pp.Wave, Prune: *pp.Prune}
		outcome, serr := dse.RunSweep(ctx, grid, pp.Objectives, pol,
			sweepBound(pp), sweepEval(env, pp, parentID, tenant),
			func(pr dse.Progress) {
				progress(pr.Evaluated+pr.Pruned, pr.Total)
				if env.publish != nil {
					env.publish(parentID, "frontier", pr)
				}
			})
		st := simrun.Status{
			Requested:  outcome.GridSize,
			Completed:  outcome.Evaluated + outcome.Pruned,
			StopReason: simrun.StopCompleted,
		}
		if serr != nil {
			if !errors.Is(serr, simerr.ErrInterrupted) {
				return nil, simrun.Status{}, serr
			}
			// Cancellation/drain: publish the frontier of the committed
			// prefix as a Truncated partial (never cached), mirroring the
			// Monte-Carlo partial-result contract.
			st.Truncated = true
			st.StopReason = simrun.StopCanceled
		}
		body, merr := marshalEnvelope(jobs.KindDSESweep, key, keyed, 0, 0, sweepResult{outcome, st})
		if merr != nil {
			return nil, simrun.Status{}, merr
		}
		return body, st, nil
	}
	return jobs.KindDSESweep, key, run, nil
}

// sweepBound builds the optimistic-bound function pruning decisions use.
// scalability.PointBound is optimistic under the default goal directions;
// for any objective it does not cover exactly — error_limit, or max_qubits
// under an inverted (min) goal — the bound falls back to the goal's best
// possible value, which disables pruning on that axis rather than risking
// an unsound prune.
func sweepBound(pp dseSweepParams) dse.BoundFn {
	return func(pt dse.Point) map[string]float64 {
		cp := pointParamsFor(pt, pp)
		d, ok := findDesign(cp.Design)
		if !ok {
			return nil // validated at normalize; nil never prunes via StrictlyDominates
		}
		b := scalability.PointBound(d, cp.ExtraGateError, scalabilityOptions(cp.Distance, pp.Extended))
		for _, o := range pp.Objectives {
			_, covered := b[o.Metric]
			inexactForGoal := o.Metric == scalability.MetricMaxQubits && o.Goal == dse.Min
			if !covered || inexactForGoal {
				if o.Goal == dse.Max {
					b[o.Metric] = math.Inf(1)
				} else {
					b[o.Metric] = math.Inf(-1)
				}
			}
		}
		return b
	}
}

// sweepEval fans one wave of points out as dse.point children of the
// running sweep and collects their metrics in point order. Children carry
// the parent's tenant (fair scheduling) and parent link (cancel cascade,
// WAL re-adoption) and dedupe through the result cache and singleflight
// like any other submission. A full queue is waited out — the parent runs
// on an orchestrator goroutine, so waiting here never starves the pool
// that must drain the queue.
func sweepEval(env buildEnv, pp dseSweepParams, parentID, tenant string) dse.EvalWave {
	return func(ctx context.Context, pts []dse.Point) ([]map[string]float64, error) {
		ids := make([]string, len(pts))
		for i, pt := range pts {
			cp := pointParamsFor(pt, pp)
			raw, err := json.Marshal(cp)
			if err != nil {
				return nil, simerr.Invalidf("service: marshal dse.point params: %v", err)
			}
			ckind, ckey, crun, err := buildDSEPoint(raw)
			if err != nil {
				return nil, err
			}
			for {
				if cerr := ctx.Err(); cerr != nil {
					return nil, simerr.Interruptedf("service: dse.sweep canceled while enqueuing wave: %v", cerr)
				}
				snap, outcome, serr := env.mgr.SubmitOpts(ckind, ckey, raw, crun,
					jobs.SubmitOptions{Tenant: tenant, Parent: parentID})
				if serr == nil {
					ids[i] = snap.ID
					if env.onChild != nil {
						env.onChild(ckind, outcome)
					}
					break
				}
				if !errors.Is(serr, jobs.ErrQueueFull) {
					return nil, serr
				}
				select {
				case <-ctx.Done():
					return nil, simerr.Interruptedf("service: dse.sweep canceled while enqueuing wave: %v", ctx.Err())
				case <-time.After(5 * time.Millisecond):
				}
			}
		}
		out := make([]map[string]float64, len(pts))
		for i, id := range ids {
			snap, err := env.mgr.Wait(ctx, id)
			if err != nil {
				return nil, err
			}
			switch {
			case snap.State == jobs.StateFailed:
				return nil, childError(snap)
			case snap.Status != nil && snap.Status.Truncated:
				return nil, simerr.Interruptedf("service: dse.point child %s truncated (%s)", id, snap.Status.StopReason)
			}
			m, err := pointMetricsFrom(snap.Result)
			if err != nil {
				return nil, err
			}
			out[i] = m
		}
		return out, nil
	}
}

// childError reconstructs a typed error from a failed child's snapshot so
// the parent's failure keeps the child's simerr class (and therefore its
// HTTP status).
func childError(snap jobs.Snapshot) error {
	msg := fmt.Sprintf("service: dse.point child %s failed: %s", snap.ID, snap.Error)
	switch snap.ErrorClass {
	case "invalid-config":
		return simerr.Invalidf("%s", msg)
	case "interrupted":
		return simerr.Interruptedf("%s", msg)
	case "budget-infeasible":
		return simerr.Budgetf("%s", msg)
	case "unsupported-qasm":
		return simerr.Unsupportedf("%s", msg)
	default:
		return simerr.Numericalf("%s", msg)
	}
}

// pointMetricsFrom extracts the metric map from a dse.point result envelope.
func pointMetricsFrom(body json.RawMessage) (map[string]float64, error) {
	var envl struct {
		Result map[string]float64 `json:"result"`
	}
	if err := json.Unmarshal(body, &envl); err != nil {
		return nil, simerr.Numericalf("service: decode dse.point result: %v", err)
	}
	if envl.Result == nil {
		return nil, simerr.Numericalf("service: dse.point result carries no metrics")
	}
	return envl.Result, nil
}

// ---- job listing, event streaming and cancellation endpoints ----

// List page bounds: an unbounded listing could serialize the whole record
// window (Config.MaxRecords) per poll.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// handleJobsList serves GET /v1/jobs: retained jobs newest first, filtered
// by ?kind= ?state= ?tenant= ?parent=, page-bounded by ?limit= (default
// 100, max 1000). Result bodies are stripped — fetch an individual job (or
// its cached result) for the payload.
func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := jobs.Filter{
		Kind:   jobs.Kind(q.Get("kind")),
		State:  jobs.State(q.Get("state")),
		Tenant: q.Get("tenant"),
		Parent: q.Get("parent"),
	}
	if f.Kind != "" && !f.Kind.Valid() {
		s.writeError(w, simerr.Invalidf("service: unknown kind %q (kinds: %v)", f.Kind, jobs.Kinds()))
		return
	}
	switch f.State {
	case "", jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed:
	default:
		s.writeError(w, simerr.Invalidf("service: unknown state %q (states: queued, running, done, failed)", f.State))
		return
	}
	limit := defaultListLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			s.writeError(w, simerr.Invalidf("service: limit must be a positive integer, got %q", raw))
			return
		}
		limit = n
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	snaps := s.mgr.List(f, limit)
	for i := range snaps {
		snaps[i].Result = nil
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs  []jobs.Snapshot `json:"jobs"`
		Count int             `json:"count"`
	}{snaps, len(snaps)})
}

// handleJobEvents serves GET /v1/jobs/{id}/events as Server-Sent Events:
// the job's retained event log replays first (id: carries the sequence
// number, so reconnecting clients can spot gaps), then live events stream
// until the job finalizes — the terminal state event is always last, after
// which the stream closes. Idle streams carry comment heartbeats
// (Config.SSEHeartbeat) so dead subscribers are reaped on the next tick
// rather than holding their event subscription until a real event fires.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	past, ch, cancel, ok := s.mgr.Subscribe(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	defer cancel()
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func(ev jobs.Event) error {
		// Event payloads are compact JSON (no newlines), so a single data:
		// line per event is always well-formed SSE framing.
		_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data)
		fl.Flush()
		return err
	}
	for _, ev := range past {
		if emit(ev) != nil {
			return
		}
	}
	var hb <-chan time.Time
	if s.sseHeartbeat > 0 {
		t := time.NewTicker(s.sseHeartbeat)
		defer t.Stop()
		hb = t.C
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // log sealed: the job finished
			}
			if emit(ev) != nil {
				return // dead subscriber: free the subscription now
			}
		case <-hb:
			// SSE comment line: ignored by clients, but the write fails
			// fast on a torn connection the context never noticed.
			if _, err := io.WriteString(w, ": hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleJobCancel serves DELETE /v1/jobs/{id}: cancels the job and — for a
// sweep parent — cascades to every child no other live parent or direct
// submission still needs. Victims finalize as Truncated partials; 202
// acknowledges the cascade has started, not that it has finished.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.mgr.Cancel(id) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "canceled": true})
}
