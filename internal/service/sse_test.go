package service

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
	"time"
)

// sseOpen attaches a streaming SSE consumer to a job's event feed and
// returns the response once headers have arrived (body left open).
func sseOpen(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("SSE subscribe: status %d", resp.StatusCode)
	}
	return resp
}

// TestSSEHeartbeatOnIdleStream pins the keep-alive contract: an event
// stream with no job activity still carries ": hb" comment frames at the
// configured interval.
func TestSSEHeartbeatOnIdleStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, SSEHeartbeat: 20 * time.Millisecond})

	// A long Monte-Carlo run keeps the job in-flight (and its event log
	// quiet) while we watch the stream.
	_, sr := postJob(t, ts, `{"kind":"surface.mc","params":{"distance":9,"shots":2000000,"shard_size":64,"seed":401}}`)
	id := sr.Job.ID

	resp := sseOpen(t, ts.URL+"/v1/jobs/"+id+"/events")
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	deadline := time.After(5 * time.Second)
	got := make(chan bool, 1)
	go func() {
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), ": hb") {
				got <- true
				return
			}
		}
		got <- false
	}()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("stream ended without a heartbeat comment")
		}
	case <-deadline:
		t.Fatal("no heartbeat within 5s at a 20ms interval")
	}

	// Tear the job down so cleanup's Drain doesn't wait out the slow run.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if dresp, err := http.DefaultClient.Do(req); err == nil {
		dresp.Body.Close()
	}
}

// TestSSEDeadSubscribersReaped proves disconnected event consumers release
// their subscriptions promptly (heartbeat write failure / context teardown)
// instead of leaking until the job finalizes.
func TestSSEDeadSubscribersReaped(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, SSEHeartbeat: 20 * time.Millisecond})

	_, sr := postJob(t, ts, `{"kind":"surface.mc","params":{"distance":9,"shots":2000000,"shard_size":64,"seed":402}}`)
	id := sr.Job.ID

	subs := make([]*http.Response, 3)
	for i := range subs {
		subs[i] = sseOpen(t, ts.URL+"/v1/jobs/"+id+"/events")
	}
	waitSubs := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if srv.mgr.Subscribers(id) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("subscribers stuck at %d, want %d", srv.mgr.Subscribers(id), want)
	}
	waitSubs(3)

	// Kill two consumers without any polite shutdown: the server must
	// notice on its own and reap their subscriptions.
	subs[0].Body.Close()
	subs[1].Body.Close()
	waitSubs(1)

	// The surviving consumer still holds its slot.
	if n := srv.mgr.Subscribers(id); n != 1 {
		t.Fatalf("live subscriber lost: %d", n)
	}
	subs[2].Body.Close()
	waitSubs(0)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if dresp, err := http.DefaultClient.Do(req); err == nil {
		dresp.Body.Close()
	}
}
