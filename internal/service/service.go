// Package service is qisimd's HTTP/JSON layer: it parses and normalizes job
// requests (params.go), routes them through the jobs.Manager (bounded queue,
// worker pool, singleflight) and the rescache content-addressed result cache,
// and exposes Prometheus-format observability.
//
// Routes (Go 1.22 method+wildcard mux):
//
//	POST   /v1/jobs             submit a job   → 202 (queued/coalesced) or 200 (cached)
//	GET    /v1/jobs             list retained jobs (?kind= ?state= ?tenant=
//	                            ?parent= ?limit=; newest first, results stripped)
//	GET    /v1/jobs/{id}        job snapshot   → state, live progress, result/error
//	DELETE /v1/jobs/{id}        cancel the job (cascades to sweep children)
//	GET    /v1/jobs/{id}/events SSE stream of the job's event log (state
//	                            transitions plus per-wave "frontier" events)
//	GET    /v1/results/{key}    cached result  → the byte-exact stored body
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness: 200 while the process serves, 503 draining
//	GET    /readyz              readiness: 503 while recovering the journal,
//	                            draining, or with a saturated queue
//
// Error mapping mirrors the CLI exit-code contract (simerr codes 3–7):
//
//	interrupted        → 503    invalid-config   → 400
//	numerical          → 500    budget-infeasible → 422
//	unsupported-qasm   → 501    queue full       → 429
//	body too large     → 413
//
// With Config.DataDir set the server is crash-safe: every accepted
// submission is write-ahead-logged (internal/jobs journal) and every
// Monte-Carlo run checkpoints its committed shard prefix
// (internal/checkpoint). Recover() replays the journal on boot and
// resubmits unresolved jobs, which resume from their snapshots — the
// deterministic engine makes the recovered results byte-identical to what
// the interrupted life would have produced.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qisim/internal/buildinfo"
	"qisim/internal/chaos"
	"qisim/internal/dist"
	"qisim/internal/jobs"
	"qisim/internal/metrics"
	"qisim/internal/obs"
	"qisim/internal/rescache"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// Config parameterises a Server.
type Config struct {
	// Workers is the job worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job backlog (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (<= 0 uses the default of 256 —
	// the cache is integral to the service contract, so it cannot be
	// disabled from here).
	CacheEntries int
	// MaxRecords bounds retained finished-job records (default 1024).
	MaxRecords int
	// JobTimeout caps each job's wall clock (0 = none).
	JobTimeout time.Duration
	// BaseContext is the ancestor of every job context (tests / fault
	// injection inject deterministic cancellation here).
	BaseContext context.Context
	// DataDir enables crash-safe persistence: the job journal lives at
	// DataDir/journal.wal and Monte-Carlo checkpoints under
	// DataDir/checkpoints. Empty = fully in-memory (the pre-existing
	// behaviour); jobs and results then do not survive a restart.
	DataDir string
	// MaxBodyBytes bounds the request body accepted by POST /v1/jobs
	// (default 1 MiB; overflow is a 413). QASM programs are the largest
	// legitimate payload and fit comfortably.
	MaxBodyBytes int64
	// Logger receives the service's structured lifecycle records (job
	// submissions, state transitions, recovery). Nil = silent.
	Logger *slog.Logger
	// TraceMaxSpans bounds each job's span buffer. 0 = obs.DefaultMaxSpans
	// (per-job tracing on by default — the source of GET
	// /v1/jobs/{id}/trace and the qisimd_stage_seconds histograms);
	// negative disables job tracing entirely.
	TraceMaxSpans int
	// Dist, when Enabled, turns this server into a fleet coordinator: MC
	// jobs are dispatched across registered workers with leases, retries,
	// work stealing and graceful local fallback (see dist.go).
	Dist DistConfig
	// TenantQuota bounds each tenant's in-flight top-level jobs (0 =
	// unlimited). Exceeding it is a 429 with a distinct quota-exceeded
	// body; a sweep's internal fan-out is accounted to its parent, not the
	// quota.
	TenantQuota int
	// MaxEventsPerJob bounds each job's retained event log (the replay
	// window of GET /v1/jobs/{id}/events). 0 = the jobs-layer default.
	MaxEventsPerJob int
	// SSEHeartbeat is the interval between comment heartbeats (": hb")
	// written on idle GET /v1/jobs/{id}/events streams. Heartbeats keep
	// intermediaries from timing out the connection and, more importantly,
	// surface dead subscribers: a failed heartbeat write tears the stream
	// down and frees its event subscription instead of leaking it until
	// the next real event. 0 = 15s; negative disables heartbeats.
	SSEHeartbeat time.Duration
}

// DefaultMaxBodyBytes bounds POST bodies when Config.MaxBodyBytes is unset.
const DefaultMaxBodyBytes = 1 << 20

// Server wires the request layer, the job manager, the cache and the metrics
// registry together.
type Server struct {
	mgr     *jobs.Manager
	cache   *rescache.Cache
	reg     *metrics.Registry
	mux     *http.ServeMux
	journal *jobs.Journal // nil without DataDir
	ckptDir string        // "" without DataDir

	queueDepth   int
	maxBodyBytes int64
	ready        atomic.Bool // true once Recover has replayed the journal

	log *slog.Logger

	mSubmitted *metrics.CounterVec // kind
	mFinished  *metrics.CounterVec // kind, state
	mTruncated *metrics.CounterVec // kind
	mErrors    *metrics.CounterVec // kind, class
	mSeconds   *metrics.HistogramVec
	mCacheHits *metrics.Counter
	mCacheMiss *metrics.Counter
	mCoalesced *metrics.Counter
	mRejected  *metrics.CounterVec // reason
	mQuotaRej  *metrics.Counter    // tenant-quota 429s specifically
	mShots     *metrics.Counter

	mRecovered      *metrics.Counter // journaled jobs resubmitted at boot
	mResumed        *metrics.Counter // runs that resumed from a checkpoint
	mRecoveryFailed *metrics.Counter // journaled jobs that could not be rebuilt
	mCkptSaved      *metrics.Counter // checkpoint snapshots written

	mStageSeconds *metrics.HistogramVec // per-stage span durations, from traces
	mShardSeconds *metrics.Histogram    // per-shard span durations
	mQueueWait    *metrics.Histogram    // queue.wait span durations

	// Fleet-coordinator state (nil / zero unless Config.Dist.Enabled).
	dist             *dist.Coordinator
	distCancel       context.CancelFunc
	baseCtx          context.Context
	mDegraded        *metrics.Counter
	mDistUnitSeconds *metrics.HistogramVec

	sseHeartbeat time.Duration // interval between SSE comment heartbeats

	// Observability plane (see fleet.go): RED middleware around every
	// route, the always-on flight recorder, and the chaos-injection export.
	red     *metrics.RED
	flight  *obs.FlightRecorder
	dataDir string // "" = no flight-last.json crash persistence

	chaosMu      sync.Mutex
	chaosSources []chaosSource // feeds qisimd_chaos_injected_total
}

// New builds a Server (workers not yet running — call Start; with DataDir,
// also call Recover after Start to replay the journal). The only error
// source is an unusable DataDir/journal.
func New(cfg Config) (*Server, error) {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	traceMaxSpans := cfg.TraceMaxSpans
	switch {
	case traceMaxSpans == 0:
		traceMaxSpans = obs.DefaultMaxSpans
	case traceMaxSpans < 0:
		traceMaxSpans = 0 // disables job tracing in the manager
	}
	sseHeartbeat := cfg.SSEHeartbeat
	switch {
	case sseHeartbeat == 0:
		sseHeartbeat = 15 * time.Second
	case sseHeartbeat < 0:
		sseHeartbeat = 0 // disables heartbeats
	}
	s := &Server{
		cache:        rescache.New(cfg.CacheEntries),
		reg:          metrics.New(),
		queueDepth:   cfg.QueueDepth,
		maxBodyBytes: cfg.MaxBodyBytes,
		baseCtx:      cfg.BaseContext,
		log:          obs.OrDiscard(cfg.Logger),
		sseHeartbeat: sseHeartbeat,
		flight:       obs.NewFlightRecorder(0),
		dataDir:      cfg.DataDir,
	}
	if cfg.DataDir != "" {
		journal, err := jobs.OpenJournal(filepath.Join(cfg.DataDir, "journal.wal"))
		if err != nil {
			return nil, err
		}
		s.journal = journal
		journal.Observe(func(op, key string) {
			s.flight.Record("journal.append",
				obs.String("op", op), obs.String("key", key))
		})
		s.ckptDir = filepath.Join(cfg.DataDir, "checkpoints")
	} else {
		// Nothing to recover: the server is ready as soon as it starts.
		s.ready.Store(true)
	}
	s.mSubmitted = s.reg.CounterVec("qisimd_jobs_submitted_total",
		"Job submissions accepted (queued, coalesced or served from cache).", "kind")
	s.mFinished = s.reg.CounterVec("qisimd_jobs_finished_total",
		"Executed jobs by terminal state.", "kind", "state")
	s.mTruncated = s.reg.CounterVec("qisimd_jobs_truncated_total",
		"Jobs that finished with a Truncated partial result (drain/deadline).", "kind")
	s.mErrors = s.reg.CounterVec("qisimd_job_errors_total",
		"Failed jobs by simerr class.", "kind", "class")
	s.mSeconds = s.reg.HistogramVec("qisimd_job_seconds",
		"Job execution wall clock.", metrics.DefaultLatencyBuckets(), "kind")
	s.mCacheHits = s.reg.Counter("qisimd_cache_hits_total",
		"Submissions served byte-exactly from the result cache.")
	s.mCacheMiss = s.reg.Counter("qisimd_cache_misses_total",
		"Submissions that required a computation (no cached result).")
	s.mCoalesced = s.reg.Counter("qisimd_jobs_coalesced_total",
		"Duplicate submissions attached to an already-in-flight job.")
	s.mRejected = s.reg.CounterVec("qisimd_jobs_rejected_total",
		"Refused submissions by reason (queue-full, quota-exceeded, draining, invalid, ...).", "reason")
	s.mQuotaRej = s.reg.Counter("qisimd_quota_rejections_total",
		"Submissions refused because the tenant hit its in-flight top-level job quota.")
	s.mShots = s.reg.Counter("qisimd_shots_total",
		"Monte-Carlo shots committed across all finished jobs.")
	s.mRecovered = s.reg.Counter("qisimd_jobs_recovered_total",
		"Journaled jobs resubmitted during boot recovery.")
	s.mResumed = s.reg.Counter("qisimd_jobs_resumed_total",
		"Runs that resumed from a crash-safe checkpoint instead of starting cold.")
	s.mRecoveryFailed = s.reg.Counter("qisimd_jobs_recovery_failed_total",
		"Journaled jobs that could not be rebuilt or resubmitted at boot.")
	s.mCkptSaved = s.reg.Counter("qisimd_checkpoints_saved_total",
		"Checkpoint snapshots written by Monte-Carlo runners.")
	s.mStageSeconds = s.reg.HistogramVec("qisimd_stage_seconds",
		"Per-stage wall clock from finished job traces (stage = span name).",
		metrics.DefaultLatencyBuckets(), "stage")
	s.mShardSeconds = s.reg.Histogram("qisimd_shard_seconds",
		"Monte-Carlo shard execution wall clock, one observation per shard.",
		metrics.DefaultLatencyBuckets())
	s.mQueueWait = s.reg.Histogram("qisimd_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.",
		metrics.DefaultLatencyBuckets())
	s.mDegraded = s.reg.Counter("qisimd_degraded_runs_total",
		"Coordinator-routed runs that fell back to fully local execution (zero live workers).")
	bi := buildinfo.Resolve()
	s.reg.GaugeVec("qisimd_build_info",
		"Build identity of this process; the value is a constant 1, the identity lives in the labels.",
		"version", "vcs").With(bi.Version, bi.Commit).Set(1)
	s.reg.CounterFuncN("qisimd_chaos_injected_total",
		"Faults injected by the chaos layer, by side (server = /v1/dist middleware, client = worker transport) and fault kind.",
		[]string{"side", "fault"}, s.chaosSamples)
	if cfg.Dist.Enabled {
		s.initDist(cfg)
	}

	s.mgr = jobs.NewManager(jobs.Config{
		Workers:         cfg.Workers,
		QueueDepth:      cfg.QueueDepth,
		JobTimeout:      cfg.JobTimeout,
		MaxRecords:      cfg.MaxRecords,
		TenantQuota:     cfg.TenantQuota,
		MaxEventsPerJob: cfg.MaxEventsPerJob,
		Cache:           s.cache,
		Journal:         s.journal,
		BaseContext:     cfg.BaseContext,
		Logger:          cfg.Logger,
		TraceMaxSpans:   traceMaxSpans,
		Hooks: jobs.Hooks{
			JobFinished: func(id string, kind jobs.Kind, state jobs.State, errClass string, st *simrun.Status, dur time.Duration) {
				s.mFinished.With(string(kind), string(state)).Inc()
				s.mSeconds.With(string(kind)).Observe(dur.Seconds())
				if errClass != "" {
					s.mErrors.With(string(kind), errClass).Inc()
				}
				if st != nil {
					s.mShots.Add(float64(st.Completed))
					if st.Truncated {
						s.mTruncated.With(string(kind)).Inc()
					}
				}
				s.observeTrace(id)
			},
			JobPanicked: func(id string, recovered any) {
				// The panic backstop is the last stop before the evidence
				// is flattened into a typed error: persist the flight ring
				// so the crash context survives the process.
				s.flight.Record("job.panic",
					obs.String("job", id), obs.String("panic", fmt.Sprint(recovered)))
				s.persistFlight()
			},
		},
	})

	// Sampled-at-scrape-time views over the cache and the queue.
	s.reg.CounterFunc("qisimd_cache_corruptions_total",
		"Cache entries dropped by checksum verification (recomputed, never served).",
		func() float64 { return float64(s.cache.Stats().Corruptions) })
	s.reg.CounterFunc("qisimd_cache_evictions_total",
		"Cache entries evicted by the LRU bound.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	s.reg.GaugeFunc("qisimd_cache_entries",
		"Resident result-cache entries.",
		func() float64 { return float64(s.cache.Len()) })
	s.reg.GaugeFuncVec("qisimd_cache_entries_by_kind",
		"Resident result-cache entries broken down by job kind.",
		"kind", func() map[string]float64 {
			counts := s.cache.KindCounts()
			out := make(map[string]float64, len(counts))
			for k, n := range counts {
				out[k] = float64(n)
			}
			return out
		})
	s.reg.GaugeFunc("qisimd_queue_depth",
		"Jobs queued but not yet running.",
		func() float64 { return float64(s.mgr.QueueDepth()) })
	s.reg.GaugeFunc("qisimd_jobs_inflight",
		"Jobs queued or running.",
		func() float64 { return float64(s.mgr.InFlight()) })
	if s.journal != nil {
		s.reg.CounterFunc("qisimd_journal_replayed_entries_total",
			"Valid journal entries folded during boot replay.",
			func() float64 { return float64(s.journal.Stats().Replayed) })
		s.reg.CounterFunc("qisimd_journal_torn_entries_total",
			"Undecodable journal tail records discarded during boot replay.",
			func() float64 { return float64(s.journal.Stats().Torn) })
		s.reg.CounterFunc("qisimd_journal_append_errors_total",
			"Journal record writes that failed (durability degraded).",
			func() float64 { return float64(s.journal.Stats().AppendErrors) })
	}

	s.red = metrics.NewRED(s.reg)
	mux := http.NewServeMux()
	// Every route — including the chaos-wrapped dist endpoints — is served
	// through the RED middleware, composed OUTSIDE the fault injector so
	// injected 5xx/aborts are measured like any organic response. The route
	// label is the mux pattern (bounded cardinality), not the raw path.
	handle := func(pattern string, h http.Handler) {
		route := pattern[strings.IndexByte(pattern, ' ')+1:]
		mux.Handle(pattern, s.red.Wrap(route, h))
	}
	handle("POST /v1/jobs", http.HandlerFunc(s.handleSubmit))
	handle("GET /v1/jobs", http.HandlerFunc(s.handleJobsList))
	handle("GET /v1/jobs/{id}", http.HandlerFunc(s.handleJob))
	handle("DELETE /v1/jobs/{id}", http.HandlerFunc(s.handleJobCancel))
	handle("GET /v1/jobs/{id}/events", http.HandlerFunc(s.handleJobEvents))
	handle("GET /v1/jobs/{id}/trace", http.HandlerFunc(s.handleTrace))
	handle("GET /v1/results/{key}", http.HandlerFunc(s.handleResult))
	handle("GET /metrics", s.reg.Handler())
	handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	handle("GET /readyz", http.HandlerFunc(s.handleReadyz))
	handle("GET /v1/fleet/status", http.HandlerFunc(s.handleFleetStatus))
	handle("GET /v1/debug/flight", http.HandlerFunc(s.handleFlight))
	if s.dist != nil {
		// With a chaos spec configured, every fleet RPC endpoint is
		// served through the fault-injection middleware so a single
		// coordinator process can rehearse the full failure taxonomy
		// (latency, 5xx bursts, aborts, duplicated deliveries) against
		// real workers. One middleware per route keeps each route's
		// seeded fault schedule independent of traffic on its siblings.
		distHandler := func(h http.HandlerFunc) http.Handler {
			if cfg.Dist.Chaos == nil {
				return h
			}
			mw := chaos.NewMiddleware(*cfg.Dist.Chaos, h)
			mw.OnInject(func(fault string) {
				s.flight.Record("chaos.inject",
					obs.String("side", "server"), obs.String("fault", fault))
			})
			s.RegisterChaosStats("server", mw.Stats)
			return mw
		}
		handle("POST /v1/dist/register", distHandler(s.handleDistRegister))
		handle("POST /v1/dist/claim", distHandler(s.handleDistClaim))
		handle("POST /v1/dist/renew", distHandler(s.handleDistRenew))
		handle("POST /v1/dist/report", distHandler(s.handleDistReport))
	}
	s.mux = mux
	return s, nil
}

// Start launches the worker pool (and, as a coordinator, the lease-sweep
// and health-probe loops). Idempotent.
func (s *Server) Start() {
	s.mgr.Start()
	s.startDist()
}

// observeTrace folds one finished job's trace into the stage-latency
// histograms: every span contributes to qisimd_stage_seconds{stage=<name>},
// shard spans additionally to qisimd_shard_seconds and the queue.wait span
// to qisimd_queue_wait_seconds. No-op when the job recorded no trace.
func (s *Server) observeTrace(id string) {
	trace, _, ok := s.mgr.Trace(id)
	if !ok {
		return
	}
	for _, sp := range trace.Spans {
		secs := float64(sp.DurNS()) / 1e9
		s.mStageSeconds.With(sp.Name).Observe(secs)
		switch sp.Name {
		case "shard":
			s.mShardSeconds.Observe(secs)
		case "queue.wait":
			s.mQueueWait.Observe(secs)
		}
	}
}

// env is the execution environment handed to the per-kind job builders.
func (s *Server) env() buildEnv {
	return buildEnv{
		ckptDir:    s.ckptDir,
		onSaves:    func(n int) { s.mCkptSaved.Add(float64(n)) },
		onResume:   func() { s.mResumed.Inc() },
		dist:       s.dist,
		onDegraded: func() { s.mDegraded.Inc() },
		mgr:        s.mgr,
		onChild: func(kind jobs.Kind, outcome jobs.Outcome) {
			s.mSubmitted.With(string(kind)).Inc()
			switch outcome {
			case jobs.OutcomeCached:
				s.mCacheHits.Inc()
			case jobs.OutcomeCoalesced:
				s.mCoalesced.Inc()
			default:
				s.mCacheMiss.Inc()
			}
		},
		publish: func(id, typ string, data any) { s.mgr.Publish(id, typ, data) }, //nolint:errcheck
	}
}

// Recover replays the job journal: every unresolved submission — queued or
// running when the previous life died — is rebuilt from its journaled
// params and resubmitted. Runs that already committed a shard prefix resume
// from their checkpoint, so no completed work is recomputed and the final
// bytes are identical to what an uninterrupted life would have produced.
// The journal is compacted first so file growth stays bounded across
// restarts. Recover flips the /readyz gate once replay is finished; servers
// without a DataDir are born ready and Recover is a no-op. Call after
// Start.
func (s *Server) Recover() (int, error) {
	defer s.ready.Store(true)
	if s.journal == nil {
		return 0, nil
	}
	pending := s.journal.Pending()
	if err := s.journal.Compact(); err != nil {
		// Compaction failure degrades disk usage, not correctness.
		s.mRecoveryFailed.Inc()
	}
	pendingKeys := make(map[string]bool, len(pending))
	for _, p := range pending {
		pendingKeys[string(p.Key)] = true
	}
	recovered := 0
	for _, p := range pending {
		if p.Parent != "" && pendingKeys[p.Parent] {
			// A child whose parent sweep is itself pending: the resubmitted
			// parent re-expands its grid and re-adopts the child under a
			// fresh parent link (same key → the journal entry retires when
			// the re-adopted run commits), so resubmitting it here would
			// only detach it from the cancel cascade.
			continue
		}
		kind, key, run, err := buildJob(jobRequest{Kind: string(p.Kind), Params: p.Params}, s.env())
		if err != nil || key != p.Key {
			// The journaled request no longer normalizes to the same key
			// (version drift) or no longer validates: journal a failure so
			// it is not retried forever, and count it.
			s.journal.Append(jobs.OpFailed, p.Kind, p.Key, nil) //nolint:errcheck
			s.mRecoveryFailed.Inc()
			continue
		}
		opts := jobs.SubmitOptions{
			Tenant: p.Tenant,
			// A recovered sweep parent must get its orchestrator goroutine
			// back, or its fan-out could deadlock a small pool.
			Orchestrator: kind == jobs.KindDSESweep,
		}
		if _, _, err := s.mgr.SubmitOpts(kind, key, p.Params, run, opts); err != nil {
			s.mRecoveryFailed.Inc()
			continue
		}
		s.mSubmitted.With(string(kind)).Inc()
		s.mRecovered.Inc()
		recovered++
	}
	return recovered, nil
}

// Ready reports whether the server has finished journal recovery.
func (s *Server) Ready() bool { return s.ready.Load() }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting work, cancels in-flight jobs (they surface as
// Truncated partials — journaled as such, so the next boot resumes them
// from their checkpoints) and waits for the pool (bounded by ctx). The
// journal's append handle closes once the pool has committed every final
// record.
func (s *Server) Drain(ctx context.Context) error {
	if s.distCancel != nil {
		s.distCancel() // stop the coordinator's sweep/probe loops
	}
	err := s.mgr.Drain(ctx)
	if err == nil && s.journal != nil {
		s.journal.Close() //nolint:errcheck
	}
	return err
}

// Registry exposes the metrics registry (tests, extra collectors).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Cache exposes the result cache (tests, fault injection).
func (s *Server) Cache() *rescache.Cache { return s.cache }

// Manager exposes the job manager (tests).
func (s *Server) Manager() *jobs.Manager { return s.mgr }

// Flight exposes the always-on flight recorder so the process shell (SIGQUIT
// handler, fleet-worker loop, tests) can record into and dump the same ring
// the HTTP debug endpoint serves.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// submitResponse is the POST /v1/jobs body.
type submitResponse struct {
	Outcome string        `json:"outcome"` // queued | coalesced | cached
	Job     jobs.Snapshot `json:"job"`
}

// errorResponse is every error body.
type errorResponse struct {
	Error string `json:"error"`
	Class string `json:"class,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Bound the body BEFORE decoding: an oversized (or unbounded) payload
	// is refused with 413 instead of being buffered into memory.
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.mRejected.With("too-large").Inc()
			s.writeError(w, err) // httpStatus maps *http.MaxBytesError → 413
			return
		}
		s.mRejected.With("invalid").Inc()
		s.writeError(w, simerr.Invalidf("service: bad request body: %v", err))
		return
	}
	kind, key, run, err := buildJob(req, s.env())
	if err != nil {
		s.mRejected.With("invalid").Inc()
		s.writeError(w, err)
		return
	}
	if req.TimeoutMS > 0 {
		// Per-request deadline: flows through the job context into the
		// engine, and — on a coordinator — into every lease grant, so
		// fleet workers inherit it end to end.
		run = withTimeout(run, time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	snap, outcome, err := s.mgr.SubmitOpts(kind, key, req.Params, run, jobs.SubmitOptions{
		// The tenant header feeds fair round-robin scheduling and quotas;
		// it is an attribution, not part of the cache key — identical
		// requests from different tenants still dedupe.
		Tenant: r.Header.Get("X-QIsim-Tenant"),
		// A sweep parent blocks on its own fan-out, so it must never
		// occupy a pool slot (see jobs.SubmitOptions.Orchestrator).
		Orchestrator: kind == jobs.KindDSESweep,
	})
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQuotaExceeded):
			// Distinct from queue saturation: the queue may be empty — it is
			// THIS tenant that is over budget, and only its own completions
			// free the slot.
			s.mRejected.With("quota-exceeded").Inc()
			s.mQuotaRej.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error(), Class: "quota-exceeded"})
			return
		case errors.Is(err, jobs.ErrQueueFull):
			s.mRejected.With("queue-full").Inc()
			// Tell well-behaved clients (including fleet workers' shared
			// backoff helper) when to come back instead of hammering.
			w.Header().Set("Retry-After", "1")
		case s.mgr.Draining():
			s.mRejected.With("draining").Inc()
		default:
			s.mRejected.With("error").Inc()
		}
		s.writeError(w, err)
		return
	}
	s.mSubmitted.With(string(kind)).Inc()
	code := http.StatusAccepted
	switch outcome {
	case jobs.OutcomeCached:
		s.mCacheHits.Inc()
		code = http.StatusOK
	case jobs.OutcomeCoalesced:
		s.mCoalesced.Inc()
	default:
		s.mCacheMiss.Inc()
	}
	writeJSON(w, code, submitResponse{Outcome: outcome.String(), Job: snap})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleTrace serves a finished job's span tree. State machine:
//
//	unknown job, or a terminal job that recorded no trace
//	(cache hit / tracing disabled)                          → 404
//	job still queued or running                             → 202 {state}
//	finished job with a trace                               → 200
//
// Formats (?format=): "json" (default) the obs.Trace object, "chrome"
// Chrome trace_event JSON for chrome://tracing / Perfetto, "tree" the
// indented text outline.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	trace, state, ok := s.mgr.Trace(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + id})
		return
	}
	if state == jobs.StateQueued || state == jobs.StateRunning {
		writeJSON(w, http.StatusAccepted, map[string]string{
			"state": string(state), "error": "trace not available until the job finishes"})
		return
	}
	if len(trace.Spans) == 0 {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "no trace recorded for job " + id + " (cached result or tracing disabled)"})
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, trace)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		trace.WriteChrome(w) //nolint:errcheck
	case "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(trace.TreeString())) //nolint:errcheck
	default:
		s.writeError(w, simerr.Invalidf("service: unknown trace format %q (want json|chrome|tree)",
			r.URL.Query().Get("format")))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := rescache.Key(r.PathValue("key"))
	if !key.Valid() {
		s.writeError(w, simerr.Invalidf("service: malformed result key %q", string(key)))
		return
	}
	body, ok := s.cache.Get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "no cached result for key " + string(key)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.mgr.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the load-balancer gate: the server is ready only once the
// journal has been replayed, while it is not draining, and while the
// bounded queue still has room. Unlike /healthz (liveness) a 503 here means
// "send traffic elsewhere", not "restart me".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.mgr.Draining():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
	case s.mgr.QueueDepth() >= s.queueDepth:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// httpStatus maps a typed error to its HTTP status, mirroring the CLI
// exit-code mapping one protocol over.
func httpStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge // 413
	}
	switch {
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrQuotaExceeded):
		return http.StatusTooManyRequests // 429
	case errors.Is(err, simerr.ErrInterrupted):
		return http.StatusServiceUnavailable // 503 (exit 3)
	case errors.Is(err, simerr.ErrInvalidConfig):
		return http.StatusBadRequest // 400 (exit 4)
	case errors.Is(err, simerr.ErrNumerical):
		return http.StatusInternalServerError // 500 (exit 5)
	case errors.Is(err, simerr.ErrBudgetInfeasible):
		return http.StatusUnprocessableEntity // 422 (exit 6)
	case errors.Is(err, simerr.ErrUnsupportedQASM):
		return http.StatusNotImplemented // 501 (exit 7)
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), errorResponse{Error: err.Error(), Class: simerr.Class(err)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
