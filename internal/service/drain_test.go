package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"qisim/internal/jobs"
)

// waitForGoroutines is the no-leak check shared with the internal/simrun and
// internal/jobs suites: the goroutine count must return to the pre-run
// baseline within a grace period.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestDrainTruncatesInFlight is the graceful-shutdown contract end to end:
// a long-running job caught by a drain finishes DONE with a Truncated
// partial result (served as JSON through the job snapshot), new submissions
// are refused with 503, the partial never reaches the cache, and no worker
// goroutines leak.
func TestDrainTruncatesInFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A job long enough to still be running when the drain lands: the
	// sharded engine commits 64-shot shards, so a truncated run still
	// carries the contiguous prefix it paid for.
	long := `{"kind":"surface.mc","params":{"distance":9,"shots":4000000,"shard_size":64,"seed":7}}`
	code, sr := postJob(t, ts, long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}

	// Wait for the worker to pick it up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, ok := srv.Manager().Get(sr.Job.ID)
		if ok && snap.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", snap.State)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The in-flight job surfaced as a Truncated partial, not a failure.
	snap := waitDone(t, ts, sr.Job.ID)
	if snap.State != jobs.StateDone {
		t.Fatalf("drained job state %s (%s: %s)", snap.State, snap.ErrorClass, snap.Error)
	}
	if snap.Status == nil || !snap.Status.Truncated {
		t.Fatalf("drained job status %+v, want Truncated", snap.Status)
	}
	if snap.Status.Completed >= snap.Status.Requested {
		t.Fatalf("drained job completed %d/%d — did not actually truncate",
			snap.Status.Completed, snap.Status.Requested)
	}
	if len(snap.Result) == 0 {
		t.Fatal("truncated job lost its partial result body")
	}
	if !strings.Contains(string(snap.Result), `"truncated":true`) {
		t.Fatalf("partial result JSON not flagged truncated: %s", clip(snap.Result))
	}

	// Truncated partials must never enter the content-addressed cache.
	if srv.Cache().Contains(sr.Job.Key) {
		t.Fatal("truncated partial was cached")
	}

	// Draining service refuses new work with 503 and reports unhealthy.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(smallMC))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, want 503", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: status %d, want 503", code)
	}
	if n := scrapeMetric(t, ts, `qisimd_jobs_truncated_total{kind="surface.mc"}`); n != 1 {
		t.Fatalf("truncated metric = %v, want 1", n)
	}

	// Idle HTTP keep-alives aside, the worker pool must be fully gone.
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	waitForGoroutines(t, baseline)
}

// TestDrainIsIdempotentAndBounded: double-drain is safe, and a drain with an
// already-expired context still returns (with the interrupted class) rather
// than hanging.
func TestDrainIsIdempotent(t *testing.T) {
	srv, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	ctx := context.Background()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if !srv.Manager().Draining() {
		t.Fatal("manager not marked draining")
	}
}

func clip(b []byte) string {
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
