package dsp

import (
	"math"
	"testing"
)

const (
	rxFs      = 2.5e9
	rxBase    = 100e6
	rxSpacing = 40e6
	// One Horse Ridge readout window: 400 ns of sampling at 2.5 GS/s.
	rxSamples = 1000
)

func TestSingleToneRecovery(t *testing.T) {
	tone := RXTone{FreqHz: rxBase, PhaseRad: 0.6, Amp: 1}
	w := MultiTone([]RXTone{tone}, rxFs, rxSamples)
	d := DownConverter{FreqHz: rxBase, FsHz: rxFs}
	i, q := d.Demodulate(w)
	amp := math.Hypot(i, q)
	if math.Abs(amp-1) > 0.02 {
		t.Fatalf("recovered amplitude %v, want 1", amp)
	}
	if ph := d.RecoveredPhase(w); math.Abs(ph-0.6) > 0.02 {
		t.Fatalf("recovered phase %v, want 0.6", ph)
	}
}

func TestEightChannelFDMSeparation(t *testing.T) {
	// The state-encoding phases of all 8 channels must come back through
	// one shared waveform — the whole point of the 8-way readout FDM.
	tones := FDMReadoutPlan(8, rxBase, rxSpacing)
	for c := range tones {
		if c%2 == 1 {
			tones[c].PhaseRad = math.Pi / 3 // "qubit |1>" channels
		}
	}
	w := MultiTone(tones, rxFs, rxSamples)
	for c, tn := range tones {
		d := DownConverter{FreqHz: tn.FreqHz, FsHz: rxFs}
		ph := d.RecoveredPhase(w)
		want := tn.PhaseRad
		if math.Abs(ph-want) > 0.08 {
			t.Fatalf("channel %d: recovered phase %v, want %v", c, ph, want)
		}
	}
}

func TestAdjacentChannelLeakage(t *testing.T) {
	tones := FDMReadoutPlan(8, rxBase, rxSpacing)
	d := DownConverter{FreqHz: tones[3].FreqHz, FsHz: rxFs}
	var others []RXTone
	for c, tn := range tones {
		if c != 3 {
			others = append(others, tn)
		}
	}
	leak := d.ChannelLeakage(others, rxSamples)
	// 40 MHz spacing over a 400 ns boxcar: 16 full beat cycles → low leak.
	if leak > 0.05 {
		t.Fatalf("adjacent-channel leakage %v too high for 8-way FDM", leak)
	}
}

func TestLeakageGrowsWithTighterSpacing(t *testing.T) {
	wide := DownConverter{FreqHz: rxBase, FsHz: rxFs}.
		ChannelLeakage([]RXTone{{FreqHz: rxBase + 40e6, Amp: 1}}, rxSamples)
	tight := DownConverter{FreqHz: rxBase, FsHz: rxFs}.
		ChannelLeakage([]RXTone{{FreqHz: rxBase + 4e6, Amp: 1}}, rxSamples)
	if tight <= wide {
		t.Fatalf("tighter tone spacing should leak more: %v vs %v", tight, wide)
	}
}

func TestLUTMixingCloseToIdeal(t *testing.T) {
	// The 8-bit sin/cos LUT of the RX bank must not meaningfully distort
	// the recovered phase.
	tone := RXTone{FreqHz: rxBase + rxSpacing, PhaseRad: -0.4, Amp: 1}
	w := MultiTone([]RXTone{tone}, rxFs, rxSamples)
	ideal := DownConverter{FreqHz: tone.FreqHz, FsHz: rxFs}
	lut := DownConverter{FreqHz: tone.FreqHz, FsHz: rxFs, LUT: NewSinCosLUT(8, 14)}
	pi := ideal.RecoveredPhase(w)
	pl := lut.RecoveredPhase(w)
	if math.Abs(pi-pl) > 0.02 {
		t.Fatalf("LUT mixing shifts phase: %v vs %v", pl, pi)
	}
}

func TestShortWindowLeaksMore(t *testing.T) {
	// Opt-#7 context: shorter readout rounds trade SNR — here visible as
	// adjacent-channel leakage growing when the boxcar shrinks.
	d := DownConverter{FreqHz: rxBase, FsHz: rxFs}
	other := []RXTone{{FreqHz: rxBase + rxSpacing, Amp: 1}}
	long := d.ChannelLeakage(other, 1000)
	short := d.ChannelLeakage(other, 95) // not a beat multiple
	if short <= long {
		t.Fatalf("shorter window should leak more: %v vs %v", short, long)
	}
}
