package dsp

import (
	"math"
	"testing"
	"testing/quick"

	"qisim/internal/pulse"
)

func TestFixedNCOTracksFloatPhase(t *testing.T) {
	n := NewFixedNCO(24, 10, 14)
	fw := n.FreqWord(200e6, 2.5e9)
	steps := 1000
	for k := 0; k < steps; k++ {
		n.Step(fw)
	}
	want := math.Mod(2*math.Pi*200e6/2.5e9*float64(steps), 2*math.Pi)
	got := n.Phase()
	diff := math.Abs(math.Mod(got-want+3*math.Pi, 2*math.Pi) - math.Pi)
	// 24-bit accumulator: phase error ≤ steps · 2π/2^24 ≈ 4e-4.
	if diff > 5e-4 {
		t.Fatalf("fixed NCO phase %v vs float %v (diff %v)", got, want, diff)
	}
}

func TestFixedNCOVirtualRz(t *testing.T) {
	n := NewFixedNCO(24, 10, 14)
	n.VirtualRz(n.AngleWord(math.Pi / 2))
	if math.Abs(n.Phase()-math.Pi/2) > 1e-6 {
		t.Fatalf("virtual Rz phase %v, want π/2", n.Phase())
	}
	// Wraps modulo 2π like the Verilog accumulator.
	n.VirtualRz(n.AngleWord(2 * math.Pi))
	if math.Abs(n.Phase()-math.Pi/2) > 1e-5 {
		t.Fatalf("accumulator failed to wrap: %v", n.Phase())
	}
}

func TestFixedNCOSampleMatchesEq1(t *testing.T) {
	// The fixed-point I/Q must track Eq. (1)'s float samples to LUT+DAC
	// precision.
	n := NewFixedNCO(24, 10, 14)
	fw := n.FreqWord(100e6, 2.5e9)
	fullScale := int64(1)<<13 - 1
	var worst float64
	for k := 0; k < 500; k++ {
		i, q := n.Sample(fullScale, 0)
		theta := n.Phase()
		wi := float64(fullScale) * math.Cos(theta)
		wq := float64(fullScale) * math.Sin(theta)
		if d := math.Abs(float64(i)-wi) / float64(fullScale); d > worst {
			worst = d
		}
		if d := math.Abs(float64(q)-wq) / float64(fullScale); d > worst {
			worst = d
		}
		n.Step(fw)
	}
	// 10-bit LUT: quantisation ≈ 2π/2^10 ≈ 6e-3 worst case.
	if worst > 8e-3 {
		t.Fatalf("fixed-point I/Q deviates %.4f from Eq. (1)", worst)
	}
}

func TestLUTQuarterSymmetry(t *testing.T) {
	l := NewSinCosLUT(8, 14)
	n := 256
	for k := 0; k < n; k++ {
		c1, s1 := l.At(k)
		c2, s2 := l.At(k + n/2)
		if c1 != -c2 || s1 != -s2 {
			t.Fatalf("half-wave symmetry broken at %d", k)
		}
	}
	c0, s0 := l.At(0)
	if s0 != 0 || c0 <= 0 {
		t.Fatal("LUT origin wrong")
	}
}

func TestCORDICAccuracy(t *testing.T) {
	c := NewCORDIC(16)
	for _, th := range []float64{0, 0.3, -1.2, math.Pi / 2, math.Pi, -math.Pi + 0.01, 2.5, -2.9} {
		co, si := c.SinCos(th)
		if math.Abs(co-math.Cos(th)) > 1e-4 || math.Abs(si-math.Sin(th)) > 1e-4 {
			t.Fatalf("CORDIC(%v) = (%v, %v), want (%v, %v)", th, co, si, math.Cos(th), math.Sin(th))
		}
	}
}

func TestCORDICConvergesWithIterations(t *testing.T) {
	th := 0.77
	prev := math.Inf(1)
	for _, iters := range []int{4, 8, 12, 16} {
		c := NewCORDIC(iters)
		co, _ := c.SinCos(th)
		err := math.Abs(co - math.Cos(th))
		if err > prev*1.5 {
			t.Fatalf("CORDIC error should shrink with iterations: %v at %d", err, iters)
		}
		prev = err
	}
}

func TestQuickCORDICUnitNorm(t *testing.T) {
	c := NewCORDIC(20)
	f := func(th float64) bool {
		th = math.Mod(th, math.Pi)
		co, si := c.SinCos(th)
		return math.Abs(co*co+si*si-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAWGRoundTrip(t *testing.T) {
	// Encode the flat-top CZ envelope into the (amp, len) table and replay:
	// the walker must reproduce the quantised samples exactly.
	samples := pulse.Samples(pulse.FlatTopEnvelope{RampFrac: 0.14}, 125, 50e-9)
	table := EncodeEnvelope(samples, 14)
	w := &AWGWalker{Table: table}
	wave := w.Waveform(0)
	dec := DecodeTable(table)
	if len(wave) != len(dec) {
		t.Fatalf("walker produced %d samples, table holds %d", len(wave), len(dec))
	}
	for k := range wave {
		if wave[k] != dec[k] {
			t.Fatalf("walker sample %d = %d, want %d", k, wave[k], dec[k])
		}
	}
	if len(wave) != len(samples) {
		t.Fatalf("round trip length %d, want %d", len(wave), len(samples))
	}
}

func TestAWGCompression(t *testing.T) {
	// Section 3.3.2: the table is tiny because only the ramps need distinct
	// amplitudes — the flat top collapses into one entry.
	samples := pulse.Samples(pulse.FlatTopEnvelope{RampFrac: 0.14}, 125, 50e-9)
	table := EncodeEnvelope(samples, 14)
	if len(table) >= len(samples)/2 {
		t.Fatalf("run-length table (%d entries) should be much smaller than %d samples",
			len(table), len(samples))
	}
	// A unit step compresses to almost nothing.
	step := pulse.Samples(pulse.UnitStepEnvelope{}, 125, 50e-9)
	if st := EncodeEnvelope(step, 14); len(st) > 2 {
		t.Fatalf("unit step should encode to 1 entry + terminator, got %d", len(st))
	}
}

func TestAWGWalkerIdleIsZero(t *testing.T) {
	w := &AWGWalker{Table: []AWGEntry{{Amp: 5, Len: 2}, {Amp: 0, Len: 0}}}
	if w.Busy() {
		t.Fatal("walker must start idle")
	}
	if out := w.Step(); out != 0 {
		t.Fatal("idle walker must output 0")
	}
}
