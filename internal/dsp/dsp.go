// Package dsp provides bit-accurate fixed-point models of the QCI digital
// datapaths whose RTL internal/verilog generates: the drive NCO's phase
// accumulator and sin/cos lookup, a CORDIC rotator for the polar-modulation
// unit, and the AWG pulse-table walker. These functional models play the
// role of the paper's IVerilog/Vivado RTL validation: the tests check them
// against the golden floating-point models in internal/pulse.
package dsp

import (
	"log/slog"
	"math"

	"qisim/internal/obs"
)

// logger is the package's structured-logging seam: silent by default so the
// bit-accurate models stay pure, it can be pointed at a shared slog.Logger
// (SetLogger) to surface quantization diagnostics at debug level.
var logger = obs.Discard()

// SetLogger installs the structured logger the package's debug diagnostics
// go to. Call once at process startup (before concurrent use); nil restores
// the silent default.
func SetLogger(l *slog.Logger) { logger = obs.OrDiscard(l) }

// FixedNCO is the fixed-point phase-accumulator NCO: an unsigned PhaseBits
// accumulator advancing by a frequency control word each sample, with the
// virtual-Rz path folding angles straight into the accumulator.
type FixedNCO struct {
	PhaseBits   int
	LUTAddrBits int
	AmpBits     int

	acc  uint64
	mask uint64
	lut  *SinCosLUT
}

// NewFixedNCO builds an NCO with the given widths.
func NewFixedNCO(phaseBits, lutAddrBits, ampBits int) *FixedNCO {
	if phaseBits <= 0 || phaseBits > 62 {
		panic("dsp: phase bits out of range")
	}
	return &FixedNCO{
		PhaseBits:   phaseBits,
		LUTAddrBits: lutAddrBits,
		AmpBits:     ampBits,
		mask:        (uint64(1) << phaseBits) - 1,
		lut:         NewSinCosLUT(lutAddrBits, ampBits),
	}
}

// FreqWord converts a frequency to the accumulator increment per sample.
func (n *FixedNCO) FreqWord(freqHz, sampleRateHz float64) uint64 {
	return uint64(math.Round(freqHz/sampleRateHz*float64(n.mask+1))) & n.mask
}

// AngleWord converts radians to a phase word.
func (n *FixedNCO) AngleWord(rad float64) uint64 {
	turns := rad / (2 * math.Pi)
	turns -= math.Floor(turns)
	return uint64(math.Round(turns*float64(n.mask+1))) & n.mask
}

// Phase returns the accumulator in radians.
func (n *FixedNCO) Phase() float64 {
	return float64(n.acc) / float64(n.mask+1) * 2 * math.Pi
}

// Step advances the accumulator by the frequency word (one sample).
func (n *FixedNCO) Step(freqWord uint64) { n.acc = (n.acc + freqWord) & n.mask }

// VirtualRz folds an angle word into the accumulator (the rz_mode path).
func (n *FixedNCO) VirtualRz(angleWord uint64) { n.acc = (n.acc + angleWord) & n.mask }

// Sample produces the I/Q output for an envelope amplitude (full scale =
// 2^(AmpBits-1)-1) and a gate-phase word, matching Eq. (1).
func (n *FixedNCO) Sample(envelope int64, gatePhase uint64) (i, q int64) {
	theta := (n.acc + gatePhase) & n.mask
	addr := theta >> (uint(n.PhaseBits - n.LUTAddrBits))
	c, s := n.lut.At(int(addr))
	scale := int64(1) << uint(n.AmpBits-1)
	i = envelope * c / scale
	q = envelope * s / scale
	return
}

// SinCosLUT is the quarter-wave-symmetric ROM of the NCO and TX banks.
type SinCosLUT struct {
	AddrBits, AmpBits int
	cos, sin          []int64
}

// NewSinCosLUT builds a 2^addrBits-entry table of ampBits signed samples.
func NewSinCosLUT(addrBits, ampBits int) *SinCosLUT {
	n := 1 << addrBits
	l := &SinCosLUT{AddrBits: addrBits, AmpBits: ampBits,
		cos: make([]int64, n), sin: make([]int64, n)}
	scale := float64(int64(1)<<uint(ampBits-1)) - 1
	for k := 0; k < n; k++ {
		th := 2 * math.Pi * float64(k) / float64(n)
		l.cos[k] = int64(math.Round(scale * math.Cos(th)))
		l.sin[k] = int64(math.Round(scale * math.Sin(th)))
	}
	return l
}

// At returns (cos, sin) at a table address.
func (l *SinCosLUT) At(addr int) (c, s int64) {
	return l.cos[addr&(len(l.cos)-1)], l.sin[addr&(len(l.sin)-1)]
}

// CORDIC rotates the unit vector by theta using iters shift-add stages —
// the polar-modulation unit's multiplier-free implementation option.
type CORDIC struct {
	Iters int
	gain  float64
	atan  []float64
}

// NewCORDIC builds a rotator with the given stage count.
func NewCORDIC(iters int) *CORDIC {
	c := &CORDIC{Iters: iters}
	gain := 1.0
	for i := 0; i < iters; i++ {
		c.atan = append(c.atan, math.Atan(math.Pow(2, -float64(i))))
		gain *= math.Sqrt(1 + math.Pow(2, -2*float64(i)))
	}
	c.gain = gain
	return c
}

// Rotate returns (cos θ, sin θ) computed by the CORDIC recurrence (working
// range |θ| ≤ π/2; callers fold quadrants).
func (c *CORDIC) Rotate(theta float64) (cos, sin float64) {
	x, y := 1.0, 0.0
	z := theta
	for i := 0; i < c.Iters; i++ {
		shift := math.Pow(2, -float64(i))
		if z >= 0 {
			x, y = x-y*shift, y+x*shift
			z -= c.atan[i]
		} else {
			x, y = x+y*shift, y-x*shift
			z += c.atan[i]
		}
	}
	return x / c.gain, y / c.gain
}

// SinCos folds the full circle onto the CORDIC working range.
func (c *CORDIC) SinCos(theta float64) (cos, sin float64) {
	theta = math.Mod(theta, 2*math.Pi)
	if theta > math.Pi {
		theta -= 2 * math.Pi
	} else if theta < -math.Pi {
		theta += 2 * math.Pi
	}
	switch {
	case theta > math.Pi/2:
		co, si := c.Rotate(theta - math.Pi)
		return -co, -si
	case theta < -math.Pi/2:
		co, si := c.Rotate(theta + math.Pi)
		return -co, -si
	default:
		return c.Rotate(theta)
	}
}

// AWGEntry is one (amplitude, length) pair of the pulse-table walker; Len
// is the number of samples the amplitude holds (a Len of 0 terminates the
// waveform).
type AWGEntry struct {
	Amp int64
	Len int
}

// AWGWalker is the functional model of verilog.PulseCircuit: it replays a
// table of amplitude/length pairs, holding each amplitude for its length and
// stopping at a zero-length terminator.
type AWGWalker struct {
	Table []AWGEntry

	addr, cnt int
	active    bool
}

// Start arms the walker at a bank base address.
func (w *AWGWalker) Start(base int) {
	w.addr, w.cnt, w.active = base, 0, true
}

// Busy reports whether a pulse is in flight.
func (w *AWGWalker) Busy() bool { return w.active }

// Step advances one clock and returns the DAC output.
func (w *AWGWalker) Step() int64 {
	if !w.active || w.addr >= len(w.Table) || w.Table[w.addr].Len == 0 {
		w.active = false
		return 0
	}
	e := w.Table[w.addr]
	out := e.Amp
	w.cnt++
	if w.cnt >= e.Len {
		w.cnt = 0
		w.addr++
		if w.addr >= len(w.Table) || w.Table[w.addr].Len == 0 {
			w.active = false
		}
	}
	return out
}

// Waveform replays the whole table from base and returns the samples.
func (w *AWGWalker) Waveform(base int) []int64 {
	w.Start(base)
	var out []int64
	for w.Busy() {
		out = append(out, w.Step())
	}
	return out
}

// EncodeEnvelope converts a sampled analogue envelope into the run-length
// (amplitude, length) table the pulse circuit stores — "our memory overhead
// is negligible as we need an arbitrary waveform only for the short
// ramp-up/down period" (Section 3.3.2).
func EncodeEnvelope(samples []float64, ampBits int) []AWGEntry {
	scale := float64(int64(1)<<uint(ampBits-1)) - 1
	var table []AWGEntry
	for _, s := range samples {
		a := int64(math.Round(s * scale))
		if n := len(table); n > 0 && table[n-1].Amp == a {
			table[n-1].Len++
			continue
		}
		table = append(table, AWGEntry{Amp: a, Len: 1})
	}
	table = append(table, AWGEntry{Len: 0}) // terminator
	logger.Debug("envelope encoded",
		"samples", len(samples), "entries", len(table)-1, "amp_bits", ampBits)
	return table
}

// DecodeTable expands a table back to samples (for round-trip checks).
func DecodeTable(table []AWGEntry) []int64 {
	var out []int64
	for _, e := range table {
		if e.Len == 0 {
			break
		}
		for k := 0; k < e.Len; k++ {
			out = append(out, e.Amp)
		}
	}
	return out
}
