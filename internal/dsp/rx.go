package dsp

import "math"

// RXTone is one frequency-multiplexed readout channel: a resonator tone at
// FreqHz whose phase encodes the qubit state (the dispersive shift rotates
// the reflected tone by ±PhaseRad).
type RXTone struct {
	FreqHz   float64
	PhaseRad float64
	Amp      float64
}

// MultiTone synthesises the reflected readout waveform: the sum of all
// channel tones sampled at rate fs for n samples — what the shared RX ADC
// digitises before the per-qubit digital banks separate the channels.
func MultiTone(tones []RXTone, fs float64, n int) []float64 {
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		t := float64(k) / fs
		for _, tn := range tones {
			out[k] += tn.Amp * math.Cos(2*math.Pi*tn.FreqHz*t+tn.PhaseRad)
		}
	}
	return out
}

// DownConverter is one RX digital bank (Fig. 4(a)): an NCO tuned to its
// channel, a mixer, and boxcar accumulation of the DC I/Q components.
type DownConverter struct {
	FreqHz float64
	FsHz   float64
	// LUT quantises the mixing sinusoids (0 = ideal float mixing).
	LUT *SinCosLUT
}

// Demodulate mixes the waveform down and averages, returning the recovered
// I/Q for this channel.
func (d DownConverter) Demodulate(waveform []float64) (i, q float64) {
	n := len(waveform)
	for k := 0; k < n; k++ {
		t := float64(k) / d.FsHz
		theta := 2 * math.Pi * d.FreqHz * t
		var c, s float64
		if d.LUT != nil {
			size := 1 << d.LUT.AddrBits
			addr := int(math.Round(theta/(2*math.Pi)*float64(size))) & (size - 1)
			ci, si := d.LUT.At(addr)
			scale := float64(int64(1)<<uint(d.LUT.AmpBits-1)) - 1
			c, s = float64(ci)/scale, float64(si)/scale
		} else {
			c, s = math.Cos(theta), math.Sin(theta)
		}
		i += waveform[k] * c
		q += waveform[k] * s
	}
	// Mixing halves the amplitude; normalise so a unit tone returns 1.
	i = 2 * i / float64(n)
	q = -2 * q / float64(n)
	return
}

// RecoveredPhase returns the demodulated tone phase.
func (d DownConverter) RecoveredPhase(waveform []float64) float64 {
	i, q := d.Demodulate(waveform)
	return math.Atan2(q, i)
}

// ChannelLeakage measures adjacent-channel crosstalk: the apparent amplitude
// this bank recovers from a waveform containing ONLY the other channels.
func (d DownConverter) ChannelLeakage(others []RXTone, n int) float64 {
	w := MultiTone(others, d.FsHz, n)
	i, q := d.Demodulate(w)
	return math.Hypot(i, q)
}

// FDMReadoutPlan builds the 8-channel tone plan of the CMOS readout: IF
// channels spaced by spacingHz starting at baseHz.
func FDMReadoutPlan(channels int, baseHz, spacingHz float64) []RXTone {
	tones := make([]RXTone, channels)
	for c := range tones {
		tones[c] = RXTone{FreqHz: baseHz + float64(c)*spacingHz, Amp: 1}
	}
	return tones
}
