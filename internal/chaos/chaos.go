// Package chaos is the fleet's seeded network-fault layer: a deterministic
// schedule of injected latency, connection drops and resets, 5xx bursts,
// truncated and bit-flipped response bodies, duplicated deliveries, and
// reordering, applied to HTTP traffic from either side of the wire —
// Transport wraps an http.RoundTripper (the dist client's view of a flaky
// network), Middleware wraps an http.Handler (the coordinator's view of a
// hostile ingress).
//
// Determinism contract: every fault decision for the nth request through a
// Transport or Middleware is a pure SplitMix64 function of (Spec.Seed, n,
// fault id). Replaying the same scenario spec against the same traffic
// order replays the same fault schedule; the repo's headline invariant is
// that ANY such schedule which does not permanently partition the fleet
// still yields merged results byte-identical to a standalone run (see the
// root chaos network suite). Which wall-clock interleaving the injected
// faults produce is up to the scheduler — the point is that the decisions
// themselves are reproducible and tunable from a JSON file, not that runs
// are cycle-accurate replays.
//
// Scenario specs load from JSON (LoadSpec / ParseSpec); see
// examples/chaos/ for runnable ones and the -chaos-spec flag on qisimd for
// wiring them into a live fleet.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"qisim/internal/simerr"
)

// Fault identities: the salt mixed into each per-request decision, and the
// label under which injections are counted. Keeping them distinct means
// enabling one fault never shifts another fault's schedule.
const (
	FaultLatency   = "latency"
	FaultDrop      = "drop"
	FaultReset     = "reset"
	FaultDuplicate = "duplicate"
	FaultReorder   = "reorder"
	FaultCorrupt   = "corrupt"
	FaultTruncate  = "truncate"
	Fault5xx       = "error5xx"
	FaultAbort     = "abort"
)

// faultSalt maps a fault id to its decision-stream salt.
var faultSalt = map[string]uint64{
	FaultLatency:   1,
	FaultDrop:      2,
	FaultReset:     3,
	FaultDuplicate: 4,
	FaultReorder:   5,
	FaultCorrupt:   6,
	FaultTruncate:  7,
	Fault5xx:       8,
	FaultAbort:     9,
	// salts 100+ are parameter draws (latency amount, flip offset, ...)
}

// LatencySpec injects a uniformly drawn delay into every matched request.
type LatencySpec struct {
	// P is the probability a request is delayed.
	P float64 `json:"p,omitempty"`
	// MinMS/MaxMS bound the injected delay in milliseconds.
	MinMS int `json:"min_ms,omitempty"`
	MaxMS int `json:"max_ms,omitempty"`
}

// ReorderSpec holds a selected request until another request passes it (or
// the hold cap expires) — genuine reordering, not just jitter.
type ReorderSpec struct {
	// P is the probability a request is held for overtaking.
	P float64 `json:"p,omitempty"`
	// HoldMS caps how long a held request waits for an overtaker.
	HoldMS int `json:"hold_ms,omitempty"`
}

// Burst5xxSpec turns the server side into a flapping upstream: entering a
// burst (probability P per request) makes the next Len requests answer
// with Status instead of reaching the handler.
type Burst5xxSpec struct {
	// P is the per-request probability of entering a burst.
	P float64 `json:"p,omitempty"`
	// Len is the burst length in requests (default 3).
	Len int `json:"len,omitempty"`
	// Status is the injected status code (default 503).
	Status int `json:"status,omitempty"`
	// RetryAfterS, when positive, stamps the injected responses with a
	// Retry-After header of this many seconds.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// Spec is one chaos scenario: a seed plus per-fault probabilities. Client
// faults (drop, reset, duplicate, reorder, corrupt, truncate) apply in
// Transport; server faults (error_5xx, abort) in Middleware; latency
// applies on whichever side carries the spec.
type Spec struct {
	// Seed derives the whole fault schedule (0 = 1).
	Seed int64 `json:"seed,omitempty"`

	// Latency delays request handling (both sides).
	Latency LatencySpec `json:"latency,omitempty"`

	// Drop makes the request vanish before reaching the peer: the caller
	// sees a transport error, the server sees nothing.
	Drop float64 `json:"drop,omitempty"`
	// Reset delivers the request but loses the response: the server did
	// the work, the caller sees a connection reset.
	Reset float64 `json:"reset,omitempty"`
	// Duplicate delivers the request twice (one response is returned, the
	// other discarded) — the packet-duplication case idempotency keys
	// exist for.
	Duplicate float64 `json:"duplicate,omitempty"`
	// Reorder holds a request so a later one overtakes it.
	Reorder ReorderSpec `json:"reorder,omitempty"`
	// Corrupt flips one bit of the response body.
	Corrupt float64 `json:"corrupt,omitempty"`
	// Truncate cuts the response body short.
	Truncate float64 `json:"truncate,omitempty"`

	// Error5xx injects server-side 5xx bursts before the handler runs.
	Error5xx Burst5xxSpec `json:"error_5xx,omitempty"`
	// Abort kills the server's response mid-flight: the handler never
	// runs, the client sees an EOF/transport error.
	Abort float64 `json:"abort,omitempty"`
}

// normalized fills defaults.
func (s Spec) normalized() Spec {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Error5xx.Len <= 0 {
		s.Error5xx.Len = 3
	}
	if s.Error5xx.Status == 0 {
		s.Error5xx.Status = 503
	}
	if s.Reorder.HoldMS <= 0 {
		s.Reorder.HoldMS = 50
	}
	return s
}

// Validate rejects out-of-range probabilities and inverted bounds.
func (s Spec) Validate() error {
	probs := map[string]float64{
		"latency.p": s.Latency.P, "drop": s.Drop, "reset": s.Reset,
		"duplicate": s.Duplicate, "reorder.p": s.Reorder.P,
		"corrupt": s.Corrupt, "truncate": s.Truncate,
		"error_5xx.p": s.Error5xx.P, "abort": s.Abort,
	}
	for name, p := range probs {
		if p < 0 || p > 1 {
			return simerr.Invalidf("chaos: %s = %v outside [0,1]", name, p)
		}
	}
	if s.Latency.MinMS < 0 || s.Latency.MaxMS < s.Latency.MinMS {
		return simerr.Invalidf("chaos: latency bounds [%d,%d]ms invalid",
			s.Latency.MinMS, s.Latency.MaxMS)
	}
	if s.Error5xx.Status != 0 && (s.Error5xx.Status < 500 || s.Error5xx.Status > 599) {
		return simerr.Invalidf("chaos: error_5xx.status %d is not a 5xx", s.Error5xx.Status)
	}
	return nil
}

// ParseSpec decodes and validates a JSON scenario spec.
func ParseSpec(b []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, simerr.Invalidf("chaos: bad scenario spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads a scenario spec from a JSON file.
func LoadSpec(path string) (Spec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, simerr.Invalidf("chaos: read spec %s: %v", path, err)
	}
	s, err := ParseSpec(b)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ---- seeded decision stream ----

// splitmix64 finalisation constants (Steele, Lea & Flood, OOPSLA 2014) —
// the same mix the engine's ShardSeed uses, salted per fault so schedules
// are independent.
const (
	smGamma = 0x9E3779B97F4A7C15
	smMulA  = 0xBF58476D1CE4E5B9
	smMulB  = 0x94D049BB133111EB
)

// smGamma2 is γ² mod 2⁶⁴ — a var, not a const, so the product wraps like
// every other step here instead of tripping constant-overflow checks.
var smGamma2 = func() uint64 { g := uint64(smGamma); return g * g }()

// mix64 is the SplitMix64 finalisation over seed + (n+1)·γ + salt·γ².
func mix64(seed int64, n, salt uint64) uint64 {
	z := uint64(seed) + (n+1)*smGamma + salt*smGamma2
	z = (z ^ (z >> 30)) * smMulA
	z = (z ^ (z >> 27)) * smMulB
	return z ^ (z >> 31)
}

// Draw returns the deterministic uniform [0,1) decision value of fault
// `salt` for request n under `seed`. Exported for the schedule-replay
// tests; everything else goes through decide/amount.
func Draw(seed int64, n, salt uint64) float64 {
	return float64(mix64(seed, n, salt)>>11) / float64(1<<53)
}

// decide reports whether fault f fires on request n.
func (s Spec) decide(f string, n uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	return Draw(s.Seed, n, faultSalt[f]) < p
}

// amount draws fault f's deterministic parameter value for request n in
// [0,1) (delay fraction, flip offset fraction, truncation point, ...).
func (s Spec) amount(f string, n uint64) float64 {
	return Draw(s.Seed, n, faultSalt[f]+100)
}

// latencyFor returns request n's injected delay (0 = none).
func (s Spec) latencyFor(n uint64) time.Duration {
	if !s.decide(FaultLatency, n, s.Latency.P) {
		return 0
	}
	span := s.Latency.MaxMS - s.Latency.MinMS
	ms := float64(s.Latency.MinMS) + s.amount(FaultLatency, n)*float64(span)
	return time.Duration(ms * float64(time.Millisecond))
}

// Stats counts injected faults by id. Snapshot of live counters.
type Stats map[string]int64

// counters is the shared injection tally of a Transport or Middleware.
type counters struct {
	latency, drop, reset, duplicate, reorder atomic.Int64
	corrupt, truncate, err5xx, abort         atomic.Int64
	requests                                 atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		"requests":     c.requests.Load(),
		FaultLatency:   c.latency.Load(),
		FaultDrop:      c.drop.Load(),
		FaultReset:     c.reset.Load(),
		FaultDuplicate: c.duplicate.Load(),
		FaultReorder:   c.reorder.Load(),
		FaultCorrupt:   c.corrupt.Load(),
		FaultTruncate:  c.truncate.Load(),
		Fault5xx:       c.err5xx.Load(),
		FaultAbort:     c.abort.Load(),
	}
}

// Injected sums every fault injection in the snapshot (requests excluded).
func (s Stats) Injected() int64 {
	var total int64
	for k, v := range s {
		if k != "requests" {
			total += v
		}
	}
	return total
}
