package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// errInjected is the transport-error type chaos injects; it satisfies
// net/http's retryability expectations (a plain error from RoundTrip) and
// unwraps to nothing — callers must treat it like any flaky-network error.
type errInjected struct{ fault string }

func (e errInjected) Error() string { return "chaos: injected " + e.fault }

// IsInjected reports whether err came from a chaos Transport or Middleware
// (tests use it to tell injected faults from real ones).
func IsInjected(err error) bool {
	var ei errInjected
	return err != nil && (errorsAs(err, &ei))
}

// errorsAs is a tiny local errors.As to keep the import set flat.
func errorsAs(err error, target *errInjected) bool {
	for err != nil {
		if e, ok := err.(errInjected); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Transport is the client-side half of the chaos layer: an
// http.RoundTripper that applies the spec's fault schedule to every
// request. Wrap the dist client's HTTP transport with it to simulate a
// flaky network between a fleet worker and its coordinator.
type Transport struct {
	spec Spec
	base http.RoundTripper

	n    atomic.Uint64
	cnt  counters
	hook func(fault string)

	// reorder gate: a held request parks on pass and is released when any
	// later request overtakes it (or its hold cap expires).
	mu   sync.Mutex
	held chan struct{} // non-nil while one request is parked
}

// NewTransport wraps base (nil = http.DefaultTransport) with spec's fault
// schedule.
func NewTransport(spec Spec, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{spec: spec.normalized(), base: base}
}

// OnInject registers an observability hook called with the fault id of
// every injection (metrics bridges). Call before first use; not
// synchronized with in-flight requests.
func (t *Transport) OnInject(fn func(fault string)) { t.hook = fn }

// Stats returns the injection tally so far.
func (t *Transport) Stats() Stats { return t.cnt.snapshot() }

func (t *Transport) inject(fault string, c *atomic.Int64) {
	c.Add(1)
	if t.hook != nil {
		t.hook(fault)
	}
}

// RoundTrip applies the fault schedule for this request's sequence number,
// in wire order: reorder hold → latency → drop → (duplicate) delivery →
// reset → response corruption/truncation.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.n.Add(1) - 1
	t.cnt.requests.Add(1)
	s := t.spec
	ctx := req.Context()

	// Overtake any parked request: this one passing is what the held one
	// waits for.
	t.release()

	if s.decide(FaultReorder, n, s.Reorder.P) {
		t.inject(FaultReorder, &t.cnt.reorder)
		if err := t.hold(ctx, time.Duration(s.Reorder.HoldMS)*time.Millisecond); err != nil {
			return nil, err
		}
	}
	if d := s.latencyFor(n); d > 0 {
		t.inject(FaultLatency, &t.cnt.latency)
		if err := sleepCtx(ctx, d); err != nil {
			return nil, err
		}
	}
	if s.decide(FaultDrop, n, s.Drop) {
		t.inject(FaultDrop, &t.cnt.drop)
		return nil, errInjected{FaultDrop}
	}

	// Buffer the body once so duplication can replay it.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("chaos: buffering request body: %w", err)
		}
	}
	send := func() (*http.Response, error) {
		r2 := req.Clone(ctx)
		if body != nil {
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
		}
		return t.base.RoundTrip(r2)
	}

	if s.decide(FaultDuplicate, n, s.Duplicate) {
		t.inject(FaultDuplicate, &t.cnt.duplicate)
		// The duplicated delivery: the server sees the request twice; the
		// first response is discarded on the floor like a lost packet.
		if resp, err := send(); err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}

	resp, err := send()
	if err != nil {
		return nil, err
	}

	if s.decide(FaultReset, n, s.Reset) {
		t.inject(FaultReset, &t.cnt.reset)
		// The server processed the request; the response never made it
		// back. The caller must treat this exactly like a drop — which is
		// why reports need idempotency.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return nil, errInjected{FaultReset}
	}

	corrupt := s.decide(FaultCorrupt, n, s.Corrupt)
	truncate := s.decide(FaultTruncate, n, s.Truncate)
	if corrupt || truncate {
		payload, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if truncate && len(payload) > 0 {
			t.inject(FaultTruncate, &t.cnt.truncate)
			payload = payload[:int(s.amount(FaultTruncate, n)*float64(len(payload)))]
		}
		if corrupt && len(payload) > 0 {
			t.inject(FaultCorrupt, &t.cnt.corrupt)
			off := int(s.amount(FaultCorrupt, n) * float64(len(payload)))
			bit := uint(mix64(s.Seed, n, faultSalt[FaultCorrupt]+200) % 8)
			payload = append([]byte(nil), payload...)
			payload[off] ^= 1 << bit
		}
		resp.Body = io.NopCloser(bytes.NewReader(payload))
		resp.ContentLength = int64(len(payload))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// hold parks the calling request until another request passes through the
// transport, the hold cap expires, or ctx dies. Only one request parks at
// a time (a second selected request just proceeds — someone must be moving
// for reordering to mean anything).
func (t *Transport) hold(ctx context.Context, holdCap time.Duration) error {
	t.mu.Lock()
	if t.held != nil {
		t.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	t.held = ch
	t.mu.Unlock()

	timer := time.NewTimer(holdCap)
	defer timer.Stop()
	defer func() {
		t.mu.Lock()
		if t.held == ch {
			t.held = nil
		}
		t.mu.Unlock()
	}()
	select {
	case <-ch:
		return nil
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release lets a parked request continue (idempotent).
func (t *Transport) release() {
	t.mu.Lock()
	if t.held != nil {
		close(t.held)
		t.held = nil
	}
	t.mu.Unlock()
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
