package chaos

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// Middleware is the server-side half of the chaos layer: it wraps an
// http.Handler with the spec's fault schedule — injected latency, 5xx
// bursts (with optional Retry-After), aborted responses, and duplicated
// deliveries (the handler runs twice for one wire request, exercising the
// receiver's idempotency). Build with NewMiddleware; it implements
// http.Handler.
type Middleware struct {
	spec Spec
	next http.Handler

	n    atomic.Uint64
	cnt  counters
	hook func(fault string)

	mu        sync.Mutex
	burstLeft int // requests remaining in the current 5xx burst
}

// NewMiddleware wraps next with spec's fault schedule.
func NewMiddleware(spec Spec, next http.Handler) *Middleware {
	return &Middleware{spec: spec.normalized(), next: next}
}

// OnInject registers an observability hook called with the fault id of
// every injection. Call before serving; not synchronized with in-flight
// requests.
func (m *Middleware) OnInject(fn func(fault string)) { m.hook = fn }

// Stats returns the injection tally so far.
func (m *Middleware) Stats() Stats { return m.cnt.snapshot() }

func (m *Middleware) inject(fault string, c *atomic.Int64) {
	c.Add(1)
	if m.hook != nil {
		m.hook(fault)
	}
}

// ServeHTTP applies the schedule: latency → 5xx burst → abort → duplicate
// delivery → the real handler.
func (m *Middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := m.n.Add(1) - 1
	m.cnt.requests.Add(1)
	s := m.spec

	if d := s.latencyFor(n); d > 0 {
		m.inject(FaultLatency, &m.cnt.latency)
		if err := sleepCtx(r.Context(), d); err != nil {
			return // client gone; nothing to answer
		}
	}

	// 5xx bursts: entering costs one decision; while a burst is live every
	// request is answered with the injected status, handler untouched.
	if s.Error5xx.P > 0 {
		m.mu.Lock()
		if m.burstLeft == 0 && s.decide(Fault5xx, n, s.Error5xx.P) {
			m.burstLeft = s.Error5xx.Len
		}
		inBurst := m.burstLeft > 0
		if inBurst {
			m.burstLeft--
		}
		m.mu.Unlock()
		if inBurst {
			m.inject(Fault5xx, &m.cnt.err5xx)
			if s.Error5xx.RetryAfterS > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(s.Error5xx.RetryAfterS))
			}
			http.Error(w, "chaos: injected "+Fault5xx, s.Error5xx.Status)
			return
		}
	}

	if s.decide(FaultAbort, n, s.Abort) {
		m.inject(FaultAbort, &m.cnt.abort)
		// ErrAbortHandler makes net/http tear the connection down without
		// a response — the client sees a mid-flight reset.
		panic(http.ErrAbortHandler)
	}

	if s.decide(FaultDuplicate, n, s.Duplicate) && r.Body != nil {
		body, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err == nil {
			m.inject(FaultDuplicate, &m.cnt.duplicate)
			// First delivery: the handler runs for real but its response
			// is discarded, as if the network duplicated the request and
			// one answer was lost.
			r1 := r.Clone(r.Context())
			r1.Body = io.NopCloser(bytes.NewReader(body))
			m.next.ServeHTTP(&discardResponse{header: http.Header{}}, r1)
			r2 := r.Clone(r.Context())
			r2.Body = io.NopCloser(bytes.NewReader(body))
			m.next.ServeHTTP(w, r2)
			return
		}
		// Unreadable body: fall through with what's left (the handler will
		// surface its own error).
		r.Body = io.NopCloser(bytes.NewReader(body))
	}

	m.next.ServeHTTP(w, r)
}

// discardResponse swallows the duplicated delivery's response.
type discardResponse struct {
	header http.Header
	status int
}

func (d *discardResponse) Header() http.Header         { return d.header }
func (d *discardResponse) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardResponse) WriteHeader(status int)      { d.status = status }
