package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDrawDeterministicAndUniformish(t *testing.T) {
	for n := uint64(0); n < 64; n++ {
		a := Draw(42, n, faultSalt[FaultDrop])
		b := Draw(42, n, faultSalt[FaultDrop])
		if a != b {
			t.Fatalf("Draw not deterministic at n=%d: %v vs %v", n, a, b)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("Draw out of [0,1) at n=%d: %v", n, a)
		}
	}
	// A different seed must yield a different schedule.
	same := 0
	for n := uint64(0); n < 256; n++ {
		if Draw(1, n, 2) == Draw(2, n, 2) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collide on %d of 256 draws", same)
	}
	// Empirical rate should track p for a moderate sample.
	hits := 0
	const trials = 4096
	for n := uint64(0); n < trials; n++ {
		if Draw(7, n, 3) < 0.25 {
			hits++
		}
	}
	if got := float64(hits) / trials; got < 0.20 || got > 0.30 {
		t.Fatalf("empirical rate %v far from 0.25", got)
	}
}

func TestFaultSaltsIndependent(t *testing.T) {
	// Enabling one fault must not shift another fault's decisions: streams
	// with different salts must not be correlated copies of each other.
	for n := uint64(0); n < 128; n++ {
		if Draw(9, n, faultSalt[FaultDrop]) == Draw(9, n, faultSalt[FaultReset]) {
			t.Fatalf("drop and reset draws identical at n=%d", n)
		}
	}
}

func TestSpecNormalizeAndValidate(t *testing.T) {
	s := Spec{}.normalized()
	if s.Seed != 1 || s.Error5xx.Len != 3 || s.Error5xx.Status != 503 || s.Reorder.HoldMS != 50 {
		t.Fatalf("bad defaults: %+v", s)
	}
	bad := []Spec{
		{Drop: -0.1},
		{Drop: 1.5},
		{Latency: LatencySpec{P: 2}},
		{Latency: LatencySpec{MinMS: 10, MaxMS: 5}},
		{Error5xx: Burst5xxSpec{Status: 404}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted %+v", i, s)
		}
	}
	ok := Spec{Drop: 0.5, Latency: LatencySpec{P: 1, MinMS: 1, MaxMS: 5},
		Error5xx: Burst5xxSpec{P: 0.1, Status: 500}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate rejected valid spec: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(`{"seed": 11, "drop": 0.2, "latency": {"p": 0.5, "max_ms": 20}}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Seed != 11 || s.Drop != 0.2 || s.Latency.MaxMS != 20 {
		t.Fatalf("bad parse: %+v", s)
	}
	if _, err := ParseSpec([]byte(`{"dorp": 0.2}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"drop": 7}`)); err == nil {
		t.Fatal("invalid probability accepted")
	}
	if _, err := ParseSpec([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// chaosClient wires a Transport around an httptest server.
func chaosClient(t *testing.T, spec Spec, handler http.Handler) (*http.Client, *Transport, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	tr := NewTransport(spec, nil)
	return &http.Client{Transport: tr}, tr, srv
}

func TestTransportDropAndReset(t *testing.T) {
	var served int64
	var mu sync.Mutex
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		served++
		mu.Unlock()
		io.WriteString(w, "ok")
	})
	client, tr, srv := chaosClient(t, Spec{Seed: 5, Drop: 1}, h)
	if _, err := client.Get(srv.URL); !IsInjected(errors.Unwrap(unwrapURLErr(err))) && !IsInjected(err) {
		t.Fatalf("want injected drop, got %v", err)
	}
	mu.Lock()
	if served != 0 {
		t.Fatalf("dropped request reached server %d times", served)
	}
	mu.Unlock()
	if tr.Stats()[FaultDrop] != 1 {
		t.Fatalf("drop stat = %d", tr.Stats()[FaultDrop])
	}

	client, tr, srv = chaosClient(t, Spec{Seed: 5, Reset: 1}, h)
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("reset: want error")
	}
	mu.Lock()
	if served != 1 {
		t.Fatalf("reset request should reach server once, served=%d", served)
	}
	mu.Unlock()
	if tr.Stats()[FaultReset] != 1 {
		t.Fatalf("reset stat = %d", tr.Stats()[FaultReset])
	}
}

// unwrapURLErr peels the *url.Error http.Client wraps transport errors in.
func unwrapURLErr(err error) error {
	type wrapped interface{ Unwrap() error }
	if u, ok := err.(wrapped); ok && err != nil {
		return u.Unwrap()
	}
	return err
}

func TestTransportDuplicateDeliversTwice(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(b))
		mu.Unlock()
		io.WriteString(w, "ack")
	})
	client, tr, srv := chaosClient(t, Spec{Seed: 3, Duplicate: 1}, h)
	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != "ack" {
		t.Fatalf("caller response = %q", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 2 || bodies[0] != "payload" || bodies[1] != "payload" {
		t.Fatalf("server saw %q, want payload twice", bodies)
	}
	if tr.Stats()[FaultDuplicate] != 1 {
		t.Fatalf("duplicate stat = %d", tr.Stats()[FaultDuplicate])
	}
}

func TestTransportCorruptAndTruncate(t *testing.T) {
	const body = "0123456789abcdef"
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})
	client, tr, srv := chaosClient(t, Spec{Seed: 8, Corrupt: 1}, h)
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) == body {
		t.Fatal("corrupt: body unchanged")
	}
	if len(got) != len(body) {
		t.Fatalf("corrupt changed length: %d vs %d", len(got), len(body))
	}
	diff := 0
	for i := range got {
		if got[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bytes, want exactly 1", diff)
	}
	if tr.Stats()[FaultCorrupt] != 1 {
		t.Fatalf("corrupt stat = %d", tr.Stats()[FaultCorrupt])
	}

	client, tr, srv = chaosClient(t, Spec{Seed: 8, Truncate: 1}, h)
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(got) >= len(body) {
		t.Fatalf("truncate: body not shortened (len %d)", len(got))
	}
	if string(got) != body[:len(got)] {
		t.Fatalf("truncate altered prefix: %q", got)
	}
	if tr.Stats()[FaultTruncate] != 1 {
		t.Fatalf("truncate stat = %d", tr.Stats()[FaultTruncate])
	}
}

func TestTransportCorruptionDeterministic(t *testing.T) {
	const body = "deterministic-corruption-check"
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})
	read := func() string {
		client, _, srv := chaosClient(t, Spec{Seed: 21, Corrupt: 1}, h)
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if a, b := read(), read(); a != b {
		t.Fatalf("same seed corrupted differently: %q vs %q", a, b)
	}
}

func TestTransportLatency(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	client, tr, srv := chaosClient(t, Spec{Seed: 2,
		Latency: LatencySpec{P: 1, MinMS: 30, MaxMS: 30}}, h)
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("latency not injected: elapsed %v", el)
	}
	if tr.Stats()[FaultLatency] != 1 {
		t.Fatalf("latency stat = %d", tr.Stats()[FaultLatency])
	}
}

func TestTransportReorderOvertake(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	// Find a seed where only request 0 draws reorder at p=0.5, so /first
	// parks and /second passes straight through as the overtaker.
	var seed int64
	for s := int64(1); ; s++ {
		if Draw(s, 0, faultSalt[FaultReorder]) < 0.5 &&
			Draw(s, 1, faultSalt[FaultReorder]) >= 0.5 {
			seed = s
			break
		}
	}
	// Hold cap far beyond the assertion window: release must come from the
	// overtaking request, not the timer.
	spec := Spec{Seed: seed, Reorder: ReorderSpec{P: 0.5, HoldMS: 30000}}
	srv := httptest.NewServer(h)
	defer srv.Close()
	tr := NewTransport(spec, nil)
	client := &http.Client{Transport: tr}

	done := make(chan struct{})
	go func() {
		resp, err := client.Get(srv.URL + "/first")
		if err == nil {
			resp.Body.Close()
		}
		close(done)
	}()
	time.Sleep(100 * time.Millisecond) // let /first park on the gate
	select {
	case <-done:
		t.Fatal("held request completed before any overtaker")
	default:
	}
	resp, err := client.Get(srv.URL + "/second")
	if err != nil {
		t.Fatalf("second get: %v", err)
	}
	resp.Body.Close()
	select {
	case <-done: // released by the overtake, well inside the 30s cap
	case <-time.After(5 * time.Second):
		t.Fatal("held request never released by overtaker")
	}
	if tr.Stats()[FaultReorder] != 1 {
		t.Fatalf("reorder stat = %d", tr.Stats()[FaultReorder])
	}
}

func TestMiddleware5xxBurstAndRetryAfter(t *testing.T) {
	var served int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, "real")
	})
	mw := NewMiddleware(Spec{Seed: 4,
		Error5xx: Burst5xxSpec{P: 1, Len: 2, Status: 503, RetryAfterS: 7}}, h)
	srv := httptest.NewServer(mw)
	defer srv.Close()

	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Fatalf("req %d: status %d, want 503", i, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "7" {
			t.Fatalf("req %d: Retry-After = %q", i, ra)
		}
	}
	if served != 0 {
		t.Fatalf("handler ran %d times during burst", served)
	}
	if got := mw.Stats()[Fault5xx]; got != 2 {
		t.Fatalf("5xx stat = %d", got)
	}
}

func TestMiddlewareAbort(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler ran despite abort")
	})
	mw := NewMiddleware(Spec{Seed: 4, Abort: 1}, h)
	srv := httptest.NewServer(mw)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("abort: want transport error, got status %d", resp.StatusCode)
	}
	if mw.Stats()[FaultAbort] != 1 {
		t.Fatalf("abort stat = %d", mw.Stats()[FaultAbort])
	}
}

func TestMiddlewareDuplicateDelivery(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		mu.Lock()
		bodies = append(bodies, string(b))
		mu.Unlock()
		fmt.Fprintf(w, "seen %d", len(bodies))
	})
	mw := NewMiddleware(Spec{Seed: 6, Duplicate: 1}, h)
	srv := httptest.NewServer(mw)
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("dup-me"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 2 || bodies[0] != "dup-me" || bodies[1] != "dup-me" {
		t.Fatalf("handler saw %q, want dup-me twice", bodies)
	}
	// The caller gets the SECOND delivery's response.
	if string(got) != "seen 2" {
		t.Fatalf("caller response %q", got)
	}
}

func TestScheduleReplayIdentical(t *testing.T) {
	// The full decision schedule over 512 requests is a pure function of the
	// spec: replaying it yields the identical fault sequence.
	spec := Spec{Seed: 99, Drop: 0.2, Reset: 0.1, Duplicate: 0.15,
		Corrupt: 0.05, Truncate: 0.05,
		Latency: LatencySpec{P: 0.3, MinMS: 1, MaxMS: 9}}.normalized()
	type decision struct {
		drop, reset, dup, corrupt, trunc bool
		delay                            time.Duration
	}
	run := func() []decision {
		out := make([]decision, 512)
		for n := uint64(0); n < 512; n++ {
			out[n] = decision{
				drop:    spec.decide(FaultDrop, n, spec.Drop),
				reset:   spec.decide(FaultReset, n, spec.Reset),
				dup:     spec.decide(FaultDuplicate, n, spec.Duplicate),
				corrupt: spec.decide(FaultCorrupt, n, spec.Corrupt),
				trunc:   spec.decide(FaultTruncate, n, spec.Truncate),
				delay:   spec.latencyFor(n),
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at n=%d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// And it actually injects something at these rates.
	fired := 0
	for _, d := range a {
		if d.drop || d.reset || d.dup || d.corrupt || d.trunc || d.delay > 0 {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("schedule fired no faults at all")
	}
}

func TestStatsInjected(t *testing.T) {
	var c counters
	c.drop.Add(2)
	c.latency.Add(3)
	c.requests.Add(10)
	if got := c.snapshot().Injected(); got != 5 {
		t.Fatalf("Injected() = %d, want 5", got)
	}
}

// TestExampleSpecsLoad keeps the shipped example schedules loadable: the
// README tells operators to pass them to -chaos-spec verbatim, so a field
// rename that strands them is a doc bug this test turns into a red build.
func TestExampleSpecsLoad(t *testing.T) {
	matches, err := filepath.Glob("../../examples/chaos/*.json")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no example chaos specs found: %v", err)
	}
	for _, f := range matches {
		spec, err := LoadSpec(f)
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if spec == (Spec{}) {
			t.Errorf("%s: example spec injects nothing", f)
		}
	}
}
