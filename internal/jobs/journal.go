// The write-ahead job journal: a CRC-guarded JSONL file that records every
// accepted submission and its terminal outcome, so a daemon crash or restart
// can never silently lose queued or running work.
//
// Record grammar (one per line):
//
//	<crc32c-hex8> <json entry>\n
//
// where the CRC covers exactly the JSON bytes. Ops:
//
//	submit     the job was accepted into the queue (params retained so the
//	           request can be rebuilt verbatim after a restart)
//	done       the job finished complete (or converged) — resolved
//	failed     the job failed with a typed error — resolved (a restart must
//	           not blindly retry a request that is deterministically broken)
//	truncated  the job finished with a Truncated partial (drain/deadline);
//	           it stays PENDING so the next boot resumes it from its
//	           checkpoint instead of dropping the committed prefix
//
// Replay walks the file in order and folds ops per key: the pending set is
// "every submitted key without a resolving done/failed". A torn tail — the
// crash happened mid-append — is detected by the per-line CRC and discarded
// from the first bad line on (everything after an undecodable record is
// untrusted), counted in Stats.Torn. Journal write failures degrade
// durability, never correctness: appends report the error to the caller,
// which records it and keeps serving.
package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"qisim/internal/rescache"
	"qisim/internal/simerr"
)

// Journal ops.
const (
	OpSubmit    = "submit"
	OpDone      = "done"
	OpFailed    = "failed"
	OpTruncated = "truncated"
	// OpLease records a distributed shard-range assignment (job key +
	// [start,end) shard window + worker + expiry), so a coordinator crash
	// can reconstruct in-flight assignments instead of silently forgetting
	// who was running what.
	OpLease = "lease"
	// OpLeaseDone resolves every lease on a shard range (the unit's result
	// was durably recorded; any duplicate hedged lease is moot).
	OpLeaseDone = "lease-done"
)

var journalCRC = crc32.MakeTable(crc32.Castagnoli)

// journalEntry is one JSONL record.
type journalEntry struct {
	Op     string          `json:"op"`
	Kind   Kind            `json:"kind"`
	Key    rescache.Key    `json:"key"`
	Params json.RawMessage `json:"params,omitempty"`
	// Tenant and Parent record the submission's scheduling attribution and
	// parent linkage (OpSubmit only). Parent holds the parent job's KEY —
	// job IDs are not stable across restarts — so recovery can tell a
	// sweep's child from a top-level job and let the resubmitted parent
	// re-adopt it instead of double-running the fan-out.
	Tenant string `json:"tenant,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Lease fields (OpLease/OpLeaseDone only).
	Start     int       `json:"start,omitempty"`
	End       int       `json:"end,omitempty"`
	Worker    string    `json:"worker,omitempty"`
	ExpiresMS int64     `json:"expires_ms,omitempty"`
	At        time.Time `json:"at"`
}

// PendingJob is one unresolved submission recovered from the journal.
type PendingJob struct {
	Kind   Kind
	Key    rescache.Key
	Params json.RawMessage
	// Tenant is the submission's scheduling attribution ("" = anonymous).
	Tenant string
	// Parent is the parent job's key ("" for top-level jobs). A pending
	// child whose parent is also pending is re-adopted by the resubmitted
	// parent rather than resubmitted on its own.
	Parent string
	// Truncated records that a previous life already ran this job partway
	// (drain/deadline) — a checkpoint likely exists to resume from.
	Truncated bool
	At        time.Time
}

// PendingLease is one outstanding distributed shard-range assignment
// recovered from the journal: a lease record without a resolving
// lease-done (and whose job is itself still pending).
type PendingLease struct {
	Kind   Kind
	Key    rescache.Key
	Start  int
	End    int
	Worker string
	// ExpiresMS is the wall-clock expiry recorded at grant time (Unix
	// milliseconds). A restarted coordinator treats recovered leases as
	// expiring at max(now, ExpiresMS) — renewals are not journaled, so the
	// recorded expiry is a lower bound.
	ExpiresMS int64
	At        time.Time
}

// JournalStats are the journal's cumulative observability counters.
type JournalStats struct {
	// Replayed counts valid entries folded at open time.
	Replayed int
	// Torn counts discarded undecodable tail records (crash mid-append).
	Torn int
	// Appends counts successful record writes this life.
	Appends int
	// AppendErrors counts failed record writes (durability degraded).
	AppendErrors int
	// Compactions counts atomic rewrites.
	Compactions int
}

// Journal is the append-only WAL. Safe for concurrent use.
type Journal struct {
	mu         sync.Mutex
	path       string
	f          *os.File
	pending    map[rescache.Key]*PendingJob
	order      []rescache.Key // submission order (deterministic recovery)
	leases     map[string]*PendingLease
	leaseOrder []string // grant order (deterministic recovery)
	stats      JournalStats
	onAppend   func(op, key string) // observability hook; see Observe
}

// Observe registers a hook called with (op, key) after every successful
// record write — the seam the service layer uses to land journal appends in
// the flight recorder. The hook runs under the journal lock: it must be
// cheap and must not call back into the journal. Set before concurrent use.
func (j *Journal) Observe(fn func(op, key string)) {
	j.mu.Lock()
	j.onAppend = fn
	j.mu.Unlock()
}

// leaseID keys a lease by (job, shard range, worker): hedged re-dispatch
// legitimately puts two workers on one range, and both must be visible
// after a crash.
func leaseID(key rescache.Key, start, end int, worker string) string {
	return fmt.Sprintf("%s:%d-%d:%s", key, start, end, worker)
}

// OpenJournal opens (creating if needed) the journal at path and replays its
// records into the pending set. A torn tail is tolerated and counted; any
// other read failure is a typed error — a daemon must not boot on a journal
// it cannot interpret.
func OpenJournal(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, simerr.Invalidf("journal: create dir: %v", err)
	}
	j := &Journal{path: path, pending: map[rescache.Key]*PendingJob{}, leases: map[string]*PendingLease{}}
	if body, err := os.ReadFile(path); err == nil {
		j.replay(body)
	} else if !os.IsNotExist(err) {
		return nil, simerr.Invalidf("journal: read %s: %v", path, err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, simerr.Invalidf("journal: open %s: %v", path, err)
	}
	j.f = f
	return j, nil
}

// replay folds the journal body into the pending set, stopping at the first
// undecodable record (a torn tail: everything after it is untrusted).
func (j *Journal) replay(body []byte) {
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		e, ok := decodeJournalLine(sc.Text())
		if !ok {
			j.stats.Torn++
			return
		}
		j.stats.Replayed++
		j.applyLocked(e)
	}
	if sc.Err() != nil {
		j.stats.Torn++
	}
}

// decodeJournalLine verifies one "<crc8hex> <json>" record.
func decodeJournalLine(line string) (journalEntry, bool) {
	var e journalEntry
	if len(line) < 10 || line[8] != ' ' {
		return e, false
	}
	var want uint32
	if _, err := fmt.Sscanf(line[:8], "%08x", &want); err != nil {
		return e, false
	}
	payload := []byte(line[9:])
	if crc32.Checksum(payload, journalCRC) != want {
		return e, false
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, false
	}
	if e.Op == "" || e.Kind == "" || e.Key == "" {
		return e, false
	}
	return e, true
}

// applyLocked folds one entry into the pending set.
func (j *Journal) applyLocked(e journalEntry) {
	switch e.Op {
	case OpSubmit:
		if _, ok := j.pending[e.Key]; !ok {
			j.order = append(j.order, e.Key)
		}
		j.pending[e.Key] = &PendingJob{Kind: e.Kind, Key: e.Key, Params: e.Params, Tenant: e.Tenant, Parent: e.Parent, At: e.At}
	case OpDone, OpFailed:
		delete(j.pending, e.Key)
		j.dropLeasesLocked(e.Key, -1, -1)
	case OpTruncated:
		if p, ok := j.pending[e.Key]; ok {
			p.Truncated = true
		}
	case OpLease:
		id := leaseID(e.Key, e.Start, e.End, e.Worker)
		if _, ok := j.leases[id]; !ok {
			j.leaseOrder = append(j.leaseOrder, id)
		}
		j.leases[id] = &PendingLease{
			Kind: e.Kind, Key: e.Key, Start: e.Start, End: e.End,
			Worker: e.Worker, ExpiresMS: e.ExpiresMS, At: e.At,
		}
	case OpLeaseDone:
		j.dropLeasesLocked(e.Key, e.Start, e.End)
	}
}

// dropLeasesLocked resolves every lease on the given shard range of a job
// (start < 0 drops all the job's leases, used when the job itself
// resolves). Any worker's lease on the range goes — a duplicate hedged
// assignment is moot once the unit's result is durable.
func (j *Journal) dropLeasesLocked(key rescache.Key, start, end int) {
	for id, l := range j.leases {
		if l.Key != key {
			continue
		}
		if start >= 0 && (l.Start != start || l.End != end) {
			continue
		}
		delete(j.leases, id)
	}
}

// Append durably records one op (write + fsync). The in-memory pending set
// is updated even when the disk write fails, so Pending/Compact stay
// coherent with what the manager actually did.
func (j *Journal) Append(op string, kind Kind, key rescache.Key, params json.RawMessage) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := journalEntry{Op: op, Kind: kind, Key: key, Params: params, At: time.Now().UTC()}
	j.applyLocked(e)
	return j.writeLocked(e)
}

// AppendSubmit durably records an accepted submission together with its
// tenant attribution and parent linkage (parent is the parent job's key,
// "" for top-level jobs). Same durability contract as Append.
func (j *Journal) AppendSubmit(kind Kind, key rescache.Key, params json.RawMessage, tenant, parent string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := journalEntry{Op: OpSubmit, Kind: kind, Key: key, Params: params, Tenant: tenant, Parent: parent, At: time.Now().UTC()}
	j.applyLocked(e)
	return j.writeLocked(e)
}

// AppendLease durably records a lease grant (OpLease) or a shard-range
// resolution (OpLeaseDone). Same durability contract as Append: in-memory
// state updates even when the disk write fails.
func (j *Journal) AppendLease(op string, kind Kind, key rescache.Key, start, end int, worker string, expiresMS int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := journalEntry{
		Op: op, Kind: kind, Key: key,
		Start: start, End: end, Worker: worker, ExpiresMS: expiresMS,
		At: time.Now().UTC(),
	}
	j.applyLocked(e)
	return j.writeLocked(e)
}

// writeLocked appends one already-applied entry to the file (write+fsync).
func (j *Journal) writeLocked(e journalEntry) error {
	payload, err := json.Marshal(e)
	if err != nil {
		j.stats.AppendErrors++
		return simerr.Invalidf("journal: marshal %s/%s: %v", e.Op, e.Key, err)
	}
	if j.f == nil {
		j.stats.AppendErrors++
		return simerr.Invalidf("journal: append after close")
	}
	line := fmt.Sprintf("%08x %s\n", crc32.Checksum(payload, journalCRC), payload)
	if _, err := j.f.WriteString(line); err != nil {
		j.stats.AppendErrors++
		return simerr.Invalidf("journal: append: %v", err)
	}
	if err := j.f.Sync(); err != nil {
		j.stats.AppendErrors++
		return simerr.Invalidf("journal: sync: %v", err)
	}
	j.stats.Appends++
	if j.onAppend != nil {
		j.onAppend(e.Op, string(e.Key))
	}
	return nil
}

// PendingLeases returns the outstanding shard-range assignments (grant
// order) whose jobs are themselves still pending — the set a restarted
// coordinator re-adopts as in-flight work.
func (j *Journal) PendingLeases() []PendingLease {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]PendingLease, 0, len(j.leases))
	for _, id := range j.leaseOrder {
		l, ok := j.leases[id]
		if !ok {
			continue
		}
		if _, jobPending := j.pending[l.Key]; !jobPending {
			continue
		}
		out = append(out, *l)
	}
	return out
}

// Pending returns the unresolved submissions in original submission order.
func (j *Journal) Pending() []PendingJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]PendingJob, 0, len(j.pending))
	for _, k := range j.order {
		if p, ok := j.pending[k]; ok {
			out = append(out, *p)
		}
	}
	return out
}

// Compact atomically rewrites the journal to hold only the pending set
// (submit records, plus a truncated marker for partially-run jobs), bounding
// file growth across restarts. The rewrite goes through a temp file + rename
// with the same torn-write guarantees as checkpoint snapshots.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp-*")
	if err != nil {
		return simerr.Invalidf("journal: compact temp: %v", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	write := func(e journalEntry) error {
		payload, err := json.Marshal(e)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(tmp, "%08x %s\n", crc32.Checksum(payload, journalCRC), payload)
		return err
	}
	for _, k := range j.order {
		p, ok := j.pending[k]
		if !ok {
			continue
		}
		if err := write(journalEntry{Op: OpSubmit, Kind: p.Kind, Key: p.Key, Params: p.Params, Tenant: p.Tenant, Parent: p.Parent, At: p.At}); err != nil {
			tmp.Close()
			return simerr.Invalidf("journal: compact write: %v", err)
		}
		if p.Truncated {
			if err := write(journalEntry{Op: OpTruncated, Kind: p.Kind, Key: p.Key, At: p.At}); err != nil {
				tmp.Close()
				return simerr.Invalidf("journal: compact write: %v", err)
			}
		}
	}
	for _, id := range j.leaseOrder {
		l, ok := j.leases[id]
		if !ok {
			continue
		}
		if _, jobPending := j.pending[l.Key]; !jobPending {
			// The job resolved; its leases are garbage — drop them in the
			// rewrite.
			delete(j.leases, id)
			continue
		}
		e := journalEntry{
			Op: OpLease, Kind: l.Kind, Key: l.Key,
			Start: l.Start, End: l.End, Worker: l.Worker, ExpiresMS: l.ExpiresMS,
			At: l.At,
		}
		if err := write(e); err != nil {
			tmp.Close()
			return simerr.Invalidf("journal: compact write: %v", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return simerr.Invalidf("journal: compact sync: %v", err)
	}
	if err := tmp.Close(); err != nil {
		return simerr.Invalidf("journal: compact close: %v", err)
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		return simerr.Invalidf("journal: compact rename: %v", err)
	}
	// Reopen the append handle on the new inode; drop resolved keys from the
	// order index while we are at it.
	old := j.f
	f, err := os.OpenFile(j.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return simerr.Invalidf("journal: compact reopen: %v", err)
	}
	j.f = f
	if old != nil {
		old.Close()
	}
	kept := j.order[:0]
	for _, k := range j.order {
		if _, ok := j.pending[k]; ok {
			kept = append(kept, k)
		}
	}
	j.order = kept
	keptLeases := j.leaseOrder[:0]
	for _, id := range j.leaseOrder {
		if _, ok := j.leases[id]; ok {
			keptLeases = append(keptLeases, id)
		}
	}
	j.leaseOrder = keptLeases
	j.stats.Compactions++
	return nil
}

// Stats returns a snapshot of the cumulative counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the append handle (pending state stays readable).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
