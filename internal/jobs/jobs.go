// Package jobs is qisimd's asynchronous execution layer: a bounded
// in-memory queue feeding a worker pool that drives the context-aware
// simulation entry points (internal/simrun's ...Ctx variants) and lands
// completed results in the content-addressed cache (internal/rescache).
//
// The flow mirrors the CLI contract one level up the stack:
//
//   - every job runs under a per-job context derived from the manager's
//     base context (plus an optional per-job deadline);
//   - cancellation — a drain, a deadline — surfaces through the existing
//     partial-result path: the job finishes "done" with a Truncated-flagged
//     status and a best-so-far body, never a hang or a lost run;
//   - hard failures carry their simerr class, which the HTTP layer maps to
//     status codes exactly as the CLIs map them to exit codes 3–7.
//
// Duplicate submissions coalesce (singleflight): while a job for key K is
// queued or running, submitting K again returns the same job instead of a
// second computation, and a completed K is served straight from the cache.
// Deterministic sharding makes this sound — the cached bytes are bit-exactly
// what a recomputation would produce. Truncated partials are deliberately
// NEVER cached (they are the one non-deterministic outcome).
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qisim/internal/obs"
	"qisim/internal/rescache"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// Kind names one of the service's job families.
type Kind string

// The five served analysis kinds.
const (
	KindScalabilityAnalyze Kind = "scalability.analyze"
	KindScalabilitySweep   Kind = "scalability.sweep"
	KindSurfaceMC          Kind = "surface.mc"
	KindPauliMC            Kind = "pauli.mc"
	KindReadoutMC          Kind = "readout.mc"
)

// Kinds lists every served kind (stable order, for docs and validation).
func Kinds() []Kind {
	return []Kind{KindScalabilityAnalyze, KindScalabilitySweep, KindSurfaceMC, KindPauliMC, KindReadoutMC}
}

// Valid reports whether k names a served kind.
func (k Kind) Valid() bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// State is a job's lifecycle state.
type State string

// Lifecycle: queued → running → done | failed. Cached submissions are born
// done.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Runner computes one job: it must honour ctx (the drain/deadline channel),
// feed progress into the callback (wire it to simrun.Options.Progress), and
// return the serialized result body plus the run's flagged status. A
// cancelled run returns (partialBody, truncatedStatus, nil) — the partial-
// result contract — while hard failures return a simerr-classed error.
type Runner func(ctx context.Context, progress func(completed, requested int)) (body []byte, st simrun.Status, err error)

// Progress is a job's live shot-level progress (zero until the engine
// commits its first shard).
type Progress struct {
	Completed int `json:"completed"`
	Requested int `json:"requested"`
}

// Snapshot is an immutable copy of a job's state, safe to serialize.
type Snapshot struct {
	ID         string          `json:"id"`
	Kind       Kind            `json:"kind"`
	Key        rescache.Key    `json:"key"`
	State      State           `json:"state"`
	Cached     bool            `json:"cached"`
	CreatedAt  time.Time       `json:"created_at"`
	StartedAt  *time.Time      `json:"started_at,omitempty"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
	Progress   Progress        `json:"progress"`
	Status     *simrun.Status  `json:"status,omitempty"`
	ErrorClass string          `json:"error_class,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Hooks are the manager's observability callbacks (all optional). They fire
// outside the manager lock.
type Hooks struct {
	// JobStarted fires when a worker picks the job up.
	JobStarted func(kind Kind)
	// JobFinished fires once per executed job with its ID and terminal
	// state, simerr class ("" unless failed), final status (nil when failed
	// before a run produced one) and wall-clock duration. Cached
	// submissions do not fire it (nothing executed). The job's finished
	// trace — when the manager traces jobs — is already retrievable via
	// Manager.Trace(id) by the time the hook fires.
	JobFinished func(id string, kind Kind, state State, errClass string, st *simrun.Status, dur time.Duration)
}

// Outcome classifies what Submit did.
type Outcome int

const (
	// OutcomeQueued: a new computation was enqueued.
	OutcomeQueued Outcome = iota
	// OutcomeCoalesced: an identical job is already in flight; the caller
	// was attached to it (singleflight).
	OutcomeCoalesced
	// OutcomeCached: the result was already in the cache; the returned job
	// is born done with the cached bytes.
	OutcomeCached
)

// String renders the outcome for logs and HTTP responses.
func (o Outcome) String() string {
	switch o {
	case OutcomeCoalesced:
		return "coalesced"
	case OutcomeCached:
		return "cached"
	default:
		return "queued"
	}
}

// Typed submission failures.
var (
	// ErrQueueFull: the bounded queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("job queue full")
	// ErrDraining: the manager stopped accepting work (classed Interrupted,
	// HTTP 503).
	ErrDraining = simerr.Interruptedf("job manager draining")
)

// Config parameterises a Manager.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the queued-but-not-running backlog (default 64).
	QueueDepth int
	// JobTimeout caps each job's wall clock (0 = none); expiry surfaces
	// through the partial-result path like any deadline.
	JobTimeout time.Duration
	// MaxRecords bounds retained finished-job records (default 1024); the
	// oldest finished records are evicted first. In-flight jobs are never
	// evicted.
	MaxRecords int
	// Cache receives completed (non-truncated) results and serves repeat
	// submissions. Optional: nil disables caching.
	Cache *rescache.Cache
	// Journal, when set, write-ahead-logs every accepted submission and its
	// terminal outcome so queued/running work survives a daemon restart (see
	// journal.go). Journal write failures degrade durability — they are
	// counted on the journal and surfaced through metrics — but never fail a
	// submission or a job.
	Journal *Journal
	// BaseContext is the ancestor of every job context (default
	// context.Background()). Tests and fault injection use it to inject
	// deterministic cancellation.
	BaseContext context.Context
	// Hooks are the observability callbacks.
	Hooks Hooks
	// Logger receives the manager's lifecycle records (submissions, state
	// transitions, journal degradation) with job IDs attached. Nil = silent.
	Logger *slog.Logger
	// TraceMaxSpans, when positive, makes the manager trace every executed
	// job: a per-job obs.Tracer (span buffer bounded at this many spans)
	// records a "job" root span with "queue.wait" and "executor" children,
	// journal appends, and — via the job context handed to the Runner — the
	// engine's mc.run/shard/merge/checkpoint spans. Finished traces are
	// served by Manager.Trace. Zero disables job tracing entirely.
	TraceMaxSpans int
}

// job is the manager-internal record. Mutable fields are guarded by the
// manager mutex; the progress cells are atomics so the engine's Progress
// hook never contends with HTTP polls.
type job struct {
	id      string
	kind    Kind
	key     rescache.Key
	cached  bool
	created time.Time

	run    Runner
	params json.RawMessage // journaled request params (nil without a journal)
	done   chan struct{}   // closed at finalization

	state             State
	started, finished time.Time
	status            *simrun.Status
	errClass, errMsg  string
	result            []byte

	// Tracing (nil/empty when Config.TraceMaxSpans == 0 or the job was
	// served from cache). rootSpan covers submit→finalize, queueSpan the
	// queued interval; trace is the finished snapshot stored before done
	// closes, so pollers that see a terminal state can always fetch it.
	tr        *obs.Tracer
	rootSpan  *obs.Span
	queueSpan *obs.Span
	trace     *obs.Trace

	progressDone, progressTotal atomic.Int64
}

// Manager owns the queue, the worker pool, the job records and the
// singleflight index.
type Manager struct {
	cfg    Config
	log    *slog.Logger
	ctx    context.Context // ancestor of every job context
	cancel context.CancelFunc

	mu       sync.Mutex
	seq      int64
	byID     map[string]*job
	order    []*job // creation order, for record eviction
	inflight map[rescache.Key]*job
	queue    chan *job
	started  bool
	draining bool

	wg sync.WaitGroup
}

// NewManager builds a Manager; call Start before submitting.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = 1024
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	return &Manager{
		cfg:      cfg,
		log:      obs.OrDiscard(cfg.Logger),
		ctx:      ctx,
		cancel:   cancel,
		byID:     map[string]*job{},
		inflight: map[rescache.Key]*job{},
		queue:    make(chan *job, cfg.QueueDepth),
	}
}

// Start launches the worker pool. Idempotent.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	m.wg.Add(m.cfg.Workers)
	for i := 0; i < m.cfg.Workers; i++ {
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.execute(j)
			}
		}()
	}
}

// Submit routes one request: cache hit → a job born done with the cached
// bytes; key already in flight → the existing job (coalesced); otherwise a
// new queued job. The cache probe and the singleflight insert happen under
// one lock, so concurrent duplicates can never both enqueue.
//
// params is the raw request-params JSON retained in the journal (nil when no
// journal is configured or the caller has no params) so the exact request
// can be rebuilt and resubmitted after a restart. Cached and coalesced
// submissions are not journaled — nothing new was enqueued.
func (m *Manager) Submit(kind Kind, key rescache.Key, params json.RawMessage, run Runner) (Snapshot, Outcome, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return Snapshot{}, OutcomeQueued, ErrDraining
	}
	if j, ok := m.inflight[key]; ok {
		return m.snapshotLocked(j), OutcomeCoalesced, nil
	}
	if m.cfg.Cache != nil {
		if body, ok := m.cfg.Cache.Get(key); ok {
			j := m.newJobLocked(kind, key)
			now := time.Now()
			j.cached = true
			j.state = StateDone
			j.started, j.finished = now, now
			j.result = body
			close(j.done)
			m.log.Debug("job served from cache", "job", j.id, "kind", string(kind))
			return m.snapshotLocked(j), OutcomeCached, nil
		}
	}
	j := m.newJobLocked(kind, key)
	j.run = run
	j.params = params
	j.state = StateQueued
	if m.cfg.TraceMaxSpans > 0 {
		// The job's trace is born at acceptance: the root span covers the
		// whole lifecycle and queue.wait measures time-to-worker.
		j.tr = obs.NewTracer(obs.TracerConfig{ID: j.id, MaxSpans: m.cfg.TraceMaxSpans})
		j.rootSpan = j.tr.Start("job", nil, obs.String("kind", string(kind)))
		j.queueSpan = j.tr.Start("queue.wait", j.rootSpan)
	}
	select {
	case m.queue <- j:
	default:
		// Queue full: roll the record back and refuse.
		delete(m.byID, j.id)
		m.order = m.order[:len(m.order)-1]
		return Snapshot{}, OutcomeQueued, fmt.Errorf("%w (depth %d)", ErrQueueFull, m.cfg.QueueDepth)
	}
	m.inflight[key] = j
	if m.cfg.Journal != nil {
		// Best-effort WAL: a failed append degrades durability (counted on
		// the journal), it does not refuse the submission.
		js := j.tr.Start("journal.append", j.rootSpan, obs.String("op", string(OpSubmit)))
		if err := m.cfg.Journal.Append(OpSubmit, kind, key, params); err != nil {
			m.log.Warn("journal append failed; durability degraded",
				"job", j.id, "op", string(OpSubmit), "err", err)
		}
		js.End()
	}
	m.log.Info("job queued", "job", j.id, "kind", string(kind))
	return m.snapshotLocked(j), OutcomeQueued, nil
}

// newJobLocked allocates a record; callers hold m.mu.
func (m *Manager) newJobLocked(kind Kind, key rescache.Key) *job {
	m.seq++
	j := &job{
		id:      fmt.Sprintf("j-%06d", m.seq),
		kind:    kind,
		key:     key,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	m.byID[j.id] = j
	m.order = append(m.order, j)
	m.evictRecordsLocked()
	return j
}

// evictRecordsLocked drops the oldest finished records above MaxRecords.
func (m *Manager) evictRecordsLocked() {
	excess := len(m.byID) - m.cfg.MaxRecords
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, j := range m.order {
		if excess > 0 && (j.state == StateDone || j.state == StateFailed) {
			delete(m.byID, j.id)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
}

// execute runs one job on a worker goroutine.
func (m *Manager) execute(j *job) {
	m.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	run := j.run
	m.mu.Unlock()
	j.queueSpan.End() // queued → picked up by a worker
	if m.cfg.Hooks.JobStarted != nil {
		m.cfg.Hooks.JobStarted(j.kind)
	}

	ctx := m.ctx
	cancel := context.CancelFunc(func() {})
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.cfg.JobTimeout)
	}
	// The job context carries the job identity for log stamping and — when
	// tracing — the executor span, so the engine's mc.run span (and its
	// shard/merge/checkpoint children) nest under it.
	ctx = obs.WithJobID(ctx, j.id)
	execSpan := j.tr.Start("executor", j.rootSpan, obs.String("kind", string(j.kind)))
	ctx = obs.ContextWithSpan(ctx, j.tr, execSpan)
	m.log.InfoContext(ctx, "job started", "kind", string(j.kind))
	progress := func(completed, requested int) {
		j.progressDone.Store(int64(completed))
		j.progressTotal.Store(int64(requested))
	}
	body, st, err := runSafely(run, ctx, progress)
	cancel()
	if err != nil {
		execSpan.SetAttr(obs.String("error_class", simerr.Class(err)))
	} else {
		execSpan.SetAttr(obs.String("stop", st.StopReason))
	}
	execSpan.End()

	// Resolve the WAL entry before finalizing, so the append lands inside
	// the job's trace: done and failed retire the submission; truncated
	// keeps it pending so the next boot resumes it from its checkpoint
	// instead of dropping the committed prefix.
	if m.cfg.Journal != nil {
		op := OpDone
		switch {
		case err != nil:
			op = OpFailed
		case st.Truncated:
			op = OpTruncated
		}
		js := j.tr.Start("journal.append", j.rootSpan, obs.String("op", string(op)))
		if jerr := m.cfg.Journal.Append(op, j.kind, j.key, nil); jerr != nil {
			m.log.WarnContext(ctx, "journal append failed; durability degraded",
				"op", string(op), "err", jerr)
		}
		js.End()
	}
	j.rootSpan.End()

	m.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errClass = simerr.Class(err)
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.result = body
		stCopy := st
		j.status = &stCopy
		// Cache only complete (or converged) results: a Truncated partial
		// is the one non-deterministic outcome and must never be replayed
		// to a future identical request.
		if m.cfg.Cache != nil && !st.Truncated {
			m.cfg.Cache.Put(j.key, string(j.kind), body)
		}
	}
	if j.tr != nil {
		// Snapshot the finished trace before done closes: anyone observing
		// a terminal state can fetch the trace without racing finalization.
		snap := j.tr.Snapshot()
		j.trace = &snap
	}
	delete(m.inflight, j.key)
	close(j.done)
	snapState, errClass, status := j.state, j.errClass, j.status
	dur := j.finished.Sub(j.started)
	m.mu.Unlock()

	if err != nil {
		m.log.WarnContext(ctx, "job failed",
			"kind", string(j.kind), "class", errClass, "err", err, "dur", dur)
	} else {
		m.log.InfoContext(ctx, "job finished",
			"kind", string(j.kind), "stop", st.StopReason, "dur", dur)
	}
	if m.cfg.Hooks.JobFinished != nil {
		m.cfg.Hooks.JobFinished(j.id, j.kind, snapState, errClass, status, dur)
	}
}

// runSafely invokes the runner with a panic backstop: an escaped panic
// becomes a typed failed job, never a dead worker.
func runSafely(run Runner, ctx context.Context, progress func(int, int)) (body []byte, st simrun.Status, err error) {
	defer simerr.RecoverInto(&err, simerr.ErrInvalidConfig)
	return run(ctx, progress)
}

// Get returns a snapshot of the job by ID.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return Snapshot{}, false
	}
	return m.snapshotLocked(j), true
}

// Trace returns the job's finished trace. The bool reports whether the job
// exists at all; the returned state disambiguates the empty trace: a job
// that is still queued/running has no trace YET (poll again), while a
// terminal job without one (served from cache, or tracing disabled) never
// will — Trace.Spans stays empty in both cases and the caller decides from
// the state. The qisimd trace endpoint maps this to 404/202/200.
func (m *Manager) Trace(id string) (obs.Trace, State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return obs.Trace{}, "", false
	}
	if j.trace == nil {
		return obs.Trace{}, j.state, true
	}
	return *j.trace, j.state, true
}

// Wait blocks until the job finalizes (or ctx fires) and returns its final
// snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.byID[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("jobs: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Snapshot{}, simerr.Interruptedf("jobs: wait for %s: %v", id, ctx.Err())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked(j), nil
}

func (m *Manager) snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:        j.id,
		Kind:      j.kind,
		Key:       j.key,
		State:     j.state,
		Cached:    j.cached,
		CreatedAt: j.created,
		Progress: Progress{
			Completed: int(j.progressDone.Load()),
			Requested: int(j.progressTotal.Load()),
		},
		ErrorClass: j.errClass,
		Error:      j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	if j.status != nil {
		st := *j.status
		s.Status = &st
		// Final status supersedes the live progress cells.
		s.Progress = Progress{Completed: st.Completed, Requested: st.Requested}
	}
	if j.state == StateDone {
		s.Result = json.RawMessage(j.result)
	}
	return s
}

// QueueDepth returns the queued-but-not-running backlog.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// InFlight returns the number of queued-or-running jobs.
func (m *Manager) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inflight)
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops the manager gracefully: new submissions are refused
// (ErrDraining), every in-flight job context is cancelled — the running
// simulations return through the existing partial-result path, flagged
// Truncated — and the call blocks until the pool finishes committing those
// partials (or ctx fires, returning ErrInterrupted). Idempotent.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	first := !m.draining
	m.draining = true
	m.mu.Unlock()
	if first {
		m.cancel()     // in-flight jobs see cancellation → Truncated partials
		close(m.queue) // workers exit after draining the (cancelled) backlog
	}
	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return simerr.Interruptedf("jobs: drain timed out: %v", ctx.Err())
	}
}
