// Package jobs is qisimd's asynchronous execution layer: bounded per-tenant
// queues feeding a worker pool that drives the context-aware simulation
// entry points (internal/simrun's ...Ctx variants) and lands completed
// results in the content-addressed cache (internal/rescache).
//
// The flow mirrors the CLI contract one level up the stack:
//
//   - every job runs under a per-job context derived from the manager's
//     base context (plus an optional per-job deadline);
//   - cancellation — a drain, a deadline, an explicit Cancel — surfaces
//     through the existing partial-result path: the job finishes "done" with
//     a Truncated-flagged status and a best-so-far body, never a hang or a
//     lost run;
//   - hard failures carry their simerr class, which the HTTP layer maps to
//     status codes exactly as the CLIs map them to exit codes 3–7.
//
// Duplicate submissions coalesce (singleflight): while a job for key K is
// queued or running, submitting K again returns the same job instead of a
// second computation, and a completed K is served straight from the cache.
// Deterministic sharding makes this sound — the cached bytes are bit-exactly
// what a recomputation would produce. Truncated partials are deliberately
// NEVER cached (they are the one non-deterministic outcome).
//
// Multi-tenancy and fan-out (the DSE layer, see internal/dse):
//
//   - submissions carry an optional tenant; queued work is scheduled fair
//     round-robin BETWEEN tenants (one job per tenant per pass), so a bulk
//     sweep from one tenant cannot starve another's single analysis;
//   - Config.TenantQuota bounds each tenant's in-flight top-level jobs
//     (ErrQuotaExceeded, HTTP 429 with a distinct body);
//   - a job may name a parent: the parent's snapshot aggregates child
//     states, Cancel(parent) cascades to children no other live parent or
//     external submission still needs, and the WAL records the linkage so
//     recovery re-adopts a half-finished sweep under its resubmitted parent;
//   - orchestrator jobs (SubmitOptions.Orchestrator) run on their own
//     goroutine instead of a pool slot, so a parent that blocks waiting for
//     its children can never deadlock the pool that must run them;
//   - every job keeps a bounded event log (state transitions plus
//     Publish()-ed custom events such as partial Pareto frontiers) that
//     Subscribe streams live — the feed behind GET /v1/jobs/{id}/events.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qisim/internal/obs"
	"qisim/internal/rescache"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// Kind names one of the service's job families.
type Kind string

// The served analysis kinds.
const (
	KindScalabilityAnalyze Kind = "scalability.analyze"
	KindScalabilitySweep   Kind = "scalability.sweep"
	KindSurfaceMC          Kind = "surface.mc"
	KindPauliMC            Kind = "pauli.mc"
	KindReadoutMC          Kind = "readout.mc"
	// KindDSESweep is the design-space exploration parent: it expands a
	// parameter grid into KindDSEPoint children fanned out through this
	// queue and folds their results into a streamed Pareto frontier.
	KindDSESweep Kind = "dse.sweep"
	// KindDSEPoint is one grid-point evaluation (a child of a dse.sweep,
	// also submittable directly).
	KindDSEPoint Kind = "dse.point"
)

// Kinds lists every served kind (stable order, for docs and validation).
func Kinds() []Kind {
	return []Kind{KindScalabilityAnalyze, KindScalabilitySweep, KindSurfaceMC, KindPauliMC, KindReadoutMC, KindDSESweep, KindDSEPoint}
}

// Valid reports whether k names a served kind.
func (k Kind) Valid() bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// State is a job's lifecycle state.
type State string

// Lifecycle: queued → running → done | failed. Cached submissions are born
// done.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Runner computes one job: it must honour ctx (the drain/deadline channel),
// feed progress into the callback (wire it to simrun.Options.Progress), and
// return the serialized result body plus the run's flagged status. A
// cancelled run returns (partialBody, truncatedStatus, nil) — the partial-
// result contract — while hard failures return a simerr-classed error.
type Runner func(ctx context.Context, progress func(completed, requested int)) (body []byte, st simrun.Status, err error)

// Progress is a job's live shot-level progress (zero until the engine
// commits its first shard).
type Progress struct {
	Completed int `json:"completed"`
	Requested int `json:"requested"`
}

// ChildStats aggregates the states of a parent job's children. Children
// evicted from the record window were finished, and only finished children
// are evictable, so they are counted as done.
type ChildStats struct {
	Total   int `json:"total"`
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

// Snapshot is an immutable copy of a job's state, safe to serialize.
type Snapshot struct {
	ID         string          `json:"id"`
	Kind       Kind            `json:"kind"`
	Key        rescache.Key    `json:"key"`
	State      State           `json:"state"`
	Cached     bool            `json:"cached"`
	Tenant     string          `json:"tenant,omitempty"`
	Parent     string          `json:"parent,omitempty"`
	Children   *ChildStats     `json:"children,omitempty"`
	CreatedAt  time.Time       `json:"created_at"`
	StartedAt  *time.Time      `json:"started_at,omitempty"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
	Progress   Progress        `json:"progress"`
	Status     *simrun.Status  `json:"status,omitempty"`
	ErrorClass string          `json:"error_class,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Hooks are the manager's observability callbacks (all optional). They fire
// outside the manager lock.
type Hooks struct {
	// JobStarted fires when a worker picks the job up.
	JobStarted func(kind Kind)
	// JobFinished fires once per executed job with its ID and terminal
	// state, simerr class ("" unless failed), final status (nil when failed
	// before a run produced one) and wall-clock duration. Cached
	// submissions do not fire it (nothing executed). The job's finished
	// trace — when the manager traces jobs — is already retrievable via
	// Manager.Trace(id) by the time the hook fires.
	JobFinished func(id string, kind Kind, state State, errClass string, st *simrun.Status, dur time.Duration)
	// JobPanicked fires from inside the panic backstop with the recovered
	// value, before the panic is flattened into a typed failed job — the
	// hook's chance to persist crash context (e.g. a flight-recorder
	// dump) while the evidence still exists. It runs on the panicking
	// worker goroutine; keep it cheap and never panic from it.
	JobPanicked func(id string, recovered any)
}

// Outcome classifies what Submit did.
type Outcome int

const (
	// OutcomeQueued: a new computation was enqueued.
	OutcomeQueued Outcome = iota
	// OutcomeCoalesced: an identical job is already in flight; the caller
	// was attached to it (singleflight).
	OutcomeCoalesced
	// OutcomeCached: the result was already in the cache; the returned job
	// is born done with the cached bytes.
	OutcomeCached
)

// String renders the outcome for logs and HTTP responses.
func (o Outcome) String() string {
	switch o {
	case OutcomeCoalesced:
		return "coalesced"
	case OutcomeCached:
		return "cached"
	default:
		return "queued"
	}
}

// Typed submission failures.
var (
	// ErrQueueFull: the bounded queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("job queue full")
	// ErrQuotaExceeded: the tenant already has TenantQuota top-level jobs
	// in flight (HTTP 429 with a distinct quota-exceeded body).
	ErrQuotaExceeded = errors.New("tenant quota exceeded")
	// ErrDraining: the manager stopped accepting work (classed Interrupted,
	// HTTP 503).
	ErrDraining = simerr.Interruptedf("job manager draining")
)

// Config parameterises a Manager.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the queued-but-not-running backlog across all
	// tenants (default 64).
	QueueDepth int
	// JobTimeout caps each job's wall clock (0 = none); expiry surfaces
	// through the partial-result path like any deadline.
	JobTimeout time.Duration
	// MaxRecords bounds retained finished-job records (default 1024); the
	// oldest finished records are evicted first. In-flight jobs are never
	// evicted.
	MaxRecords int
	// TenantQuota bounds each tenant's in-flight TOP-LEVEL jobs — those
	// submitted without a parent; a sweep's internal fan-out is accounted to
	// its parent, not the quota. 0 = unlimited.
	TenantQuota int
	// MaxEventsPerJob bounds each job's retained event log (default 256).
	// Subscribers lagging further than this may miss intermediate events;
	// state events and the terminal close are never reordered.
	MaxEventsPerJob int
	// Cache receives completed (non-truncated) results and serves repeat
	// submissions. Optional: nil disables caching.
	Cache *rescache.Cache
	// Journal, when set, write-ahead-logs every accepted submission and its
	// terminal outcome so queued/running work survives a daemon restart (see
	// journal.go). Journal write failures degrade durability — they are
	// counted on the journal and surfaced through metrics — but never fail a
	// submission or a job.
	Journal *Journal
	// BaseContext is the ancestor of every job context (default
	// context.Background()). Tests and fault injection use it to inject
	// deterministic cancellation.
	BaseContext context.Context
	// Hooks are the observability callbacks.
	Hooks Hooks
	// Logger receives the manager's lifecycle records (submissions, state
	// transitions, journal degradation) with job IDs attached. Nil = silent.
	Logger *slog.Logger
	// TraceMaxSpans, when positive, makes the manager trace every executed
	// job: a per-job obs.Tracer (span buffer bounded at this many spans)
	// records a "job" root span with "queue.wait" and "executor" children,
	// journal appends, and — via the job context handed to the Runner — the
	// engine's mc.run/shard/merge/checkpoint spans. Finished traces are
	// served by Manager.Trace. Zero disables job tracing entirely.
	TraceMaxSpans int
}

// SubmitOptions extend a submission beyond kind/key/params.
type SubmitOptions struct {
	// Tenant attributes the job for fair scheduling and quotas ("" is the
	// anonymous tenant, itself scheduled fairly against named ones).
	Tenant string
	// Parent links the job under an existing job ID: the parent's snapshot
	// aggregates child states, cancellation cascades (see Cancel), and the
	// WAL records the linkage for recovery re-adoption.
	Parent string
	// Orchestrator runs the job on a dedicated goroutine instead of a pool
	// slot. Parents that submit children and block on them MUST set this:
	// a parent occupying the only pool worker would deadlock its own
	// fan-out. Orchestrator jobs skip the queue (no queue-depth charge) but
	// still count toward the tenant quota and drain like any other job.
	Orchestrator bool
}

// job is the manager-internal record. Mutable fields are guarded by the
// manager mutex; the progress cells are atomics so the engine's Progress
// hook never contends with HTTP polls.
type job struct {
	id      string
	kind    Kind
	key     rescache.Key
	cached  bool
	created time.Time

	tenant       string
	parent       string   // first parent ID (display)
	parents      []string // every parent attached via singleflight
	children     []string // child IDs, submission order
	externalRef  bool     // a parentless submission also wants this job
	orchestrator bool
	quotaCounted bool

	run    Runner
	params json.RawMessage // journaled request params (nil without a journal)
	done   chan struct{}   // closed at finalization

	ctx      context.Context // per-job cancellation root (nil for cached-born)
	cancelFn context.CancelFunc

	state             State
	started, finished time.Time
	status            *simrun.Status
	errClass, errMsg  string
	result            []byte

	// Bounded event log + live subscriptions (see events.go).
	events       []Event
	eventSeq     int
	subs         map[int]chan Event
	subSeq       int
	eventsClosed bool

	// Tracing (nil/empty when Config.TraceMaxSpans == 0 or the job was
	// served from cache). rootSpan covers submit→finalize, queueSpan the
	// queued interval; trace is the finished snapshot stored before done
	// closes, so pollers that see a terminal state can always fetch it.
	tr        *obs.Tracer
	rootSpan  *obs.Span
	queueSpan *obs.Span
	trace     *obs.Trace

	progressDone, progressTotal atomic.Int64
}

// Manager owns the queues, the worker pool, the job records and the
// singleflight index.
type Manager struct {
	cfg    Config
	log    *slog.Logger
	ctx    context.Context // ancestor of every job context
	cancel context.CancelFunc

	mu       sync.Mutex
	cond     *sync.Cond // signals workers when work arrives or drain begins
	seq      int64
	byID     map[string]*job
	order    []*job // creation order, for record eviction
	inflight map[rescache.Key]*job
	queues   map[string][]*job // per-tenant FIFO of queued jobs
	ring     []string          // round-robin order over tenants with queued work
	queued   int               // total queued (not yet running) jobs
	tenants  map[string]int    // in-flight top-level jobs per tenant (quota)
	started  bool
	draining bool

	wg sync.WaitGroup
}

// NewManager builds a Manager; call Start before submitting.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = 1024
	}
	if cfg.MaxEventsPerJob <= 0 {
		cfg.MaxEventsPerJob = DefaultMaxEventsPerJob
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	m := &Manager{
		cfg:      cfg,
		log:      obs.OrDiscard(cfg.Logger),
		ctx:      ctx,
		cancel:   cancel,
		byID:     map[string]*job{},
		inflight: map[rescache.Key]*job{},
		queues:   map[string][]*job{},
		tenants:  map[string]int{},
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Start launches the worker pool. Idempotent.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	m.wg.Add(m.cfg.Workers)
	for i := 0; i < m.cfg.Workers; i++ {
		go m.worker()
	}
}

// worker pulls jobs round-robin across tenants until drain empties the
// backlog (a drained backlog still executes — against the cancelled base
// context — so every accepted job finalizes as a Truncated partial rather
// than vanishing, matching the pre-tenant queue semantics).
func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		for m.queued == 0 && !m.draining {
			m.cond.Wait()
		}
		if m.queued == 0 {
			m.mu.Unlock()
			return
		}
		j := m.nextLocked()
		m.mu.Unlock()
		m.execute(j)
		m.mu.Lock()
	}
}

// nextLocked pops the head of the next tenant's queue, rotating the ring so
// each tenant with queued work gets one slot per pass.
func (m *Manager) nextLocked() *job {
	for len(m.ring) > 0 {
		t := m.ring[0]
		q := m.queues[t]
		if len(q) == 0 {
			m.ring = m.ring[1:]
			delete(m.queues, t)
			continue
		}
		j := q[0]
		if len(q) == 1 {
			m.ring = m.ring[1:]
			delete(m.queues, t)
		} else {
			m.queues[t] = q[1:]
			m.ring = append(m.ring[1:], t)
		}
		m.queued--
		return j
	}
	return nil
}

// enqueueLocked appends j to its tenant's queue and wakes one worker.
func (m *Manager) enqueueLocked(j *job) {
	if len(m.queues[j.tenant]) == 0 {
		m.ring = append(m.ring, j.tenant)
	}
	m.queues[j.tenant] = append(m.queues[j.tenant], j)
	m.queued++
	m.cond.Signal()
}

// Submit routes one request under default options: cache hit → a job born
// done with the cached bytes; key already in flight → the existing job
// (coalesced); otherwise a new queued job. See SubmitOpts.
func (m *Manager) Submit(kind Kind, key rescache.Key, params json.RawMessage, run Runner) (Snapshot, Outcome, error) {
	return m.SubmitOpts(kind, key, params, run, SubmitOptions{})
}

// SubmitOpts routes one request. The cache probe and the singleflight
// insert happen under one lock, so concurrent duplicates can never both
// enqueue.
//
// params is the raw request-params JSON retained in the journal (nil when no
// journal is configured or the caller has no params) so the exact request
// can be rebuilt and resubmitted after a restart. Cached and coalesced
// submissions are not journaled — nothing new was enqueued.
func (m *Manager) SubmitOpts(kind Kind, key rescache.Key, params json.RawMessage, run Runner, o SubmitOptions) (Snapshot, Outcome, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return Snapshot{}, OutcomeQueued, ErrDraining
	}
	var parent *job
	if o.Parent != "" {
		p, ok := m.byID[o.Parent]
		if !ok {
			return Snapshot{}, OutcomeQueued, simerr.Invalidf("jobs: unknown parent job %q", o.Parent)
		}
		parent = p
	}
	if j, ok := m.inflight[key]; ok {
		// Singleflight attach: record who else needs this job so a
		// cascading cancel never kills work another parent (or a direct
		// submission) is still waiting on.
		if parent != nil {
			m.linkLocked(parent, j)
		} else {
			j.externalRef = true
		}
		return m.snapshotLocked(j), OutcomeCoalesced, nil
	}
	if m.cfg.Cache != nil {
		if body, ok := m.cfg.Cache.Get(key); ok {
			j := m.newJobLocked(kind, key)
			now := time.Now()
			j.cached = true
			j.tenant = o.Tenant
			j.state = StateDone
			j.started, j.finished = now, now
			j.result = body
			if parent != nil {
				m.linkLocked(parent, j)
			}
			m.publishStateLocked(j)
			m.closeEventsLocked(j)
			close(j.done)
			m.log.Debug("job served from cache", "job", j.id, "kind", string(kind))
			return m.snapshotLocked(j), OutcomeCached, nil
		}
	}
	if parent == nil && m.cfg.TenantQuota > 0 && m.tenants[o.Tenant] >= m.cfg.TenantQuota {
		return Snapshot{}, OutcomeQueued, fmt.Errorf("%w (tenant %q, quota %d)", ErrQuotaExceeded, o.Tenant, m.cfg.TenantQuota)
	}
	if !o.Orchestrator && m.queued >= m.cfg.QueueDepth {
		return Snapshot{}, OutcomeQueued, fmt.Errorf("%w (depth %d)", ErrQueueFull, m.cfg.QueueDepth)
	}
	j := m.newJobLocked(kind, key)
	j.run = run
	j.params = params
	j.tenant = o.Tenant
	j.orchestrator = o.Orchestrator
	j.state = StateQueued
	j.ctx, j.cancelFn = context.WithCancel(m.ctx)
	if parent != nil {
		m.linkLocked(parent, j)
	} else {
		if m.cfg.TenantQuota > 0 {
			m.tenants[o.Tenant]++
			j.quotaCounted = true
		}
	}
	if m.cfg.TraceMaxSpans > 0 {
		// The job's trace is born at acceptance: the root span covers the
		// whole lifecycle and queue.wait measures time-to-worker.
		j.tr = obs.NewTracer(obs.TracerConfig{ID: j.id, MaxSpans: m.cfg.TraceMaxSpans})
		j.rootSpan = j.tr.Start("job", nil, obs.String("kind", string(kind)))
		j.queueSpan = j.tr.Start("queue.wait", j.rootSpan)
	}
	m.inflight[key] = j
	if m.cfg.Journal != nil {
		// Best-effort WAL: a failed append degrades durability (counted on
		// the journal), it does not refuse the submission. The parent is
		// journaled by KEY, not ID — IDs are not stable across restarts.
		parentKey := ""
		if parent != nil {
			parentKey = string(parent.key)
		}
		js := j.tr.Start("journal.append", j.rootSpan, obs.String("op", string(OpSubmit)))
		if err := m.cfg.Journal.AppendSubmit(kind, key, params, o.Tenant, parentKey); err != nil {
			m.log.Warn("journal append failed; durability degraded",
				"job", j.id, "op", string(OpSubmit), "err", err)
		}
		js.End()
	}
	m.publishStateLocked(j)
	if o.Orchestrator {
		// Orchestrators get their own goroutine: they park in Wait for
		// children the pool must be free to run.
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.execute(j)
		}()
	} else {
		m.enqueueLocked(j)
	}
	m.log.Info("job queued", "job", j.id, "kind", string(kind), "tenant", o.Tenant, "parent", o.Parent)
	return m.snapshotLocked(j), OutcomeQueued, nil
}

// linkLocked attaches j under parent (idempotent per pair).
func (m *Manager) linkLocked(parent *job, j *job) {
	for _, p := range j.parents {
		if p == parent.id {
			return
		}
	}
	j.parents = append(j.parents, parent.id)
	if j.parent == "" {
		j.parent = parent.id
	}
	parent.children = append(parent.children, j.id)
}

// newJobLocked allocates a record; callers hold m.mu.
func (m *Manager) newJobLocked(kind Kind, key rescache.Key) *job {
	m.seq++
	j := &job{
		id:      fmt.Sprintf("j-%06d", m.seq),
		kind:    kind,
		key:     key,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	m.byID[j.id] = j
	m.order = append(m.order, j)
	m.evictRecordsLocked()
	return j
}

// evictRecordsLocked drops the oldest finished records above MaxRecords.
func (m *Manager) evictRecordsLocked() {
	excess := len(m.byID) - m.cfg.MaxRecords
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, j := range m.order {
		if excess > 0 && (j.state == StateDone || j.state == StateFailed) {
			delete(m.byID, j.id)
			excess--
			continue
		}
		kept = append(kept, j)
	}
	m.order = kept
}

// execute runs one job on a worker (or orchestrator) goroutine.
func (m *Manager) execute(j *job) {
	m.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	run := j.run
	m.publishStateLocked(j)
	m.mu.Unlock()
	j.queueSpan.End() // queued → picked up by a worker
	if m.cfg.Hooks.JobStarted != nil {
		m.cfg.Hooks.JobStarted(j.kind)
	}

	ctx := j.ctx
	if ctx == nil {
		ctx = m.ctx
	}
	cancel := context.CancelFunc(func() {})
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, m.cfg.JobTimeout)
	}
	// The job context carries the job identity for log stamping and — when
	// tracing — the executor span, so the engine's mc.run span (and its
	// shard/merge/checkpoint children) nest under it.
	ctx = obs.WithJobID(ctx, j.id)
	execSpan := j.tr.Start("executor", j.rootSpan, obs.String("kind", string(j.kind)))
	ctx = obs.ContextWithSpan(ctx, j.tr, execSpan)
	m.log.InfoContext(ctx, "job started", "kind", string(j.kind))
	progress := func(completed, requested int) {
		j.progressDone.Store(int64(completed))
		j.progressTotal.Store(int64(requested))
	}
	body, st, err := runSafely(run, ctx, progress, func(recovered any) {
		if m.cfg.Hooks.JobPanicked != nil {
			m.cfg.Hooks.JobPanicked(j.id, recovered)
		}
	})
	cancel()
	if err != nil {
		execSpan.SetAttr(obs.String("error_class", simerr.Class(err)))
	} else {
		execSpan.SetAttr(obs.String("stop", st.StopReason))
	}
	execSpan.End()

	// Resolve the WAL entry before finalizing, so the append lands inside
	// the job's trace: done and failed retire the submission; truncated
	// keeps it pending so the next boot resumes it from its checkpoint
	// instead of dropping the committed prefix.
	if m.cfg.Journal != nil {
		op := OpDone
		switch {
		case err != nil:
			op = OpFailed
		case st.Truncated:
			op = OpTruncated
		}
		js := j.tr.Start("journal.append", j.rootSpan, obs.String("op", string(op)))
		if jerr := m.cfg.Journal.Append(op, j.kind, j.key, nil); jerr != nil {
			m.log.WarnContext(ctx, "journal append failed; durability degraded",
				"op", string(op), "err", jerr)
		}
		js.End()
	}
	j.rootSpan.End()

	m.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errClass = simerr.Class(err)
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.result = body
		stCopy := st
		j.status = &stCopy
		// Cache only complete (or converged) results: a Truncated partial
		// is the one non-deterministic outcome and must never be replayed
		// to a future identical request.
		if m.cfg.Cache != nil && !st.Truncated {
			m.cfg.Cache.Put(j.key, string(j.kind), body)
		}
	}
	if j.tr != nil {
		// Snapshot the finished trace before done closes: anyone observing
		// a terminal state can fetch the trace without racing finalization.
		snap := j.tr.Snapshot()
		j.trace = &snap
	}
	if j.quotaCounted {
		if m.tenants[j.tenant]--; m.tenants[j.tenant] <= 0 {
			delete(m.tenants, j.tenant)
		}
	}
	if j.cancelFn != nil {
		j.cancelFn() // release the per-job context subtree
	}
	delete(m.inflight, j.key)
	m.publishStateLocked(j)
	m.closeEventsLocked(j)
	close(j.done)
	snapState, errClass, status := j.state, j.errClass, j.status
	dur := j.finished.Sub(j.started)
	m.mu.Unlock()

	if err != nil {
		m.log.WarnContext(ctx, "job failed",
			"kind", string(j.kind), "class", errClass, "err", err, "dur", dur)
	} else {
		m.log.InfoContext(ctx, "job finished",
			"kind", string(j.kind), "stop", st.StopReason, "dur", dur)
	}
	if m.cfg.Hooks.JobFinished != nil {
		m.cfg.Hooks.JobFinished(j.id, j.kind, snapState, errClass, status, dur)
	}
}

// runSafely invokes the runner with a panic backstop: an escaped panic
// becomes a typed failed job, never a dead worker. onPanic observes the
// recovered value before RecoverInto flattens it into a typed error (defers
// run LIFO, so the observer sees the panic first and re-raises it).
func runSafely(run Runner, ctx context.Context, progress func(int, int), onPanic func(any)) (body []byte, st simrun.Status, err error) {
	defer simerr.RecoverInto(&err, simerr.ErrInvalidConfig)
	defer func() {
		if r := recover(); r != nil {
			if onPanic != nil {
				onPanic(r)
			}
			panic(r)
		}
	}()
	return run(ctx, progress)
}

// Cancel cancels the job's context and cascades to descendants: a child is
// cancelled only when every parent attached to it is itself in the
// cancelled set and no parentless submission coalesced onto it — shared
// children of an unaffected sweep keep running. Queued victims still
// execute (immediately observing their dead context) and finalize as
// Truncated partials — the uniform cancellation path. Cancelling a
// finished job is a harmless no-op; unknown IDs return false.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	root, ok := m.byID[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	canceled := map[string]bool{root.id: true}
	victims := []*job{root}
	// Fixpoint over the child graph: a pass may unlock children whose last
	// live parent was cancelled in the previous pass (diamond linkages).
	for changed := true; changed; {
		changed = false
		for _, v := range victims {
			for _, cid := range v.children {
				c, ok := m.byID[cid]
				if !ok || canceled[cid] || c.externalRef {
					continue
				}
				all := true
				for _, pid := range c.parents {
					if !canceled[pid] {
						all = false
						break
					}
				}
				if all {
					canceled[cid] = true
					victims = append(victims, c)
					changed = true
				}
			}
		}
	}
	fns := make([]context.CancelFunc, 0, len(victims))
	for _, v := range victims {
		if v.cancelFn != nil {
			fns = append(fns, v.cancelFn)
		}
	}
	m.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
	return true
}

// Get returns a snapshot of the job by ID.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return Snapshot{}, false
	}
	return m.snapshotLocked(j), true
}

// Filter selects jobs for List; zero-valued fields match everything.
type Filter struct {
	Kind   Kind
	State  State
	Tenant string
	Parent string
}

// List returns snapshots of the retained jobs matching f, newest first, at
// most limit (limit <= 0 returns every match). Results are capped to the
// record window (Config.MaxRecords); evicted history is gone.
func (m *Manager) List(f Filter, limit int) []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []Snapshot{}
	for i := len(m.order) - 1; i >= 0; i-- {
		j := m.order[i]
		if f.Kind != "" && j.kind != f.Kind {
			continue
		}
		if f.State != "" && j.state != f.State {
			continue
		}
		if f.Tenant != "" && j.tenant != f.Tenant {
			continue
		}
		if f.Parent != "" && j.parent != f.Parent {
			continue
		}
		out = append(out, m.snapshotLocked(j))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Trace returns the job's finished trace. The bool reports whether the job
// exists at all; the returned state disambiguates the empty trace: a job
// that is still queued/running has no trace YET (poll again), while a
// terminal job without one (served from cache, or tracing disabled) never
// will — Trace.Spans stays empty in both cases and the caller decides from
// the state. The qisimd trace endpoint maps this to 404/202/200.
func (m *Manager) Trace(id string) (obs.Trace, State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return obs.Trace{}, "", false
	}
	if j.trace == nil {
		return obs.Trace{}, j.state, true
	}
	return *j.trace, j.state, true
}

// Wait blocks until the job finalizes (or ctx fires) and returns its final
// snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (Snapshot, error) {
	m.mu.Lock()
	j, ok := m.byID[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("jobs: unknown job %q", id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Snapshot{}, simerr.Interruptedf("jobs: wait for %s: %v", id, ctx.Err())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked(j), nil
}

func (m *Manager) snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:        j.id,
		Kind:      j.kind,
		Key:       j.key,
		State:     j.state,
		Cached:    j.cached,
		Tenant:    j.tenant,
		Parent:    j.parent,
		CreatedAt: j.created,
		Progress: Progress{
			Completed: int(j.progressDone.Load()),
			Requested: int(j.progressTotal.Load()),
		},
		ErrorClass: j.errClass,
		Error:      j.errMsg,
	}
	if len(j.children) > 0 {
		cs := ChildStats{Total: len(j.children)}
		for _, cid := range j.children {
			c, ok := m.byID[cid]
			if !ok {
				cs.Done++ // evicted → was finished
				continue
			}
			switch c.state {
			case StateQueued:
				cs.Queued++
			case StateRunning:
				cs.Running++
			case StateFailed:
				cs.Failed++
			default:
				cs.Done++
			}
		}
		s.Children = &cs
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	if j.status != nil {
		st := *j.status
		s.Status = &st
		// Final status supersedes the live progress cells.
		s.Progress = Progress{Completed: st.Completed, Requested: st.Requested}
	}
	if j.state == StateDone {
		s.Result = json.RawMessage(j.result)
	}
	return s
}

// QueueDepth returns the queued-but-not-running backlog across all tenants.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued
}

// InFlight returns the number of queued-or-running jobs.
func (m *Manager) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inflight)
}

// TenantLoad returns the tenant's current in-flight top-level job count
// (only tracked when Config.TenantQuota > 0).
func (m *Manager) TenantLoad(tenant string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tenants[tenant]
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops the manager gracefully: new submissions are refused
// (ErrDraining), every in-flight job context is cancelled — the running
// simulations return through the existing partial-result path, flagged
// Truncated — and the call blocks until the pool (and any orchestrator
// goroutines) finish committing those partials (or ctx fires, returning
// ErrInterrupted). Idempotent.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	first := !m.draining
	m.draining = true
	m.mu.Unlock()
	if first {
		m.cancel() // in-flight jobs see cancellation → Truncated partials
		m.mu.Lock()
		m.cond.Broadcast() // wake idle workers so they can exit
		m.mu.Unlock()
	}
	finished := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return simerr.Interruptedf("jobs: drain timed out: %v", ctx.Err())
	}
}
