// Per-job event logs: every job keeps a bounded, sequence-numbered log of
// lifecycle transitions plus caller-published custom events (the DSE layer
// publishes partial Pareto frontiers here), and Subscribe attaches a live
// channel — the feed behind qisimd's GET /v1/jobs/{id}/events SSE endpoint.
//
// The log is sealed at finalization: the terminal state event is always the
// last entry, after which every subscriber channel closes. Subscribers that
// fall more than the channel buffer behind lose intermediate events (the
// send never blocks the manager), but the retained log plus the close are
// enough to reconstruct where the job ended up.
package jobs

import (
	"encoding/json"
	"fmt"
	"time"
)

// DefaultMaxEventsPerJob bounds a job's retained event log when
// Config.MaxEventsPerJob is unset.
const DefaultMaxEventsPerJob = 256

// EventState is the Type of the lifecycle events the manager itself
// publishes (queued, running, done, failed).
const EventState = "state"

// Event is one entry of a job's event log. Seq increases by one per event
// on the job, starting at 1, so stream consumers can detect gaps from a
// lagging subscription (or use it as an SSE last-event id).
type Event struct {
	Seq  int             `json:"seq"`
	Type string          `json:"type"`
	At   time.Time       `json:"at"`
	Data json.RawMessage `json:"data,omitempty"`
}

// StateEventData is the payload of EventState events.
type StateEventData struct {
	State      State  `json:"state"`
	ErrorClass string `json:"error_class,omitempty"`
}

// publishStateLocked records a lifecycle transition on the job's log.
func (m *Manager) publishStateLocked(j *job) {
	data, err := json.Marshal(StateEventData{State: j.state, ErrorClass: j.errClass})
	if err != nil {
		return // a struct of two strings cannot fail to marshal
	}
	m.publishLocked(j, EventState, data)
}

// publishLocked appends an event and fans it out to live subscribers
// without ever blocking: a subscriber whose buffer is full misses the
// event (it can detect the gap via Seq).
func (m *Manager) publishLocked(j *job, typ string, data json.RawMessage) {
	if j.eventsClosed {
		return
	}
	j.eventSeq++
	ev := Event{Seq: j.eventSeq, Type: typ, At: time.Now().UTC(), Data: data}
	j.events = append(j.events, ev)
	if over := len(j.events) - m.cfg.MaxEventsPerJob; over > 0 {
		j.events = append(j.events[:0], j.events[over:]...)
	}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// closeEventsLocked seals the log and closes every subscriber channel.
func (m *Manager) closeEventsLocked(j *job) {
	if j.eventsClosed {
		return
	}
	j.eventsClosed = true
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// Publish appends a custom event to the job's log and streams it to
// subscribers. Publishing to a finished job is a quiet no-op (the log is
// sealed by the terminal state event); unknown IDs error. data marshals to
// the event payload.
func (m *Manager) Publish(id, typ string, data any) error {
	raw, err := json.Marshal(data)
	if err != nil {
		return fmt.Errorf("jobs: publish %s on %s: %w", typ, id, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return fmt.Errorf("jobs: unknown job %q", id)
	}
	m.publishLocked(j, typ, raw)
	return nil
}

// Events returns a copy of the job's retained event log.
func (m *Manager) Events(id string) ([]Event, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.byID[id]
	if !ok {
		return nil, false
	}
	return append([]Event(nil), j.events...), true
}

// Subscribe returns the job's event log so far plus a live channel for
// everything after it. The channel closes when the job finalizes (for an
// already-finished job it is born closed, so a consumer's replay-then-
// stream loop needs no special case). cancel detaches the subscription;
// always call it.
func (m *Manager) Subscribe(id string) (past []Event, ch <-chan Event, cancel func(), ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, found := m.byID[id]
	if !found {
		return nil, nil, nil, false
	}
	past = append([]Event(nil), j.events...)
	if j.eventsClosed {
		closed := make(chan Event)
		close(closed)
		return past, closed, func() {}, true
	}
	c := make(chan Event, m.cfg.MaxEventsPerJob)
	if j.subs == nil {
		j.subs = map[int]chan Event{}
	}
	j.subSeq++
	token := j.subSeq
	j.subs[token] = c
	cancel = func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if j.eventsClosed {
			return // channel already closed at finalization
		}
		if _, live := j.subs[token]; live {
			delete(j.subs, token)
			close(c)
		}
	}
	return past, c, cancel, true
}

// Subscribers reports the job's live event-subscription count (0 for an
// unknown or finished job). Exists so tests — and operators via debug
// tooling — can prove that disconnected SSE consumers are reaped instead
// of leaking subscriptions until the job finalizes.
func (m *Manager) Subscribers(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, found := m.byID[id]
	if !found {
		return 0
	}
	return len(j.subs)
}
