// Tests for the DSE-era jobs generalisation: per-tenant fair scheduling,
// quotas, parent/child linkage with cascading cancellation, orchestrator
// goroutines, event logs and the List API.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"qisim/internal/obs"
	"qisim/internal/simrun"
)

// blockingRunner parks until its context dies, then returns a truncated
// partial — the uniform cancellation shape.
func blockingRunner() Runner {
	return func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		<-ctx.Done()
		return []byte(`{"partial":true}`),
			simrun.Status{Requested: 1, Truncated: true, StopReason: simrun.StopCanceled}, nil
	}
}

func doneStatus() simrun.Status {
	return simrun.Status{Requested: 1, Completed: 1, StopReason: simrun.StopCompleted}
}

// TestFairRoundRobinBetweenTenants: with one worker and a bulk backlog from
// tenant A, tenant B's single job must run second, not after A's whole
// queue — one job per tenant per ring pass.
func TestFairRoundRobinBetweenTenants(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 32})
	m.Start()
	defer drainManager(t, m)

	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	record := func(name string, block bool) Runner {
		return func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
			if block {
				<-gate
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return []byte(`{}`), doneStatus(), nil
		}
	}
	// The gate job occupies the single worker while the backlog builds.
	gateSnap, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, 100), nil, record("gate", true), SubmitOptions{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 5; i++ {
		s, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, int64(101+i)), nil, record("a", false), SubmitOptions{Tenant: "a"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, s.ID)
	}
	bSnap, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, 200), nil, record("b", false), SubmitOptions{Tenant: "b"})
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, bSnap.ID, gateSnap.ID)
	close(gate)
	for _, id := range ids {
		if _, err := m.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 7 {
		t.Fatalf("executed %d jobs, want 7 (%v)", len(order), order)
	}
	// order[0] is the gate; tenant b's job must be one of the next two
	// despite five queued tenant-a jobs ahead of it in submission order.
	if order[1] != "b" && order[2] != "b" {
		t.Errorf("tenant b starved: execution order %v", order)
	}
}

func TestTenantQuota(t *testing.T) {
	m := NewManager(Config{Workers: 2, QueueDepth: 32, TenantQuota: 2})
	m.Start()
	defer drainManager(t, m)

	s1, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, 1), nil, blockingRunner(), SubmitOptions{Tenant: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, 2), nil, blockingRunner(), SubmitOptions{Tenant: "x"}); err != nil {
		t.Fatal(err)
	}
	// Third top-level job for x: over quota.
	_, _, err = m.SubmitOpts(KindSurfaceMC, testKey(t, 3), nil, blockingRunner(), SubmitOptions{Tenant: "x"})
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third submission: err = %v, want ErrQuotaExceeded", err)
	}
	// Another tenant is unaffected.
	if _, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, 4), nil, blockingRunner(), SubmitOptions{Tenant: "y"}); err != nil {
		t.Fatalf("tenant y rejected: %v", err)
	}
	// Children are fan-out, not quota load.
	if _, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, 5), nil, blockingRunner(), SubmitOptions{Tenant: "x", Parent: s1.ID}); err != nil {
		t.Fatalf("child rejected by quota: %v", err)
	}
	if got := m.TenantLoad("x"); got != 2 {
		t.Errorf("tenant x load = %d, want 2", got)
	}
	// Releasing one slot re-opens the quota.
	m.Cancel(s1.ID)
	if _, err := m.Wait(context.Background(), s1.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, 6), nil, blockingRunner(), SubmitOptions{Tenant: "x"}); err != nil {
		t.Fatalf("post-release submission rejected: %v", err)
	}
}

// TestOrchestratorParentDoesNotDeadlockPool: with a single pool worker, a
// parent that submits a child and blocks on it must still complete — the
// orchestrator runs off-pool.
func TestOrchestratorParentDoesNotDeadlockPool(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 8})
	m.Start()
	defer drainManager(t, m)

	parent := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		id := obs.JobID(ctx)
		child, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, 11), nil,
			func(context.Context, func(int, int)) ([]byte, simrun.Status, error) {
				return []byte(`{"v":1}`), doneStatus(), nil
			}, SubmitOptions{Parent: id})
		if err != nil {
			return nil, simrun.Status{}, err
		}
		cs, err := m.Wait(ctx, child.ID)
		if err != nil {
			return nil, simrun.Status{}, err
		}
		return cs.Result, doneStatus(), nil
	}
	snap, _, err := m.SubmitOpts(KindDSESweep, testKey(t, 10), nil, parent, SubmitOptions{Orchestrator: true})
	if err != nil {
		t.Fatal(err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := m.Wait(waitCtx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || string(final.Result) != `{"v":1}` {
		t.Fatalf("parent final %+v", final)
	}
	if final.Children == nil || final.Children.Total != 1 || final.Children.Done != 1 {
		t.Fatalf("child aggregate %+v", final.Children)
	}
}

// TestCancelParentCascadesToChildren: cancelling the parent cancels its
// blocked children, which finalize as truncated partials.
func TestCancelParentCascadesToChildren(t *testing.T) {
	m := NewManager(Config{Workers: 4, QueueDepth: 8})
	m.Start()
	defer drainManager(t, m)

	childIDs := make(chan string, 2)
	parent := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		id := obs.JobID(ctx)
		for i := int64(0); i < 2; i++ {
			c, _, err := m.SubmitOpts(KindDSEPoint, testKey(t, 21+i), nil, blockingRunner(), SubmitOptions{Parent: id})
			if err != nil {
				return nil, simrun.Status{}, err
			}
			childIDs <- c.ID
		}
		<-ctx.Done()
		return []byte(`{"partial":true}`), simrun.Status{Requested: 2, Truncated: true, StopReason: simrun.StopCanceled}, nil
	}
	snap, _, err := m.SubmitOpts(KindDSESweep, testKey(t, 20), nil, parent, SubmitOptions{Orchestrator: true})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := <-childIDs, <-childIDs
	if !m.Cancel(snap.ID) {
		t.Fatal("Cancel returned false for a live parent")
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range []string{snap.ID, c1, c2} {
		final, err := m.Wait(waitCtx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone || final.Status == nil || !final.Status.Truncated {
			t.Errorf("job %s: state %s status %+v, want truncated done", id, final.State, final.Status)
		}
	}
}

// TestCancelSparesSharedChild: a child coalesced under two parents survives
// the cancellation of one of them.
func TestCancelSparesSharedChild(t *testing.T) {
	m := NewManager(Config{Workers: 4, QueueDepth: 8})
	m.Start()
	defer drainManager(t, m)

	sharedKey := testKey(t, 31)
	childID := make(chan string, 2)
	release := make(chan struct{})
	mkParent := func() Runner {
		return func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
			id := obs.JobID(ctx)
			c, _, err := m.SubmitOpts(KindDSEPoint, sharedKey, nil,
				func(cctx context.Context, _ func(int, int)) ([]byte, simrun.Status, error) {
					select {
					case <-release:
						return []byte(`{"v":2}`), doneStatus(), nil
					case <-cctx.Done():
						return []byte(`{"partial":true}`), simrun.Status{Requested: 1, Truncated: true, StopReason: simrun.StopCanceled}, nil
					}
				}, SubmitOptions{Parent: id})
			if err != nil {
				return nil, simrun.Status{}, err
			}
			childID <- c.ID
			cs, err := m.Wait(ctx, c.ID)
			if err != nil {
				return []byte(`{"partial":true}`), simrun.Status{Requested: 1, Truncated: true, StopReason: simrun.StopCanceled}, nil
			}
			return cs.Result, doneStatus(), nil
		}
	}
	p1, _, err := m.SubmitOpts(KindDSESweep, testKey(t, 30), nil, mkParent(), SubmitOptions{Orchestrator: true})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := m.SubmitOpts(KindDSESweep, testKey(t, 32), nil, mkParent(), SubmitOptions{Orchestrator: true})
	if err != nil {
		t.Fatal(err)
	}
	id1, id2 := <-childID, <-childID
	if id1 != id2 {
		t.Fatalf("children did not coalesce: %s vs %s", id1, id2)
	}
	// Cancel parent 1: the shared child must keep running for parent 2.
	m.Cancel(p1.ID)
	waitCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := m.Wait(waitCtx, p1.ID); err != nil {
		t.Fatal(err)
	}
	if cs, ok := m.Get(id1); !ok || cs.State == StateDone || cs.State == StateFailed {
		// Child must still be in flight (blocked on release).
		if !ok {
			t.Fatal("shared child record vanished")
		}
	} else if cs.Status != nil && cs.Status.Truncated {
		t.Fatalf("shared child was cancelled with a live parent: %+v", cs)
	}
	close(release)
	final, err := m.Wait(waitCtx, p2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || string(final.Result) != `{"v":2}` {
		t.Fatalf("surviving parent final %+v", final)
	}
}

func TestCancelUnknownAndFinished(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	m.Start()
	defer drainManager(t, m)
	if m.Cancel("j-999999") {
		t.Error("Cancel(unknown) returned true")
	}
	snap, _, err := m.Submit(KindSurfaceMC, testKey(t, 40), nil,
		func(context.Context, func(int, int)) ([]byte, simrun.Status, error) {
			return []byte(`{}`), doneStatus(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}
	if !m.Cancel(snap.ID) {
		t.Error("Cancel(finished) returned false")
	}
	if final, _ := m.Get(snap.ID); final.State != StateDone || (final.Status != nil && final.Status.Truncated) {
		t.Errorf("cancelling a finished job mutated it: %+v", final)
	}
}

// TestEventLogAndSubscribe: state events land in order, Publish streams
// custom events live, and the channel closes at finalization.
func TestEventLogAndSubscribe(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 4})
	m.Start()
	defer drainManager(t, m)

	started := make(chan string, 1)
	release := make(chan struct{})
	snap, _, err := m.Submit(KindDSESweep, testKey(t, 50), nil,
		func(ctx context.Context, _ func(int, int)) ([]byte, simrun.Status, error) {
			started <- obs.JobID(ctx)
			<-release
			if err := m.Publish(obs.JobID(ctx), "frontier", map[string]int{"wave": 1}); err != nil {
				return nil, simrun.Status{}, err
			}
			return []byte(`{}`), doneStatus(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	past, ch, cancel, ok := m.Subscribe(snap.ID)
	if !ok {
		t.Fatal("Subscribe: job not found")
	}
	defer cancel()
	// Replay holds at least queued + running.
	if len(past) < 2 || past[0].Type != EventState || past[1].Type != EventState {
		t.Fatalf("replay = %+v", past)
	}
	close(release)
	var live []Event
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				goto closed
			}
			live = append(live, ev)
		case <-deadline:
			t.Fatal("subscription never closed")
		}
	}
closed:
	if len(live) != 2 {
		t.Fatalf("live events = %+v, want frontier + terminal state", live)
	}
	if live[0].Type != "frontier" {
		t.Errorf("first live event %+v, want frontier", live[0])
	}
	var sd StateEventData
	if err := json.Unmarshal(live[1].Data, &sd); err != nil || sd.State != StateDone {
		t.Errorf("terminal event %+v (%v)", live[1], err)
	}
	// Seq is contiguous from 1 across replay + live.
	all := append(past, live...)
	for i, ev := range all {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	// Subscribing after the end: full replay, born-closed channel.
	past2, ch2, cancel2, ok := m.Subscribe(snap.ID)
	if !ok {
		t.Fatal("late Subscribe failed")
	}
	defer cancel2()
	if len(past2) != len(all) {
		t.Errorf("late replay %d events, want %d", len(past2), len(all))
	}
	if _, open := <-ch2; open {
		t.Error("late subscription channel not born closed")
	}
	if evs, ok := m.Events(snap.ID); !ok || len(evs) != len(all) {
		t.Errorf("Events() = %d, want %d", len(evs), len(all))
	}
}

func TestListFilters(t *testing.T) {
	m := NewManager(Config{Workers: 2, QueueDepth: 16})
	m.Start()
	defer drainManager(t, m)

	quick := func(context.Context, func(int, int)) ([]byte, simrun.Status, error) {
		return []byte(`{}`), doneStatus(), nil
	}
	var last Snapshot
	for i := int64(0); i < 3; i++ {
		s, _, err := m.SubmitOpts(KindSurfaceMC, testKey(t, 60+i), nil, quick, SubmitOptions{Tenant: "t1"})
		if err != nil {
			t.Fatal(err)
		}
		last = s
		if _, err := m.Wait(context.Background(), s.ID); err != nil {
			t.Fatal(err)
		}
	}
	blocked, _, err := m.SubmitOpts(KindPauliMC, testKey(t, 70), nil, blockingRunner(), SubmitOptions{Tenant: "t2"})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.List(Filter{}, 0); len(got) != 4 {
		t.Errorf("unfiltered list = %d entries, want 4", len(got))
	}
	got := m.List(Filter{Kind: KindSurfaceMC}, 0)
	if len(got) != 3 {
		t.Errorf("kind filter = %d entries, want 3", len(got))
	}
	// Newest first.
	if len(got) > 0 && got[0].ID != last.ID {
		t.Errorf("list head %s, want newest %s", got[0].ID, last.ID)
	}
	if got := m.List(Filter{Tenant: "t2"}, 0); len(got) != 1 || got[0].ID != blocked.ID {
		t.Errorf("tenant filter = %+v", got)
	}
	if got := m.List(Filter{State: StateDone}, 2); len(got) != 2 {
		t.Errorf("limit 2 = %d entries", len(got))
	}
	m.Cancel(blocked.ID)
	if _, err := m.Wait(context.Background(), blocked.ID); err != nil {
		t.Fatal(err)
	}
}

// TestJournalRecordsTenantAndParent: the WAL round-trips the new fields so
// recovery can re-adopt sweep children.
func TestJournalRecordsTenantAndParent(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir + "/journal.wal")
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey(t, 80), testKey(t, 81)
	if err := j.AppendSubmit(KindDSESweep, k1, json.RawMessage(`{"g":1}`), "acme", ""); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit(KindDSEPoint, k2, nil, "acme", string(k1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil { // fields must survive a rewrite too
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournal(dir + "/journal.wal")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pend := j2.Pending()
	if len(pend) != 2 {
		t.Fatalf("pending = %d, want 2", len(pend))
	}
	if pend[0].Tenant != "acme" || pend[0].Parent != "" {
		t.Errorf("parent entry %+v", pend[0])
	}
	if pend[1].Tenant != "acme" || pend[1].Parent != string(k1) {
		t.Errorf("child entry %+v", pend[1])
	}
}
