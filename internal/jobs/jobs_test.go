package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qisim/internal/rescache"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

func testKey(t *testing.T, seed int64) rescache.Key {
	t.Helper()
	k, err := rescache.KeyFor("test.kind", map[string]any{"n": seed}, seed, 512)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// countingRunner returns a runner producing a deterministic body and
// recording how many times it executed.
func countingRunner(execs *atomic.Int64, body string) Runner {
	return func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		execs.Add(1)
		progress(10, 10)
		return []byte(body), simrun.Status{Requested: 10, Completed: 10, StopReason: simrun.StopCompleted}, nil
	}
}

// drainManager shuts m down and fails the test on a hung pool.
func drainManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitForGoroutines is the no-leak check (same contract as the
// internal/simrun helper): the goroutine count must return to the pre-run
// baseline within a grace period.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestSubmitRunsAndCaches: the basic lifecycle — queued, executed, done,
// result cached, and a resubmission served from the cache without a second
// execution.
func TestSubmitRunsAndCaches(t *testing.T) {
	cache := rescache.New(16)
	m := NewManager(Config{Workers: 2, QueueDepth: 8, Cache: cache})
	m.Start()
	defer drainManager(t, m)

	var execs atomic.Int64
	key := testKey(t, 1)
	snap, outcome, err := m.Submit(KindSurfaceMC, key, nil, countingRunner(&execs, `{"rate":0.5}`))
	if err != nil || outcome != OutcomeQueued {
		t.Fatalf("submit: %v, outcome %v", err, outcome)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || string(final.Result) != `{"rate":0.5}` {
		t.Fatalf("final snapshot %+v", final)
	}
	if final.Status == nil || final.Status.Completed != 10 {
		t.Fatalf("status not recorded: %+v", final.Status)
	}
	if final.Progress.Completed != 10 || final.Progress.Requested != 10 {
		t.Fatalf("progress %+v", final.Progress)
	}

	// Resubmit: cache hit, no second execution, byte-identical body.
	snap2, outcome2, err := m.Submit(KindSurfaceMC, key, nil, countingRunner(&execs, `{"rate":0.5}`))
	if err != nil || outcome2 != OutcomeCached {
		t.Fatalf("resubmit: %v, outcome %v", err, outcome2)
	}
	if !snap2.Cached || snap2.State != StateDone || string(snap2.Result) != `{"rate":0.5}` {
		t.Fatalf("cached snapshot %+v", snap2)
	}
	if snap2.ID == snap.ID {
		t.Fatal("cached submission reused the original job record")
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("runner executed %d times, want 1", got)
	}
}

// TestConcurrentDuplicatesCoalesce is the singleflight contract: N
// concurrent submissions of the same key produce exactly one computation,
// and every submitter lands on the same job ID.
func TestConcurrentDuplicatesCoalesce(t *testing.T) {
	m := NewManager(Config{Workers: 2, QueueDepth: 8, Cache: rescache.New(16)})
	m.Start()
	defer drainManager(t, m)

	var execs atomic.Int64
	release := make(chan struct{})
	slow := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		execs.Add(1)
		<-release
		return []byte(`{"v":1}`), simrun.Status{Requested: 1, Completed: 1, StopReason: simrun.StopCompleted}, nil
	}
	key := testKey(t, 2)
	first, outcome, err := m.Submit(KindPauliMC, key, nil, slow)
	if err != nil || outcome != OutcomeQueued {
		t.Fatalf("first submit: %v, %v", err, outcome)
	}

	const dupes = 16
	var wg sync.WaitGroup
	ids := make([]string, dupes)
	outcomes := make([]Outcome, dupes)
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, oc, err := m.Submit(KindPauliMC, key, nil, slow)
			if err != nil {
				t.Errorf("dup submit: %v", err)
				return
			}
			ids[i], outcomes[i] = snap.ID, oc
		}(i)
	}
	wg.Wait()
	close(release)
	for i := 0; i < dupes; i++ {
		if ids[i] != first.ID {
			t.Errorf("dup %d landed on job %s, want %s", i, ids[i], first.ID)
		}
		if outcomes[i] != OutcomeCoalesced {
			t.Errorf("dup %d outcome %v, want coalesced", i, outcomes[i])
		}
	}
	if _, err := m.Wait(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("coalesced submissions ran %d computations, want 1", got)
	}
}

// TestQueueFull: the bounded queue refuses overload with ErrQueueFull and
// rolls the job record back.
func TestQueueFull(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	m.Start()
	defer drainManager(t, m)

	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return []byte(`{}`), simrun.Status{StopReason: simrun.StopCompleted}, nil
	}
	// First occupies the worker, second the queue slot; distinct keys so
	// nothing coalesces.
	if _, _, err := m.Submit(KindReadoutMC, testKey(t, 10), nil, block); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick up the first job so the queue slot
	// frees deterministically enough for the depth-1 fill below.
	deadline := time.Now().Add(time.Second)
	for m.QueueDepth() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, _, err := m.Submit(KindReadoutMC, testKey(t, 11), nil, block); err != nil {
		t.Fatal(err)
	}
	_, _, err := m.Submit(KindReadoutMC, testKey(t, 12), nil, block)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overload error = %v, want ErrQueueFull", err)
	}
	// The rolled-back record must not be retrievable or in flight.
	if m.InFlight() != 2 {
		t.Fatalf("inflight = %d after refused submit, want 2", m.InFlight())
	}
}

// TestDrainTruncatesInFlight: draining cancels the in-flight job, which
// lands done with a Truncated partial (via the simrun contract) and is NOT
// cached; post-drain submissions are refused; the pool leaks no goroutines.
func TestDrainTruncatesInFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cache := rescache.New(16)
	m := NewManager(Config{Workers: 1, QueueDepth: 4, Cache: cache})
	m.Start()

	started := make(chan struct{})
	key := testKey(t, 20)
	runner := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		close(started)
		<-ctx.Done() // simulate the engine observing cancellation
		st := simrun.Status{Requested: 100, Completed: 40, Truncated: true, StopReason: simrun.StopCanceled}
		body, _ := json.Marshal(map[string]any{"status": st})
		return body, st, nil
	}
	snap, _, err := m.Submit(KindSurfaceMC, key, nil, runner)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	final, ok := m.Get(snap.ID)
	if !ok {
		t.Fatal("job record lost after drain")
	}
	if final.State != StateDone || final.Status == nil || !final.Status.Truncated {
		t.Fatalf("drained job not a flagged partial: %+v", final)
	}
	var parsed struct {
		Status simrun.Status `json:"status"`
	}
	if err := json.Unmarshal(final.Result, &parsed); err != nil || !parsed.Status.Truncated {
		t.Fatalf("partial body not flagged truncated: %s (%v)", final.Result, err)
	}
	if cache.Contains(key) {
		t.Fatal("truncated partial leaked into the cache")
	}
	if _, _, err := m.Submit(KindSurfaceMC, testKey(t, 21), nil, runner); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}
	waitForGoroutines(t, baseline)
}

// TestFailedJobCarriesClass: a runner failure lands the job in failed state
// with its simerr class, and nothing reaches the cache.
func TestFailedJobCarriesClass(t *testing.T) {
	cache := rescache.New(16)
	m := NewManager(Config{Workers: 1, Cache: cache})
	m.Start()
	defer drainManager(t, m)

	key := testKey(t, 30)
	fail := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		return nil, simrun.Status{}, fmt.Errorf("bad distance: %w", simerr.ErrInvalidConfig)
	}
	snap, _, err := m.Submit(KindSurfaceMC, key, nil, fail)
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.ErrorClass != "invalid-config" || final.Error == "" {
		t.Fatalf("failed snapshot %+v", final)
	}
	if cache.Len() != 0 {
		t.Fatal("failed job reached the cache")
	}
	// The key is free again: a corrected resubmission enqueues fresh.
	if _, outcome, err := m.Submit(KindSurfaceMC, key, nil, fail); err != nil || outcome != OutcomeQueued {
		t.Fatalf("resubmit after failure: %v, %v", err, outcome)
	}
}

// TestPanickingRunnerBecomesTypedFailure: a panic inside a runner must not
// kill the worker — it surfaces as a failed job with a typed class.
func TestPanickingRunnerBecomesTypedFailure(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	m.Start()
	defer drainManager(t, m)

	snap, _, err := m.Submit(KindReadoutMC, testKey(t, 40), nil,
		func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
			panic("boom")
		})
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.ErrorClass != "invalid-config" {
		t.Fatalf("panicked job snapshot %+v", final)
	}
	// The worker survived: another job still executes.
	var execs atomic.Int64
	snap2, _, err := m.Submit(KindReadoutMC, testKey(t, 41), nil, countingRunner(&execs, `{}`))
	if err != nil {
		t.Fatal(err)
	}
	if final2, err := m.Wait(context.Background(), snap2.ID); err != nil || final2.State != StateDone {
		t.Fatalf("worker dead after panic: %+v, %v", final2, err)
	}
}

// TestRecordEviction: finished records above MaxRecords are evicted oldest
// first; in-flight records survive.
func TestRecordEviction(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 16, MaxRecords: 3})
	m.Start()
	defer drainManager(t, m)

	var execs atomic.Int64
	var first Snapshot
	for i := 0; i < 6; i++ {
		snap, _, err := m.Submit(KindSurfaceMC, testKey(t, 100+int64(i)), nil, countingRunner(&execs, `{}`))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = snap
		}
		if _, err := m.Wait(context.Background(), snap.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := m.Get(first.ID); ok {
		t.Fatal("oldest finished record survived past MaxRecords")
	}
}
