package jobs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qisim/internal/rescache"
	"qisim/internal/simrun"
)

func journalPath(t *testing.T) string {
	return filepath.Join(t.TempDir(), "journal.wal")
}

func key64(c byte) rescache.Key {
	return rescache.Key(strings.Repeat(string(c), 64))
}

// TestJournalReplayFoldsOps drives the full op grammar through a close/
// reopen cycle: done and failed resolve, truncated stays pending with the
// marker set, params survive byte-exactly.
func TestJournalReplayFoldsOps(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	params := json.RawMessage(`{"distance":7,"shots":1000}`)
	mustAppend := func(op string, k rescache.Key, p json.RawMessage) {
		t.Helper()
		if err := j.Append(op, KindSurfaceMC, k, p); err != nil {
			t.Fatalf("append %s: %v", op, err)
		}
	}
	mustAppend(OpSubmit, key64('a'), params)
	mustAppend(OpSubmit, key64('b'), nil)
	mustAppend(OpSubmit, key64('c'), nil)
	mustAppend(OpSubmit, key64('d'), nil)
	mustAppend(OpDone, key64('b'), nil)
	mustAppend(OpFailed, key64('c'), nil)
	mustAppend(OpTruncated, key64('d'), nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.Stats(); st.Replayed != 7 || st.Torn != 0 {
		t.Fatalf("replay stats: %+v", st)
	}
	pend := j2.Pending()
	if len(pend) != 2 {
		t.Fatalf("pending = %d entries (%+v), want 2", len(pend), pend)
	}
	if pend[0].Key != key64('a') || string(pend[0].Params) != string(params) || pend[0].Truncated {
		t.Fatalf("pending[0] wrong: %+v", pend[0])
	}
	if pend[1].Key != key64('d') || !pend[1].Truncated {
		t.Fatalf("pending[1] wrong: %+v", pend[1])
	}
}

// TestJournalTornTail truncates the file at every byte boundary inside the
// last record: replay must keep every intact earlier record, discard the
// torn tail, and count it — never error, never resurrect garbage.
func TestJournalTornTail(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(OpSubmit, KindPauliMC, key64('a'), nil)
	j.Append(OpSubmit, KindPauliMC, key64('b'), nil)
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := strings.IndexByte(string(full), '\n') + 1

	// Cut everywhere inside the second record. (Cutting only the trailing
	// newline leaves a complete record, which replay rightly accepts.)
	for cut := firstLen + 1; cut < len(full)-1; cut++ {
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		pend := jt.Pending()
		st := jt.Stats()
		jt.Close()
		if len(pend) != 1 || pend[0].Key != key64('a') {
			t.Fatalf("cut %d: pending %+v, want only the first record", cut, pend)
		}
		if st.Replayed != 1 || st.Torn != 1 {
			t.Fatalf("cut %d: stats %+v", cut, st)
		}
	}
}

// TestJournalCorruptMiddleStopsReplay flips a byte mid-file: everything
// from the corrupted record on is untrusted and discarded.
func TestJournalCorruptMiddleStopsReplay(t *testing.T) {
	path := journalPath(t)
	j, _ := OpenJournal(path)
	j.Append(OpSubmit, KindReadoutMC, key64('a'), nil)
	j.Append(OpSubmit, KindReadoutMC, key64('b'), nil)
	j.Append(OpDone, KindReadoutMC, key64('a'), nil)
	j.Close()
	body, _ := os.ReadFile(path)
	firstLen := strings.IndexByte(string(body), '\n') + 1
	body[firstLen+12] ^= 0x20 // corrupt the second record's payload
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.Replayed != 1 || st.Torn != 1 {
		t.Fatalf("stats %+v, want 1 replayed + 1 torn", st)
	}
	// Record 3 (done a) was discarded with the corruption, so 'a' is pending
	// again — conservative: re-running a deterministic job is safe, losing
	// one is not.
	pend := j2.Pending()
	if len(pend) != 1 || pend[0].Key != key64('a') {
		t.Fatalf("pending %+v", pend)
	}
}

// TestJournalCompact bounds growth: after compaction only pending records
// remain, truncated markers survive, and the journal stays appendable.
func TestJournalCompact(t *testing.T) {
	path := journalPath(t)
	j, _ := OpenJournal(path)
	for i := 0; i < 20; i++ {
		k := rescache.Key(strings.Repeat(string(rune('a'+i%16)), 64))
		j.Append(OpSubmit, KindSurfaceMC, k, nil)
		j.Append(OpDone, KindSurfaceMC, k, nil)
	}
	j.Append(OpSubmit, KindSurfaceMC, key64('z'), json.RawMessage(`{"shots":5}`))
	j.Append(OpTruncated, KindSurfaceMC, key64('z'), nil)
	before, _ := os.Stat(path)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}
	// Still appendable on the new inode.
	if err := j.Append(OpSubmit, KindSurfaceMC, key64('y'), nil); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pend := j2.Pending()
	if len(pend) != 2 || pend[0].Key != key64('z') || !pend[0].Truncated || pend[1].Key != key64('y') {
		t.Fatalf("pending after compact+reopen: %+v", pend)
	}
	if string(pend[0].Params) != `{"shots":5}` {
		t.Fatalf("params lost in compaction: %q", pend[0].Params)
	}
	// No stray temp files.
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stray compact temp file: %s", e.Name())
		}
	}
}

// TestManagerJournalsLifecycle checks the manager writes submit+done for a
// completed job, submit+truncated for a drained one, and submit+failed for
// a failure — and that cached/coalesced submissions stay out of the WAL.
func TestManagerJournalsLifecycle(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cache := rescache.New(8)
	m := NewManager(Config{Workers: 1, Cache: cache, Journal: j})
	m.Start()

	ok := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		return []byte(`{}`), simrun.Status{Completed: 1, Requested: 1, StopReason: simrun.StopCompleted}, nil
	}
	fail := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		return nil, simrun.Status{}, context.DeadlineExceeded
	}
	trunc := func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
		return []byte(`{}`), simrun.Status{Completed: 1, Requested: 2, Truncated: true, StopReason: simrun.StopCanceled}, nil
	}

	wait := func(k rescache.Key, run Runner, params json.RawMessage) {
		t.Helper()
		snap, _, err := m.Submit(KindSurfaceMC, k, params, run)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), snap.ID); err != nil {
			t.Fatal(err)
		}
	}
	wait(key64('a'), ok, json.RawMessage(`{"p":1}`))
	wait(key64('b'), fail, nil)
	wait(key64('c'), trunc, nil)
	// Cached replay of 'a': born done, nothing executed, nothing journaled.
	if _, outcome, err := m.Submit(KindSurfaceMC, key64('a'), nil, ok); err != nil || outcome != OutcomeCached {
		t.Fatalf("cached resubmit: outcome %v err %v", outcome, err)
	}
	drainManager(t, m)

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.Stats(); st.Replayed != 6 {
		t.Fatalf("replayed %d records, want 6 (3 submits + done + failed + truncated)", st.Replayed)
	}
	pend := j2.Pending()
	if len(pend) != 1 || pend[0].Key != key64('c') || !pend[0].Truncated {
		t.Fatalf("pending after lifecycle: %+v", pend)
	}
}

// TestJournalAppendErrorDegrades closes the underlying file handle early:
// appends fail and are counted, but the in-memory pending set stays
// coherent and submissions keep working.
func TestJournalAppendErrorDegrades(t *testing.T) {
	j, err := OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(OpSubmit, KindSurfaceMC, key64('a'), nil); err == nil {
		t.Fatal("append after close succeeded")
	}
	if st := j.Stats(); st.AppendErrors != 1 {
		t.Fatalf("append errors = %d, want 1", st.AppendErrors)
	}
	if pend := j.Pending(); len(pend) != 1 {
		t.Fatalf("in-memory pending lost on failed append: %+v", pend)
	}

	m := NewManager(Config{Workers: 1, Journal: j})
	m.Start()
	snap, _, err := m.Submit(KindSurfaceMC, key64('b'), nil,
		func(ctx context.Context, progress func(int, int)) ([]byte, simrun.Status, error) {
			return []byte(`{}`), simrun.Status{StopReason: simrun.StopCompleted}, nil
		})
	if err != nil {
		t.Fatalf("submission must survive a dead journal: %v", err)
	}
	if _, err := m.Wait(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}
	drainManager(t, m)
}

// TestJournalLeaseLifecycle drives lease grants, hedged duplicates,
// range resolution, and job resolution through a close/reopen cycle:
// outstanding leases for still-pending jobs survive the crash, resolved
// ranges and resolved jobs shed theirs.
func TestJournalLeaseLifecycle(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	mustLease := func(op string, k rescache.Key, start, end int, worker string) {
		t.Helper()
		if err := j.AppendLease(op, KindSurfaceMC, k, start, end, worker, 12345); err != nil {
			t.Fatalf("lease %s: %v", op, err)
		}
	}
	if err := j.Append(OpSubmit, KindSurfaceMC, key64('a'), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(OpSubmit, KindSurfaceMC, key64('b'), nil); err != nil {
		t.Fatal(err)
	}
	mustLease(OpLease, key64('a'), 0, 4, "w1")
	mustLease(OpLease, key64('a'), 4, 8, "w2")
	mustLease(OpLease, key64('a'), 4, 8, "w3") // hedged duplicate on [4,8)
	mustLease(OpLease, key64('b'), 0, 2, "w1")
	mustLease(OpLeaseDone, key64('a'), 4, 8, "") // resolves BOTH w2 and w3
	if err := j.Append(OpDone, KindSurfaceMC, key64('b'), nil); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	leases := j2.PendingLeases()
	if len(leases) != 1 {
		t.Fatalf("pending leases = %+v, want exactly [a 0-4 w1]", leases)
	}
	l := leases[0]
	if l.Key != key64('a') || l.Start != 0 || l.End != 4 || l.Worker != "w1" || l.ExpiresMS != 12345 {
		t.Fatalf("recovered lease wrong: %+v", l)
	}

	// Compact keeps the outstanding lease and prunes resolved ones.
	if err := j2.Compact(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := j3.PendingLeases(); len(got) != 1 || got[0].Worker != "w1" {
		t.Fatalf("post-compact leases = %+v", got)
	}
}
