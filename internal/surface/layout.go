// Package surface implements QIsim's fault-tolerance substrate: the rotated
// surface-code patch (Fig. 1 of the paper), ESM circuit generation (the
// peak-power workload of the scalability analysis), a phenomenological
// Monte-Carlo decoder used to validate the logical-error projection, and the
// calibrated projection + Jellium target model that converts physical error
// rates into maximum supportable qubit counts.
package surface

import (
	"fmt"

	"qisim/internal/simerr"
)

// AncillaType distinguishes the two stabilizer families.
type AncillaType int

const (
	// ZAncilla detects X errors on its adjacent data qubits.
	ZAncilla AncillaType = iota
	// XAncilla detects Z errors.
	XAncilla
)

func (t AncillaType) String() string {
	if t == ZAncilla {
		return "Z"
	}
	return "X"
}

// Ancilla is one stabilizer qubit of the patch.
type Ancilla struct {
	Type AncillaType
	// R2, C2 are doubled coordinates (data qubit (r,c) sits at (2r, 2c);
	// ancillas sit at odd-odd positions).
	R2, C2 int
	// Data lists the adjacent data-qubit indices (2 on boundaries, 4 bulk).
	Data []int
}

// Patch is a rotated surface-code patch of odd distance d: d² data qubits
// and d²-1 ancillas.
type Patch struct {
	D        int
	Ancillas []Ancilla
}

// NewPatchChecked is the erroring boundary for NewPatch: an invalid
// distance returns a typed ErrInvalidConfig instead of panicking. Use it
// wherever the distance derives from user input.
func NewPatchChecked(d int) (*Patch, error) {
	if d < 3 || d%2 == 0 {
		return nil, simerr.Invalidf("surface: distance must be odd and >= 3, got %d", d)
	}
	return NewPatch(d), nil
}

// NewPatch builds the distance-d rotated patch. Z-type boundary ancillas sit
// on the left/right edges, X-type on top/bottom (so X-error chains terminate
// top/bottom and the Z-logical runs along row 0). It panics on an invalid
// distance (programmer error); see NewPatchChecked for the erroring
// boundary.
func NewPatch(d int) *Patch {
	if d < 3 || d%2 == 0 {
		panic(fmt.Sprintf("surface: distance must be odd and >= 3, got %d", d))
	}
	p := &Patch{D: d}
	dq := func(r, c int) int { return r*d + c }

	// Bulk ancillas at (r+0.5, c+0.5): Z when (r+c) even.
	for r := 0; r < d-1; r++ {
		for c := 0; c < d-1; c++ {
			t := XAncilla
			if (r+c)%2 == 0 {
				t = ZAncilla
			}
			p.Ancillas = append(p.Ancillas, Ancilla{
				Type: t, R2: 2*r + 1, C2: 2*c + 1,
				Data: []int{dq(r, c), dq(r, c+1), dq(r+1, c), dq(r+1, c+1)},
			})
		}
	}
	// Left boundary (c = -0.5): continue the checkerboard → Z at odd r.
	for r := 1; r < d-1; r += 2 {
		p.Ancillas = append(p.Ancillas, Ancilla{
			Type: ZAncilla, R2: 2*r + 1, C2: -1,
			Data: []int{dq(r, 0), dq(r+1, 0)},
		})
	}
	// Right boundary (c = d-0.5): Z at even r.
	for r := 0; r < d-1; r += 2 {
		p.Ancillas = append(p.Ancillas, Ancilla{
			Type: ZAncilla, R2: 2*r + 1, C2: 2*d - 1,
			Data: []int{dq(r, d-1), dq(r+1, d-1)},
		})
	}
	// Top boundary (r = -0.5): X at odd c.
	for c := 1; c < d-1; c += 2 {
		p.Ancillas = append(p.Ancillas, Ancilla{
			Type: XAncilla, R2: -1, C2: 2*c + 1,
			Data: []int{dq(0, c), dq(0, c+1)},
		})
	}
	// Bottom boundary (r = d-0.5): X at even c.
	for c := 0; c < d-1; c += 2 {
		p.Ancillas = append(p.Ancillas, Ancilla{
			Type: XAncilla, R2: 2*d - 1, C2: 2*c + 1,
			Data: []int{dq(d-1, c), dq(d-1, c+1)},
		})
	}
	return p
}

// DataQubits returns the number of data qubits (d²).
func (p *Patch) DataQubits() int { return p.D * p.D }

// TotalQubits returns data + ancilla qubits: 2(d²)-1... the paper counts the
// full patch as 2(d+1)² including routing overheads; PhysicalQubitsPerPatch
// reports that planning number.
func (p *Patch) TotalQubits() int { return p.DataQubits() + len(p.Ancillas) }

// PhysicalQubitsPerPatch is the paper's per-logical-qubit budget 2(d+1)²
// (Section 2.1.3) — 1,152 qubits at d = 23.
func PhysicalQubitsPerPatch(d int) int { return 2 * (d + 1) * (d + 1) }

// AncillasOfType returns the indices of ancillas with the given type.
func (p *Patch) AncillasOfType(t AncillaType) []int {
	var out []int
	for i, a := range p.Ancillas {
		if a.Type == t {
			out = append(out, i)
		}
	}
	return out
}

// Op is one scheduled operation of the ESM circuit.
type Op struct {
	// Kind is "h", "cz" or "measure".
	Kind string
	// Q is the target qubit id; Q2 the CZ counterpart (-1 otherwise).
	Q, Q2 int
	// Layer is the time layer within the round (0-based).
	Layer int
}

// ESMCircuit generates one error-syndrome-measurement round as a layered
// operation list over the patch's qubit numbering: data qubits are
// 0..d²-1 and ancilla i is d²+i. Layers: H on ancillas; four CZ layers in
// the standard NW/NE/SW/SE order; H; measure — the workload the paper runs
// for the scalability analysis because it is the peak-power pattern.
func (p *Patch) ESMCircuit() []Op {
	d := p.D
	aid := func(i int) int { return d*d + i }
	var ops []Op
	for i := range p.Ancillas {
		ops = append(ops, Op{Kind: "h", Q: aid(i), Q2: -1, Layer: 0})
	}
	// CZ layers: order neighbours by (row, col) offset — NW, NE, SW, SE.
	for layer := 0; layer < 4; layer++ {
		for i, a := range p.Ancillas {
			for _, q := range a.Data {
				r, c := q/d, q%d
				dr, dc := 2*r-a.R2, 2*c-a.C2 // ±1 each
				idx := 0
				if dr > 0 {
					idx += 2
				}
				if dc > 0 {
					idx++
				}
				if idx == layer {
					ops = append(ops, Op{Kind: "cz", Q: aid(i), Q2: q, Layer: 1 + layer})
				}
			}
		}
	}
	for i := range p.Ancillas {
		ops = append(ops, Op{Kind: "h", Q: aid(i), Q2: -1, Layer: 5})
	}
	for i := range p.Ancillas {
		ops = append(ops, Op{Kind: "measure", Q: aid(i), Q2: -1, Layer: 6})
	}
	return ops
}
