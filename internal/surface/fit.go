package surface

import "math"

// FitResult is a projection-model fit from Monte-Carlo decoder data.
type FitResult struct {
	A   float64
	PTh float64
	// Points carries the (d, p, pL) samples the fit used.
	Points []FitPoint
}

// FitPoint is one MC sample.
type FitPoint struct {
	D  int
	P  float64
	PL float64
}

// FitProjection estimates the projection constants A and p_th of
// p_L = A·(p/p_th)^((d+1)/2) from code-capacity Monte-Carlo data at small
// distances — the self-consistency link between this repo's decoder and the
// calibrated analytic projection the scalability analysis uses.
//
// Method: for each (d, p) sample, ln p_L = ln A + ((d+1)/2)·(ln p − ln p_th)
// is linear in the two unknowns (ln A, ln p_th); solve by least squares.
func FitProjection(ds []int, ps []float64, shots int, seed int64) FitResult {
	var pts []FitPoint
	for _, d := range ds {
		for _, p := range ps {
			r := MonteCarloLogicalError(d, p, shots, seed)
			seed++
			if r.Failures < 5 {
				continue // too noisy to use
			}
			pts = append(pts, FitPoint{D: d, P: p, PL: r.Rate()})
		}
	}
	// Least squares over x = (lnA, ln p_th):
	// ln pL_i = lnA + k_i·ln p_i − k_i·ln p_th, k_i = (d_i+1)/2.
	// Normal equations for [1, −k_i] basis.
	var s11, s12, s22, b1, b2 float64
	for _, pt := range pts {
		k := float64(pt.D+1) / 2
		y := math.Log(pt.PL) - k*math.Log(pt.P)
		// y = lnA − k·ln p_th
		s11++
		s12 += -k
		s22 += k * k
		b1 += y
		b2 += -k * y
	}
	det := s11*s22 - s12*s12
	res := FitResult{Points: pts}
	if det == 0 || len(pts) < 3 {
		return res
	}
	lnA := (b1*s22 - b2*s12) / det
	lnPth := (s11*b2 - s12*b1) / det
	res.A = math.Exp(lnA)
	res.PTh = math.Exp(lnPth)
	return res
}

// PredictsWithin reports whether the fit reproduces its own MC points within
// the given log-space factor — the quality gate of the fit.
func (f FitResult) PredictsWithin(factor float64) bool {
	if f.A == 0 || f.PTh == 0 {
		return false
	}
	pr := Projection{A: f.A, PTh: f.PTh}
	for _, pt := range f.Points {
		pr.D = pt.D
		pred := pr.Logical(pt.P)
		r := pred / pt.PL
		if r < 1 {
			r = 1 / r
		}
		if r > factor {
			return false
		}
	}
	return true
}
