package surface

import (
	"context"

	"qisim/internal/simrun"
)

// unionFind is a plain disjoint-set forest.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// decodeUnionFind is the cluster-growth decoder (a simplified
// Delfosse–Nickerson union-find): defects grow balls of increasing radius;
// overlapping balls merge into clusters; a cluster is neutral once it holds
// an even number of defects or touches the lattice boundary. Neutral
// clusters are then peeled: defects pair up inside the cluster, with one
// defect routed to the boundary in odd boundary-touching clusters.
func (m *matcher) decodeUnionFind(err []bool, syndrome []bool) {
	m.decodeUnionFindWith(m.newScratch(), err, syndrome)
}

func (m *matcher) decodeUnionFindWith(sc *decodeScratch, err []bool, syndrome []bool) {
	var defects []int
	for z, s := range syndrome {
		if s {
			defects = append(defects, z)
		}
	}
	if len(defects) == 0 {
		return
	}
	uf := newUnionFind(len(m.zAncillas))
	touchesBoundary := make([]bool, len(m.zAncillas))

	neutral := func() bool {
		count := map[int]int{}
		bnd := map[int]bool{}
		for _, d := range defects {
			r := uf.find(d)
			count[r]++
			if touchesBoundary[r] {
				bnd[r] = true
			}
		}
		for r, c := range count {
			if c%2 == 1 && !bnd[r] {
				return false
			}
		}
		return true
	}

	maxR := 2 * m.p.D
	for r := 1; r <= maxR && !neutral(); r++ {
		for i, a := range defects {
			if m.boundaryDist[a] <= r {
				touchesBoundary[uf.find(a)] = true
			}
			for _, b := range defects[i+1:] {
				if m.dist(a, b) <= 2*r {
					uf.union(a, b)
				}
			}
		}
		// Propagate boundary contact to merged roots.
		for _, a := range defects {
			if touchesBoundary[a] {
				touchesBoundary[uf.find(a)] = true
			}
		}
	}

	// Peel each cluster: pair defects; route a leftover to the boundary.
	clusters := map[int][]int{}
	for _, d := range defects {
		r := uf.find(d)
		clusters[r] = append(clusters[r], d)
	}
	for _, members := range clusters {
		// Peel each (small) cluster with the exact local matcher — clusters
		// bound the matching problem, which is what makes union-find fast
		// while staying near matching accuracy.
		if len(members) <= 16 {
			m.decodeExactWith(sc, err, members)
		} else {
			m.decodeGreedyWith(sc, err, members)
		}
	}
}

// MonteCarloUnionFind estimates the code-capacity logical error rate with
// the union-find decoder, for comparison with the matching decoder (UF is
// near-linear-time; matching is more accurate).
func MonteCarloUnionFind(d int, p float64, shots int, seed int64) DecoderResult {
	res, err := MonteCarloUnionFindCtx(context.Background(), d, p, shots, seed, simrun.Options{})
	if err != nil {
		panic(err) // legacy boundary: preserves the seed API's panic contract
	}
	return res
}

// MonteCarloUnionFindCtx is the context-aware MonteCarloUnionFind, executed
// on the sharded parallel engine (see MonteCarloLogicalErrorCtx): results
// are bit-identical for every opt.Workers count; cancellation yields a
// partial, Truncated-flagged estimate over the completed shard prefix.
func MonteCarloUnionFindCtx(ctx context.Context, d int, p float64, shots int, seed int64, opt simrun.Options) (DecoderResult, error) {
	if err := checkMCParams(d, p); err != nil {
		return DecoderResult{}, err
	}
	patch := NewPatch(d)
	m := newMatcher(patch) // read-only after construction: shared across shards
	nd := patch.DataQubits()
	failures, status, gerr := simrun.RunSharded(ctx, shots, seed, opt,
		func(t *simrun.ShardTask) (int, int, error) {
			errBuf := make([]bool, nd)
			sc := m.newScratch()
			f := 0
			for i := 0; t.Continue(i); i++ {
				anyErr := false
				for q := 0; q < nd; q++ {
					errBuf[q] = t.RNG.Float64() < p
					anyErr = anyErr || errBuf[q]
				}
				if !anyErr {
					continue
				}
				m.decodeUnionFindWith(sc, errBuf, m.syndromeInto(sc.syn, errBuf))
				if m.logicalFlip(errBuf) {
					f++
				}
			}
			return f, f, nil
		},
		func(dst *int, src int) { *dst += src })
	if gerr != nil {
		return DecoderResult{}, gerr
	}
	return DecoderResult{Shots: status.Completed, Failures: failures, Status: status}, nil
}
