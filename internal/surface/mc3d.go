package surface

import (
	"context"
	"math"

	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// spacetimeNode is one detection event in the 3D (space × time) syndrome
// history.
type spacetimeNode struct {
	z int // compact Z-ancilla index
	t int // round index
}

// MonteCarloPhenomenological estimates the logical X error rate of a
// distance-d patch over `rounds` noisy ESM rounds: data qubits flip with
// probability p per round and syndrome measurements flip with probability q,
// followed by one final perfect round (the standard phenomenological noise
// model). Decoding matches detection events (syndrome differences between
// consecutive rounds) in space-time: spatial path segments flip data,
// time-like segments flip nothing (they explain measurement errors).
func MonteCarloPhenomenological(d int, p, q float64, rounds, shots int, seed int64) DecoderResult {
	res, err := MonteCarloPhenomenologicalCtx(context.Background(), d, p, q, rounds, shots, seed, simrun.Options{})
	if err != nil {
		panic(err) // legacy boundary: preserves the seed API's panic contract
	}
	return res
}

// PhenomenologicalCore validates the phenomenological-MC parameters and
// returns the per-shard sampler plus its in-order merge — the pieces a
// distributed executor needs to run an arbitrary shard window of this
// model and fold it bit-identically to a local run. The returned ShardFunc
// closes over read-only decoder state and is safe for concurrent shards.
func PhenomenologicalCore(d int, p, q float64, rounds int) (simrun.ShardFunc[int], func(*int, int), error) {
	if err := checkMCParams(d, p, q); err != nil {
		return nil, nil, err
	}
	if rounds < 1 {
		return nil, nil, simerr.Invalidf("surface: rounds must be >= 1, got %d", rounds)
	}
	patch := NewPatch(d)
	m := newMatcher(patch) // read-only after construction: shared across shards
	nd := patch.DataQubits()
	nz := len(m.zAncillas)

	run := func(t *simrun.ShardTask) (int, int, error) {
		// All per-shot state is hoisted and reused across the shot loop; the
		// loop body performs the same draws and flips in the same order as
		// the allocating version, so results are bit-identical.
		errBuf := make([]bool, nd)
		prevMeas := make([]bool, nz)
		curTrue := make([]bool, nz)
		events := make([]spacetimeNode, 0, 4*nz)
		sc := m.newScratch()
		f := 0
		for s := 0; t.Continue(s); s++ {
			for i := range errBuf {
				errBuf[i] = false
			}
			for i := range prevMeas {
				prevMeas[i] = false
			}
			events = events[:0]

			for r := 0; r < rounds; r++ {
				// New data errors this round.
				for qb := 0; qb < nd; qb++ {
					if t.RNG.Float64() < p {
						errBuf[qb] = !errBuf[qb]
					}
				}
				m.syndromeInto(curTrue, errBuf)
				for z := 0; z < nz; z++ {
					meas := curTrue[z]
					if t.RNG.Float64() < q {
						meas = !meas
					}
					if meas != prevMeas[z] {
						events = append(events, spacetimeNode{z: z, t: r})
					}
					prevMeas[z] = meas
				}
			}
			// Final perfect round.
			m.syndromeInto(curTrue, errBuf)
			for z := 0; z < nz; z++ {
				if curTrue[z] != prevMeas[z] {
					events = append(events, spacetimeNode{z: z, t: rounds})
				}
			}

			m.decodeSpacetimeWith(sc, errBuf, events)
			if m.logicalFlip(errBuf) {
				f++
			}
		}
		return f, f, nil
	}
	return run, func(dst *int, src int) { *dst += src }, nil
}

// DecoderResultFrom assembles the phenomenological-MC result from a folded
// failure count and the run's status — shared by the local path and the
// distributed merge so both produce identical result bytes.
func DecoderResultFrom(failures int, status simrun.Status) DecoderResult {
	return DecoderResult{Shots: status.Completed, Failures: failures, Status: status}
}

// MonteCarloPhenomenologicalCtx is the context-aware phenomenological MC,
// executed on the sharded parallel engine: each shard of shots runs on its
// own deterministic RNG stream and the shard results merge in shard order,
// so the estimate is bit-identical for every opt.Workers count.
// Cancellation or deadline expiry keeps the completed shard prefix as a
// partial, Truncated-flagged estimate; opt can enable the cross-shard
// standard-error convergence guard.
func MonteCarloPhenomenologicalCtx(ctx context.Context, d int, p, q float64, rounds, shots int, seed int64, opt simrun.Options) (DecoderResult, error) {
	run, merge, err := PhenomenologicalCore(d, p, q, rounds)
	if err != nil {
		return DecoderResult{}, err
	}
	failures, status, gerr := simrun.RunSharded(ctx, shots, seed, opt, run, merge)
	if gerr != nil {
		return DecoderResult{}, gerr
	}
	return DecoderResultFrom(failures, status), nil
}

// stDist is the space-time decoding metric: spatial Chebyshev distance plus
// the time separation.
func (m *matcher) stDist(a, b spacetimeNode) int {
	dt := a.t - b.t
	if dt < 0 {
		dt = -dt
	}
	return m.dist(a.z, b.z) + dt
}

// stBoundary is the cost of terminating a detection event at the spatial
// boundary (time boundaries are closed off by the final perfect round).
func (m *matcher) stBoundary(a spacetimeNode) int {
	return m.boundaryDist[a.z]
}

// decodeSpacetime matches detection events (exact for <= 14 events, greedy
// beyond) and applies the SPATIAL components of the matched paths as data
// corrections.
func (m *matcher) decodeSpacetime(err []bool, events []spacetimeNode) {
	m.decodeSpacetimeWith(m.newScratch(), err, events)
}

func (m *matcher) decodeSpacetimeWith(sc *decodeScratch, err []bool, events []spacetimeNode) {
	n := len(events)
	if n == 0 {
		return
	}
	if n <= 14 {
		m.stExactWith(sc, err, events)
		return
	}
	m.stGreedyWith(sc, err, events)
}

func (m *matcher) stExactWith(sc *decodeScratch, err []bool, ev []spacetimeNode) {
	n := len(ev)
	const inf = 1 << 29
	full := 1 << n
	if cap(sc.cost) < full {
		sc.cost = make([]int32, full)
		sc.choice = make([]int32, full)
	}
	cost := sc.cost[:full]
	choice := sc.choice[:full]
	cost[0] = 0
	for s := 1; s < full; s++ {
		cost[s] = inf
	}
	for s := 1; s < full; s++ {
		i := 0
		for ; s&(1<<i) == 0; i++ {
		}
		rest := s &^ (1 << i)
		if c := int32(m.stBoundary(ev[i])) + cost[rest]; c < cost[s] {
			cost[s] = c
			choice[s] = int32(i*64 + 63)
		}
		for j := i + 1; j < n; j++ {
			if s&(1<<j) == 0 {
				continue
			}
			r2 := rest &^ (1 << j)
			if c := int32(m.stDist(ev[i], ev[j])) + cost[r2]; c < cost[s] {
				cost[s] = c
				choice[s] = int32(i*64 + j)
			}
		}
	}
	for s := full - 1; s > 0; {
		ch := choice[s]
		i, j := int(ch/64), int(ch%64)
		if j == 63 {
			m.boundaryFlip(err, ev[i].z)
			s &^= 1 << i
		} else {
			m.pathFlip(err, ev[i].z, ev[j].z)
			s &^= (1 << i) | (1 << j)
		}
	}
}

func (m *matcher) stGreedyWith(sc *decodeScratch, err []bool, ev []spacetimeNode) {
	if len(sc.used) < len(ev) {
		sc.used = make([]bool, len(ev))
	}
	used := sc.used[:len(ev)]
	for i := range used {
		used[i] = false
	}
	for {
		best := 1 << 30
		bi, bj := -1, -1
		for x := range ev {
			if used[x] {
				continue
			}
			for y := x + 1; y < len(ev); y++ {
				if used[y] {
					continue
				}
				if c := m.stDist(ev[x], ev[y]); c < best {
					best, bi, bj = c, x, y
				}
			}
			if c := m.stBoundary(ev[x]); c < best {
				best, bi, bj = c, x, -2
			}
		}
		if bi == -1 {
			return
		}
		used[bi] = true
		if bj == -2 {
			m.boundaryFlip(err, ev[bi].z)
		} else {
			used[bj] = true
			m.pathFlip(err, ev[bi].z, ev[bj].z)
		}
	}
}

// PhenomenologicalThreshold locates the p = q crossing point of the d and
// d+2 curves — the phenomenological threshold (literature: ~2.9–3.3% for
// matching decoders).
func PhenomenologicalThreshold(d, rounds, shots int, seed int64) float64 {
	res, err := PhenomenologicalThresholdCtx(context.Background(), d, rounds, shots, seed, simrun.Options{})
	if err != nil {
		panic(err)
	}
	return res.Estimate
}

// PhenomenologicalThresholdCtx is the context-aware threshold bisection: on
// cancellation it returns the current bracket midpoint as a Truncated
// best-so-far estimate with the number of completed bisection steps.
func PhenomenologicalThresholdCtx(ctx context.Context, d, rounds, shots int, seed int64, opt simrun.Options) (ThresholdResult, error) {
	if err := checkMCParams(d); err != nil {
		return ThresholdResult{}, err
	}
	lo, hi := 0.002, 0.1
	const iters = 10
	for i := 0; i < iters; i++ {
		mid := math.Sqrt(lo * hi)
		small, err := MonteCarloPhenomenologicalCtx(ctx, d, mid, mid, rounds, shots, seed, opt)
		if err != nil {
			return ThresholdResult{}, err
		}
		if small.Status.Truncated {
			return ThresholdResult{Estimate: math.Sqrt(lo * hi), Iterations: i, Status: small.Status}, nil
		}
		large, err := MonteCarloPhenomenologicalCtx(ctx, d+2, mid, mid, rounds, shots, seed+1, opt)
		if err != nil {
			return ThresholdResult{}, err
		}
		if large.Status.Truncated {
			return ThresholdResult{Estimate: math.Sqrt(lo * hi), Iterations: i, Status: large.Status}, nil
		}
		if large.Rate() < small.Rate() {
			lo = mid
		} else {
			hi = mid
		}
	}
	return ThresholdResult{
		Estimate:   math.Sqrt(lo * hi),
		Iterations: iters,
		Status:     simrun.Status{Requested: iters, Completed: iters, StopReason: simrun.StopCompleted},
	}, nil
}
