package surface

import (
	"math"
	"math/rand"
)

// spacetimeNode is one detection event in the 3D (space × time) syndrome
// history.
type spacetimeNode struct {
	z int // compact Z-ancilla index
	t int // round index
}

// MonteCarloPhenomenological estimates the logical X error rate of a
// distance-d patch over `rounds` noisy ESM rounds: data qubits flip with
// probability p per round and syndrome measurements flip with probability q,
// followed by one final perfect round (the standard phenomenological noise
// model). Decoding matches detection events (syndrome differences between
// consecutive rounds) in space-time: spatial path segments flip data,
// time-like segments flip nothing (they explain measurement errors).
func MonteCarloPhenomenological(d int, p, q float64, rounds, shots int, seed int64) DecoderResult {
	patch := NewPatch(d)
	m := newMatcher(patch)
	rng := rand.New(rand.NewSource(seed))
	res := DecoderResult{Shots: shots}
	nd := patch.DataQubits()
	nz := len(m.zAncillas)

	err := make([]bool, nd)
	prevMeas := make([]bool, nz)
	curTrue := make([]bool, nz)

	for s := 0; s < shots; s++ {
		for i := range err {
			err[i] = false
		}
		for i := range prevMeas {
			prevMeas[i] = false
		}
		var events []spacetimeNode

		for r := 0; r < rounds; r++ {
			// New data errors this round.
			for qb := 0; qb < nd; qb++ {
				if rng.Float64() < p {
					err[qb] = !err[qb]
				}
			}
			truth := m.syndrome(err)
			copy(curTrue, truth)
			for z := 0; z < nz; z++ {
				meas := curTrue[z]
				if rng.Float64() < q {
					meas = !meas
				}
				if meas != prevMeas[z] {
					events = append(events, spacetimeNode{z: z, t: r})
				}
				prevMeas[z] = meas
			}
		}
		// Final perfect round.
		truth := m.syndrome(err)
		for z := 0; z < nz; z++ {
			if truth[z] != prevMeas[z] {
				events = append(events, spacetimeNode{z: z, t: rounds})
			}
		}

		m.decodeSpacetime(err, events)
		if m.logicalFlip(err) {
			res.Failures++
		}
	}
	return res
}

// stDist is the space-time decoding metric: spatial Chebyshev distance plus
// the time separation.
func (m *matcher) stDist(a, b spacetimeNode) int {
	dt := a.t - b.t
	if dt < 0 {
		dt = -dt
	}
	return m.dist(a.z, b.z) + dt
}

// stBoundary is the cost of terminating a detection event at the spatial
// boundary (time boundaries are closed off by the final perfect round).
func (m *matcher) stBoundary(a spacetimeNode) int {
	return m.boundaryDist[a.z]
}

// decodeSpacetime matches detection events (exact for <= 14 events, greedy
// beyond) and applies the SPATIAL components of the matched paths as data
// corrections.
func (m *matcher) decodeSpacetime(err []bool, events []spacetimeNode) {
	n := len(events)
	if n == 0 {
		return
	}
	if n <= 14 {
		m.stExact(err, events)
		return
	}
	m.stGreedy(err, events)
}

func (m *matcher) stExact(err []bool, ev []spacetimeNode) {
	n := len(ev)
	const inf = 1 << 29
	full := 1 << n
	cost := make([]int32, full)
	choice := make([]int32, full)
	for s := 1; s < full; s++ {
		cost[s] = inf
	}
	for s := 1; s < full; s++ {
		i := 0
		for ; s&(1<<i) == 0; i++ {
		}
		rest := s &^ (1 << i)
		if c := int32(m.stBoundary(ev[i])) + cost[rest]; c < cost[s] {
			cost[s] = c
			choice[s] = int32(i*64 + 63)
		}
		for j := i + 1; j < n; j++ {
			if s&(1<<j) == 0 {
				continue
			}
			r2 := rest &^ (1 << j)
			if c := int32(m.stDist(ev[i], ev[j])) + cost[r2]; c < cost[s] {
				cost[s] = c
				choice[s] = int32(i*64 + j)
			}
		}
	}
	for s := full - 1; s > 0; {
		ch := choice[s]
		i, j := int(ch/64), int(ch%64)
		if j == 63 {
			m.boundaryFlip(err, ev[i].z)
			s &^= 1 << i
		} else {
			m.pathFlip(err, ev[i].z, ev[j].z)
			s &^= (1 << i) | (1 << j)
		}
	}
}

func (m *matcher) stGreedy(err []bool, ev []spacetimeNode) {
	used := make([]bool, len(ev))
	for {
		best := 1 << 30
		bi, bj := -1, -1
		for x := range ev {
			if used[x] {
				continue
			}
			for y := x + 1; y < len(ev); y++ {
				if used[y] {
					continue
				}
				if c := m.stDist(ev[x], ev[y]); c < best {
					best, bi, bj = c, x, y
				}
			}
			if c := m.stBoundary(ev[x]); c < best {
				best, bi, bj = c, x, -2
			}
		}
		if bi == -1 {
			return
		}
		used[bi] = true
		if bj == -2 {
			m.boundaryFlip(err, ev[bi].z)
		} else {
			used[bj] = true
			m.pathFlip(err, ev[bi].z, ev[bj].z)
		}
	}
}

// PhenomenologicalThreshold locates the p = q crossing point of the d and
// d+2 curves — the phenomenological threshold (literature: ~2.9–3.3% for
// matching decoders).
func PhenomenologicalThreshold(d, rounds, shots int, seed int64) float64 {
	lo, hi := 0.002, 0.1
	for i := 0; i < 10; i++ {
		mid := math.Sqrt(lo * hi)
		pS := MonteCarloPhenomenological(d, mid, mid, rounds, shots, seed).Rate()
		pL := MonteCarloPhenomenological(d+2, mid, mid, rounds, shots, seed+1).Rate()
		if pL < pS {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
