package surface

import "math"

// Projection is the standard sub-threshold logical-error projection
// p_L = A·(p/p_th)^((d+1)/2) used by the paper's error model [Ghosh/Fowler].
type Projection struct {
	A   float64 // prefactor (0.1)
	PTh float64 // threshold physical error rate (0.57%)
	D   int     // code distance
}

// DefaultProjection returns the d = 23 projection of the Section 6 analysis.
func DefaultProjection() Projection { return Projection{A: 0.1, PTh: 0.0057, D: 23} }

// Logical returns p_L for an effective per-round physical error rate p.
func (pr Projection) Logical(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return pr.A * math.Pow(p/pr.PTh, float64(pr.D+1)/2)
}

// PhysicalFor inverts Logical: the p_eff that yields the given p_L.
func (pr Projection) PhysicalFor(pL float64) float64 {
	if pL <= 0 {
		return 0
	}
	return pr.PTh * math.Pow(pL/pr.A, 2/float64(pr.D+1))
}

// RoundTiming describes one ESM round's schedule for a QCI technology.
type RoundTiming struct {
	// OneQTime and TwoQTime are single-gate latencies (25/50 ns).
	OneQTime, TwoQTime float64
	// ReadoutTime is the full readout latency (incl. ring-up / JPM stages).
	ReadoutTime float64
	// DriveSerialization is the effective serialisation factor of the two H
	// layers caused by frequency multiplexing: the layer takes
	// OneQTime · max(1, DriveSerialization). For the SFQ QCI (broadcast
	// bitstreams) this is 1; for the CMOS QCI it is k·FDM with k ≈ 0.41
	// (calibrated — see EXPERIMENTS.md).
	DriveSerialization float64
}

// RoundTime returns the ESM round duration: two (possibly serialised) 1Q
// layers, four CZ layers, and the readout.
func (t RoundTiming) RoundTime() float64 {
	ser := t.DriveSerialization
	if ser < 1 {
		ser = 1
	}
	return 2*t.OneQTime*ser + 4*t.TwoQTime + t.ReadoutTime
}

// CMOSSerialization returns the calibrated CMOS drive serialisation factor
// for an FDM degree (k·FDM with k = 0.4103, jointly fitted to the paper's
// Opt-#7 logical-error ratios — see EXPERIMENTS.md).
func CMOSSerialization(fdm int) float64 { return 0.4103 * float64(fdm) }

// ErrorParams are the calibrated per-technology coefficients of the
// effective per-round physical error rate
//
//	p_eff = P0 + C·t_round + ExtraGateError
//
// P0 absorbs the gate/readout error contributions of the Table 2 operating
// points; C converts ESM-round decoherence exposure into Pauli-twirled
// physical error. Both are calibrated once against the paper's published
// logical-error anchors (Figs. 13, 15, 17, 20) and then reproduce all of
// them; the derivation is recorded in EXPERIMENTS.md.
type ErrorParams struct {
	P0 float64
	C  float64 // per second of round time
}

// CMOSErrorParams returns the 4 K CMOS calibration.
func CMOSErrorParams() ErrorParams { return ErrorParams{P0: 1.3933e-4, C: 1.4703e-7 / 1e-9} }

// SFQErrorParams returns the 4 K SFQ calibration.
func SFQErrorParams() ErrorParams { return ErrorParams{P0: 4.9e-5, C: 3.52e-7 / 1e-9} }

// Effective returns p_eff for a round time (seconds) plus any additional
// gate error beyond the calibrated operating point (e.g. the Opt-#2
// bit-precision sweep adds e1q(bits) - e1q(14)).
func (e ErrorParams) Effective(roundTime, extraGateError float64) float64 {
	return e.P0 + e.C*roundTime + extraGateError
}

// TargetModel is the Jellium-anchored logical-error target: running Jellium
// N with 99% success requires p_L below a budget that falls as the algorithm
// (and so the logical-qubit count) grows. Anchors: Jellium N=2 → 1.11e-11;
// Jellium N=54 → 1.69e-17 (Section 6.1).
type TargetModel struct {
	AnchorN      float64
	AnchorTarget float64
	Exponent     float64
}

// DefaultTargets returns the model through both paper anchors.
func DefaultTargets() TargetModel {
	// exponent = ln(1.69e-17/1.11e-11) / ln(54/2)
	return TargetModel{AnchorN: 2, AnchorTarget: 1.11e-11, Exponent: 4.0636}
}

// Target returns the required logical error rate for n logical qubits.
func (t TargetModel) Target(nLogical float64) float64 {
	if nLogical < t.AnchorN {
		nLogical = t.AnchorN
	}
	return t.AnchorTarget * math.Pow(nLogical/t.AnchorN, -t.Exponent)
}

// MaxLogicalQubits returns the largest logical-qubit count whose target the
// achieved p_L still satisfies.
func (t TargetModel) MaxLogicalQubits(pL float64) float64 {
	if pL <= 0 {
		return math.Inf(1)
	}
	if pL > t.AnchorTarget {
		return 0
	}
	return t.AnchorN * math.Pow(t.AnchorTarget/pL, 1/t.Exponent)
}

// MaxPhysicalQubits converts the error-limited logical count into physical
// qubits at distance d (2(d+1)² per patch).
func (t TargetModel) MaxPhysicalQubits(pL float64, d int) float64 {
	return t.MaxLogicalQubits(pL) * float64(PhysicalQubitsPerPatch(d))
}
