package surface

import "testing"

func TestFitProjectionFromDecoder(t *testing.T) {
	r := FitProjection([]int{3, 5}, []float64{0.01, 0.02, 0.03, 0.05}, 120000, 1)
	if len(r.Points) < 6 {
		t.Fatalf("fit used only %d points", len(r.Points))
	}
	// The prefactor lands near the canonical ~0.1.
	if r.A < 0.02 || r.A > 0.5 {
		t.Fatalf("fitted A = %v, want ~0.1", r.A)
	}
	// The code-capacity threshold sits near 7-10% — roughly 12x the paper's
	// circuit-level 0.57%, the standard code-capacity/circuit-level gap
	// (one fault location per qubit per round vs. tens per ESM round).
	if r.PTh < 0.03 || r.PTh > 0.15 {
		t.Fatalf("fitted p_th = %v, want ~0.07 (code capacity)", r.PTh)
	}
	if !r.PredictsWithin(3) {
		t.Fatal("fit must reproduce its own MC points within 3x")
	}
}

func TestFitHandlesDegenerateInput(t *testing.T) {
	// Too-low p produces no failures → no usable points → zero fit, and
	// PredictsWithin must reject it rather than divide by zero.
	r := FitProjection([]int{3}, []float64{1e-5}, 200, 2)
	if r.A != 0 || r.PTh != 0 {
		t.Fatalf("degenerate fit should return zeros, got %+v", r)
	}
	if r.PredictsWithin(3) {
		t.Fatal("zero fit must not claim predictive power")
	}
}
