package surface

import "testing"

func TestPhenomenologicalReducesToCodeCapacity(t *testing.T) {
	// With q = 0 and one round, the phenomenological model must match the
	// code-capacity MC statistically.
	a := MonteCarloPhenomenological(3, 0.01, 0, 1, 30000, 1).Rate()
	b := MonteCarloLogicalError(3, 0.01, 30000, 2).Rate()
	if a > 2.5*b+1e-3 || b > 2.5*a+1e-3 {
		t.Fatalf("q=0 phenomenological (%.4g) inconsistent with code capacity (%.4g)", a, b)
	}
}

func TestPhenomenologicalDistanceHelps(t *testing.T) {
	p := 0.008
	p3 := MonteCarloPhenomenological(3, p, p, 3, 20000, 3).Rate()
	p5 := MonteCarloPhenomenological(5, p, p, 5, 20000, 4).Rate()
	if p5 >= p3 {
		t.Fatalf("d=5 (%.4g) should beat d=3 (%.4g) below threshold", p5, p3)
	}
}

func TestMeasurementErrorsHurt(t *testing.T) {
	p := 0.01
	clean := MonteCarloPhenomenological(3, p, 0, 3, 20000, 5).Rate()
	noisy := MonteCarloPhenomenological(3, p, p, 3, 20000, 6).Rate()
	if noisy <= clean {
		t.Fatalf("measurement noise should raise the logical error: %.4g vs %.4g", noisy, clean)
	}
}

func TestMoreRoundsAccumulateError(t *testing.T) {
	p := 0.006
	short := MonteCarloPhenomenological(3, p, p, 2, 20000, 7).Rate()
	long := MonteCarloPhenomenological(3, p, p, 8, 20000, 8).Rate()
	if long <= short {
		t.Fatalf("more noisy rounds should accumulate logical error: %.4g vs %.4g", long, short)
	}
}

func TestZeroNoiseZeroFailures(t *testing.T) {
	r := MonteCarloPhenomenological(5, 0, 0, 5, 2000, 9)
	if r.Failures != 0 {
		t.Fatalf("no noise but %d failures", r.Failures)
	}
}

func TestPhenomenologicalThresholdBand(t *testing.T) {
	if testing.Short() {
		t.Skip("MC threshold probe")
	}
	th := PhenomenologicalThreshold(3, 3, 1200, 10)
	// Matching decoders sit near 3%; our behavioural decoder with a coarse
	// metric lands somewhat higher — demand the right order of magnitude.
	if th < 0.01 || th > 0.12 {
		t.Fatalf("phenomenological threshold %.3f outside plausible band", th)
	}
}
