package surface

import (
	"math"
	"testing"
)

func TestPatchCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		p := NewPatch(d)
		if p.DataQubits() != d*d {
			t.Fatalf("d=%d: data qubits %d, want %d", d, p.DataQubits(), d*d)
		}
		if len(p.Ancillas) != d*d-1 {
			t.Fatalf("d=%d: ancillas %d, want %d", d, len(p.Ancillas), d*d-1)
		}
		nz := len(p.AncillasOfType(ZAncilla))
		nx := len(p.AncillasOfType(XAncilla))
		if nz != nx || nz+nx != d*d-1 {
			t.Fatalf("d=%d: Z/X ancilla split %d/%d", d, nz, nx)
		}
	}
}

func TestPatchPanicsOnEvenDistance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even distance")
		}
	}()
	NewPatch(4)
}

func TestPhysicalQubitsPerPatch(t *testing.T) {
	// Section 6.1: d = 23 → 1,152 physical qubits per logical qubit.
	if got := PhysicalQubitsPerPatch(23); got != 1152 {
		t.Fatalf("2(d+1)² at d=23 = %d, want 1152", got)
	}
}

func TestAncillaWeights(t *testing.T) {
	p := NewPatch(5)
	for _, a := range p.Ancillas {
		if len(a.Data) != 2 && len(a.Data) != 4 {
			t.Fatalf("ancilla %+v has weight %d", a, len(a.Data))
		}
		boundary := a.R2 == -1 || a.C2 == -1 || a.R2 == 2*p.D-1 || a.C2 == 2*p.D-1
		if boundary && len(a.Data) != 2 {
			t.Fatalf("boundary ancilla must have weight 2: %+v", a)
		}
		if !boundary && len(a.Data) != 4 {
			t.Fatalf("bulk ancilla must have weight 4: %+v", a)
		}
	}
}

func TestESMCircuitStructure(t *testing.T) {
	p := NewPatch(5)
	ops := p.ESMCircuit()
	counts := map[string]int{}
	czPerAncilla := map[int]int{}
	for _, op := range ops {
		counts[op.Kind]++
		if op.Kind == "cz" {
			czPerAncilla[op.Q]++
			if op.Q2 < 0 || op.Q2 >= p.DataQubits() {
				t.Fatalf("CZ data partner out of range: %+v", op)
			}
		}
	}
	na := len(p.Ancillas)
	if counts["h"] != 2*na {
		t.Fatalf("H count %d, want %d (two layers)", counts["h"], 2*na)
	}
	if counts["measure"] != na {
		t.Fatalf("measure count %d, want %d", counts["measure"], na)
	}
	// Every ancilla gets one CZ per adjacent data qubit.
	totalCZ := 0
	for _, a := range p.Ancillas {
		totalCZ += len(a.Data)
	}
	if counts["cz"] != totalCZ {
		t.Fatalf("CZ count %d, want %d", counts["cz"], totalCZ)
	}
}

func TestESMLayersConflictFree(t *testing.T) {
	// Within one CZ layer no qubit may appear twice (they run in parallel).
	p := NewPatch(7)
	byLayer := map[int]map[int]bool{}
	for _, op := range p.ESMCircuit() {
		if op.Kind != "cz" {
			continue
		}
		m, ok := byLayer[op.Layer]
		if !ok {
			m = map[int]bool{}
			byLayer[op.Layer] = m
		}
		for _, q := range []int{op.Q, op.Q2} {
			if m[q] {
				t.Fatalf("qubit %d used twice in layer %d", q, op.Layer)
			}
			m[q] = true
		}
	}
	if len(byLayer) != 4 {
		t.Fatalf("expected 4 CZ layers, got %d", len(byLayer))
	}
}

func TestDecoderCorrectsAllSingleErrors(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		p := NewPatch(d)
		m := newMatcher(p)
		for q := 0; q < p.DataQubits(); q++ {
			err := make([]bool, p.DataQubits())
			err[q] = true
			m.decode(err, m.syndrome(err))
			for _, s := range m.syndrome(err) {
				if s {
					t.Fatalf("d=%d: residual syndrome after correcting single error at %d", d, q)
				}
			}
			if m.logicalFlip(err) {
				t.Fatalf("d=%d: logical flip from a single error at %d", d, q)
			}
		}
	}
}

func TestDecoderDistanceProperty(t *testing.T) {
	// A distance-5 code corrects every weight-2 error.
	p := NewPatch(5)
	m := newMatcher(p)
	n := p.DataQubits()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			err := make([]bool, n)
			err[a], err[b] = true, true
			m.decode(err, m.syndrome(err))
			if m.logicalFlip(err) {
				t.Fatalf("weight-2 error {%d,%d} caused a logical flip at d=5", a, b)
			}
		}
	}
}

func TestMonteCarloSubThresholdScaling(t *testing.T) {
	// Below threshold, larger distance wins and error grows with p.
	p3 := MonteCarloLogicalError(3, 0.01, 40000, 1).Rate()
	p5 := MonteCarloLogicalError(5, 0.01, 40000, 2).Rate()
	if p5 >= p3 {
		t.Fatalf("d=5 (%.4g) should beat d=3 (%.4g) below threshold", p5, p3)
	}
	q3 := MonteCarloLogicalError(3, 0.03, 40000, 3).Rate()
	if q3 <= p3 {
		t.Fatalf("logical error must grow with p: %.4g at 3%% vs %.4g at 1%%", q3, p3)
	}
}

func TestMonteCarloExponentRoughlyMatchesProjection(t *testing.T) {
	// The code-capacity MC should scale near (p)^((d+1)/2): for d=3 the
	// log-log slope between p=0.01 and p=0.04 should be ~2.
	lo := MonteCarloLogicalError(3, 0.01, 120000, 4).Rate()
	hi := MonteCarloLogicalError(3, 0.04, 120000, 5).Rate()
	slope := math.Log(hi/lo) / math.Log(4.0)
	if slope < 1.4 || slope > 2.6 {
		t.Fatalf("d=3 scaling exponent %.2f, want ~2", slope)
	}
}

func TestProjectionFormula(t *testing.T) {
	pr := DefaultProjection()
	// At p = p_th the projection returns A.
	if math.Abs(pr.Logical(pr.PTh)-pr.A) > 1e-15 {
		t.Fatal("Logical(p_th) must equal A")
	}
	// Exponent (d+1)/2 = 12 at d=23: halving p divides p_L by 2^12.
	r := pr.Logical(2e-4) / pr.Logical(1e-4)
	if math.Abs(r-math.Pow(2, 12)) > 1 {
		t.Fatalf("projection exponent wrong: ratio %.1f, want 4096", r)
	}
	// Inverse.
	p := pr.PhysicalFor(1e-13)
	if math.Abs(pr.Logical(p)-1e-13)/1e-13 > 1e-9 {
		t.Fatal("PhysicalFor must invert Logical")
	}
}

func TestRoundTimeSFQ(t *testing.T) {
	// SFQ unshared: 2·25 + 4·50 + 665 = 915 ns.
	rt := RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: 665e-9, DriveSerialization: 1}
	if math.Abs(rt.RoundTime()-915e-9) > 1e-12 {
		t.Fatalf("SFQ round time %v, want 915 ns", rt.RoundTime())
	}
}

func TestLogicalErrorAnchorsSFQ(t *testing.T) {
	// The calibrated model must reproduce the paper's Fig. 13(b)/15/20
	// logical-error anchors within a factor ~2.
	pr := DefaultProjection()
	ep := SFQErrorParams()
	cases := []struct {
		name    string
		readout float64
		anchor  float64
	}{
		{"unshared-baseline", 665e-9, 4.13e-16},
		{"naive-sharing", 5320e-9, 3.50e-7},
		{"shared-pipelined", 1255e-9, 1.34e-13},
	}
	for _, c := range cases {
		rt := RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: c.readout, DriveSerialization: 1}
		pl := pr.Logical(ep.Effective(rt.RoundTime(), 0))
		if pl < c.anchor/3 || pl > c.anchor*3 {
			t.Errorf("%s: p_L = %.3g, paper anchor %.3g", c.name, pl, c.anchor)
		}
	}
}

func TestOpt8LogicalErrorReduction(t *testing.T) {
	// Opt-#8: fast driving + unsharing cuts p_L by ~28,355x vs pipelined.
	pr := DefaultProjection()
	ep := SFQErrorParams()
	pipe := RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: 1255e-9, DriveSerialization: 1}
	fast := RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: 317.7e-9, DriveSerialization: 1}
	ratio := pr.Logical(ep.Effective(pipe.RoundTime(), 0)) / pr.Logical(ep.Effective(fast.RoundTime(), 0))
	if ratio < 8000 || ratio > 90000 {
		t.Fatalf("Opt-#8 logical-error reduction %.0fx, paper 28,355x", ratio)
	}
}

func TestOpt7CMOSRatios(t *testing.T) {
	// FDM 32→20 cuts p_L ~3.85x; multi-round readout a further ~3.62x.
	pr := DefaultProjection()
	ep := CMOSErrorParams()
	mk := func(fdm int, ro float64) float64 {
		rt := RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: ro, DriveSerialization: CMOSSerialization(fdm)}
		return pr.Logical(ep.Effective(rt.RoundTime(), 0))
	}
	r1 := mk(32, 517e-9) / mk(20, 517e-9)
	if r1 < 2.8 || r1 > 5.2 {
		t.Fatalf("FDM 32→20 logical gain %.2f, paper 3.85", r1)
	}
	r2 := mk(20, 517e-9) / mk(20, 306e-9)
	if r2 < 2.6 || r2 > 5.0 {
		t.Fatalf("multi-round logical gain %.2f, paper 3.62", r2)
	}
}

func TestTargetModelAnchors(t *testing.T) {
	tm := DefaultTargets()
	if math.Abs(tm.Target(2)-1.11e-11)/1.11e-11 > 1e-9 {
		t.Fatal("Jellium N=2 anchor broken")
	}
	if got := tm.Target(54); math.Abs(got-1.69e-17)/1.69e-17 > 0.02 {
		t.Fatalf("Jellium N=54 target %.3g, want 1.69e-17", got)
	}
	// Monotone decreasing.
	if tm.Target(10) <= tm.Target(20) {
		t.Fatal("target must decrease with algorithm size")
	}
}

func TestMaxPhysicalQubitsEndpoints(t *testing.T) {
	tm := DefaultTargets()
	pr := DefaultProjection()
	// ERSFQ + Opt-#8 end state: readout 317.7 ns → ~82k qubits (paper 82,413).
	ep := SFQErrorParams()
	rt := RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: 317.7e-9, DriveSerialization: 1}
	pl := pr.Logical(ep.Effective(rt.RoundTime(), 0))
	n := tm.MaxPhysicalQubits(pl, 23)
	if n < 60000 || n > 110000 {
		t.Fatalf("ERSFQ error-limited scale %.0f, paper 82,413", n)
	}
	// Advanced CMOS + Opt-#6/7: FDM 20 + 306 ns readout → ~64k (63,883).
	ec := CMOSErrorParams()
	rtc := RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: 306e-9, DriveSerialization: CMOSSerialization(20)}
	plc := pr.Logical(ec.Effective(rtc.RoundTime(), 0))
	nc := tm.MaxPhysicalQubits(plc, 23)
	if nc < 48000 || nc > 85000 {
		t.Fatalf("advanced-CMOS error-limited scale %.0f, paper 63,883", nc)
	}
}

func TestNearTermErrorHeadroom(t *testing.T) {
	// Fig. 13: both near-term designs meet the 1.11e-11 target (power, not
	// error, limits them) — except naive sharing, which violates it.
	pr := DefaultProjection()
	ep := SFQErrorParams()
	ok := RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: 1255e-9, DriveSerialization: 1}
	if pl := pr.Logical(ep.Effective(ok.RoundTime(), 0)); pl > 1.11e-11 {
		t.Fatalf("pipelined design misses the near-term target: %.3g", pl)
	}
	naive := RoundTiming{OneQTime: 25e-9, TwoQTime: 50e-9, ReadoutTime: 5320e-9, DriveSerialization: 1}
	if pl := pr.Logical(ep.Effective(naive.RoundTime(), 0)); pl < 1.11e-11 {
		t.Fatalf("naive sharing should violate the near-term target, got %.3g", pl)
	}
}

func TestThresholdEstimateBand(t *testing.T) {
	if testing.Short() {
		t.Skip("MC threshold probe")
	}
	th := ThresholdEstimate(3, 3000, 7)
	// Code-capacity matching thresholds sit near 10%.
	if th < 0.04 || th > 0.2 {
		t.Fatalf("decoder threshold %.3f outside the plausible band", th)
	}
}
