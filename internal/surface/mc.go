package surface

import (
	"context"
	"math"

	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// DecoderResult summarises a Monte-Carlo logical-error estimate. Shots is
// the number actually completed: when Status.Truncated is set the result is
// a best-so-far partial estimate over those shots, not garbage.
type DecoderResult struct {
	Shots    int `json:"shots"`
	Failures int `json:"failures"`
	// Status flags truncation/convergence for the context-aware entry
	// points; zero-valued for the legacy fixed-budget ones.
	Status simrun.Status `json:"status"`
}

// Rate returns the logical error estimate.
func (r DecoderResult) Rate() float64 {
	if r.Shots == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Shots)
}

// matcher holds the Z-stabilizer syndrome graph of a patch for X-error
// decoding (the X sector is symmetric; the paper generates both X and Z
// errors from QIsim and feeds the standard error model, and so do we via
// two independent sectors).
type matcher struct {
	p *Patch
	// zIdx maps ancilla index → compact Z index; coords for distances.
	zAncillas []int
	dataToZ   [][]int // data qubit → list of Z-ancilla compact ids
	shared    map[[2]int]int
	// boundaryQubit[z] is a data qubit adjacent only to Z-ancilla z (a path
	// to the top/bottom boundary), or -1.
	boundaryQubit []int
	boundaryDist  []int

	// Precomputed decode tables, built once per patch so the per-shot hot
	// path never touches a map or recomputes a distance:
	//   adj/adjQ    — neighbours of z in ascending id order + shared qubit,
	//   distT       — Chebyshev distance between Z-ancilla pairs (nz×nz),
	//   nextZ/nextQ — the greedy next hop (and its flip qubit) on a
	//                 shortest path cur→target, replayed from pathFlip's
	//                 argmin over the sorted neighbour order (nz×nz),
	//   bStepZ/bStepQ — boundaryFlip's walk step from each ancilla: the
	//                 flip qubit plus the next ancilla (-1 = walk ends).
	adj, adjQ      [][]int
	distT          []int32
	nextZ, nextQ   []int32
	bStepZ, bStepQ []int32
}

// decodeScratch is the per-shard reusable state of the decoder: the flipped
// syndrome list, the bitmask-DP tables, and the greedy matcher's used set.
type decodeScratch struct {
	syn     []bool
	flipped []int
	cost    []int32
	choice  []int32
	used    []bool
}

func (m *matcher) newScratch() *decodeScratch {
	return &decodeScratch{
		syn:  make([]bool, len(m.zAncillas)),
		used: make([]bool, len(m.zAncillas)),
	}
}

func newMatcher(p *Patch) *matcher {
	m := &matcher{p: p, shared: make(map[[2]int]int)}
	compact := make(map[int]int)
	for i, a := range p.Ancillas {
		if a.Type == ZAncilla {
			compact[i] = len(m.zAncillas)
			m.zAncillas = append(m.zAncillas, i)
		}
	}
	m.dataToZ = make([][]int, p.DataQubits())
	for i, a := range p.Ancillas {
		if a.Type != ZAncilla {
			continue
		}
		z := compact[i]
		for _, q := range a.Data {
			m.dataToZ[q] = append(m.dataToZ[q], z)
		}
	}
	// Shared data qubits between Z-ancilla pairs; boundary qubits for
	// singly-attached data qubits.
	m.boundaryQubit = make([]int, len(m.zAncillas))
	m.boundaryDist = make([]int, len(m.zAncillas))
	for z := range m.boundaryQubit {
		m.boundaryQubit[z] = -1
	}
	for q, zs := range m.dataToZ {
		switch len(zs) {
		case 2:
			key := [2]int{min(zs[0], zs[1]), max(zs[0], zs[1])}
			m.shared[key] = q
		case 1:
			m.boundaryQubit[zs[0]] = q
		}
	}
	// Boundary distance: rows to nearest X boundary (top/bottom), in
	// ancilla-grid steps.
	d := p.D
	for z, ai := range m.zAncillas {
		r2 := p.Ancillas[ai].R2
		top := (r2 + 1) / 2
		bot := (2*d - 1 - r2) / 2
		m.boundaryDist[z] = min(top, bot)
		if m.boundaryQubit[z] == -1 {
			// Bulk ancilla: walking to the boundary passes through
			// neighbouring ancillas; the final step uses their boundary
			// qubits. Handled in pathToBoundary.
			_ = z
		}
	}
	m.buildTables()
	return m
}

// buildTables precomputes the decode lookup tables from the shared-qubit
// map, so the per-shot path never iterates a map or recomputes a distance.
// Neighbour ties resolve in ascending ancilla-id order — a fixed choice
// among equally short corrections, which differ from each other only by
// stabilizer loops and therefore leave every decoded outcome unchanged.
func (m *matcher) buildTables() {
	nz := len(m.zAncillas)
	m.adj = make([][]int, nz)
	m.adjQ = make([][]int, nz)
	for key, q := range m.shared {
		m.adj[key[0]] = append(m.adj[key[0]], key[1])
		m.adjQ[key[0]] = append(m.adjQ[key[0]], q)
		m.adj[key[1]] = append(m.adj[key[1]], key[0])
		m.adjQ[key[1]] = append(m.adjQ[key[1]], q)
	}
	for z := 0; z < nz; z++ {
		adj, adjQ := m.adj[z], m.adjQ[z]
		for i := 1; i < len(adj); i++ {
			for j := i; j > 0 && adj[j] < adj[j-1]; j-- {
				adj[j], adj[j-1] = adj[j-1], adj[j]
				adjQ[j], adjQ[j-1] = adjQ[j-1], adjQ[j]
			}
		}
	}
	m.distT = make([]int32, nz*nz)
	for a := 0; a < nz; a++ {
		for b := 0; b < nz; b++ {
			m.distT[a*nz+b] = int32(m.distFromCoords(a, b))
		}
	}
	// Next hop of a shortest path cur→tgt: the first strictly closer
	// neighbour in ascending order, exactly the greedy step pathFlip takes.
	m.nextZ = make([]int32, nz*nz)
	m.nextQ = make([]int32, nz*nz)
	for cur := 0; cur < nz; cur++ {
		for tgt := 0; tgt < nz; tgt++ {
			m.nextZ[cur*nz+tgt], m.nextQ[cur*nz+tgt] = -1, -1
			if cur == tgt {
				continue
			}
			best, bq, bd := -1, -1, 1<<30
			for idx, nb := range m.adj[cur] {
				if dd := int(m.distT[nb*nz+tgt]); dd < bd {
					bd, best, bq = dd, nb, m.adjQ[cur][idx]
				}
			}
			if best != -1 {
				m.nextZ[cur*nz+tgt], m.nextQ[cur*nz+tgt] = int32(best), int32(bq)
			}
		}
	}
	// Boundary walk step per ancilla: terminal flip (bStepZ = -1) or one
	// hop toward the nearest boundary, mirroring boundaryFlip's branches.
	m.bStepZ = make([]int32, nz)
	m.bStepQ = make([]int32, nz)
	for cur := 0; cur < nz; cur++ {
		if q := m.boundaryQubit[cur]; q != -1 && m.boundaryDist[cur] <= 1 {
			m.bStepQ[cur], m.bStepZ[cur] = int32(q), -1
			continue
		}
		best, bq, bd := -1, -1, m.boundaryDist[cur]
		for idx, nb := range m.adj[cur] {
			if dd := m.boundaryDist[nb]; dd < bd {
				bd, best, bq = dd, nb, m.adjQ[cur][idx]
			}
		}
		if best == -1 {
			// No strictly closer neighbour: flip own boundary qubit if any.
			m.bStepQ[cur], m.bStepZ[cur] = int32(m.boundaryQubit[cur]), -1
			continue
		}
		m.bStepQ[cur], m.bStepZ[cur] = int32(bq), int32(best)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// dist is the decoding metric between two Z-ancillas: Chebyshev distance on
// the ancilla sub-lattice (diagonal steps are single shared-qubit hops),
// served from the precomputed table.
func (m *matcher) dist(z1, z2 int) int {
	return int(m.distT[z1*len(m.zAncillas)+z2])
}

// distFromCoords computes dist from ancilla coordinates (table build only).
func (m *matcher) distFromCoords(z1, z2 int) int {
	a1, a2 := m.p.Ancillas[m.zAncillas[z1]], m.p.Ancillas[m.zAncillas[z2]]
	dr := abs(a1.R2-a2.R2) / 2
	dc := abs(a1.C2-a2.C2) / 2
	return max(dr, dc)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// pathFlip flips the data qubits on a shortest ancilla-graph path z1→z2,
// walking the precomputed next-hop table.
func (m *matcher) pathFlip(err []bool, z1, z2 int) {
	nz := len(m.zAncillas)
	for cur := z1; cur != z2; {
		q := m.nextQ[cur*nz+z2]
		if q < 0 {
			return // disconnected (cannot happen on a valid patch)
		}
		err[q] = !err[q]
		cur = int(m.nextZ[cur*nz+z2])
	}
}

// boundaryFlip flips data qubits from ancilla z to the nearest X boundary,
// walking the precomputed boundary-step table.
func (m *matcher) boundaryFlip(err []bool, z int) {
	for cur := z; ; {
		q, nxt := m.bStepQ[cur], m.bStepZ[cur]
		if q >= 0 {
			err[q] = !err[q]
		}
		if nxt < 0 {
			return
		}
		cur = int(nxt)
	}
}

// decode matches the flipped syndromes (against each other or the boundary)
// minimising the TOTAL correction weight — exact min-weight matching via
// bitmask DP for up to 16 flipped syndromes (ample below threshold), greedy
// beyond — and applies the corrections in place.
func (m *matcher) decode(err []bool, syndrome []bool) {
	m.decodeWith(m.newScratch(), err, syndrome)
}

// decodeWith is decode against reusable per-shard scratch. The 1- and
// 2-syndrome cases — the bulk of shots below threshold — replay the DP's
// decision directly: one flipped syndrome always matches the boundary, and
// a pair matches internally only when strictly cheaper than two boundary
// paths (the DP evaluates the boundary move first, so ties keep it).
func (m *matcher) decodeWith(sc *decodeScratch, err []bool, syndrome []bool) {
	flipped := sc.flipped[:0]
	for z, s := range syndrome {
		if s {
			flipped = append(flipped, z)
		}
	}
	sc.flipped = flipped
	switch n := len(flipped); {
	case n == 0:
	case n == 1:
		m.boundaryFlip(err, flipped[0])
	case n == 2:
		if m.dist(flipped[0], flipped[1]) < m.boundaryDist[flipped[0]]+m.boundaryDist[flipped[1]] {
			m.pathFlip(err, flipped[0], flipped[1])
		} else {
			m.boundaryFlip(err, flipped[0])
			m.boundaryFlip(err, flipped[1])
		}
	case n <= 16:
		m.decodeExactWith(sc, err, flipped)
	default:
		m.decodeGreedyWith(sc, err, flipped)
	}
}

func (m *matcher) decodeExact(err []bool, flipped []int) {
	m.decodeExactWith(m.newScratch(), err, flipped)
}

func (m *matcher) decodeExactWith(sc *decodeScratch, err []bool, flipped []int) {
	n := len(flipped)
	const inf = 1 << 29
	full := 1 << n
	if cap(sc.cost) < full {
		sc.cost = make([]int32, full)
		sc.choice = make([]int32, full) // encoded move: i*64+j (j==63 → boundary)
	}
	cost := sc.cost[:full]
	choice := sc.choice[:full]
	cost[0] = 0
	for s := 1; s < full; s++ {
		cost[s] = inf
	}
	for s := 1; s < full; s++ {
		// lowest set bit
		i := 0
		for ; s&(1<<i) == 0; i++ {
		}
		rest := s &^ (1 << i)
		// boundary
		if c := int32(m.boundaryDist[flipped[i]]) + cost[rest]; c < cost[s] {
			cost[s] = c
			choice[s] = int32(i*64 + 63)
		}
		for j := i + 1; j < n; j++ {
			if s&(1<<j) == 0 {
				continue
			}
			r2 := rest &^ (1 << j)
			if c := int32(m.dist(flipped[i], flipped[j])) + cost[r2]; c < cost[s] {
				cost[s] = c
				choice[s] = int32(i*64 + j)
			}
		}
	}
	// Reconstruct.
	for s := full - 1; s > 0; {
		ch := choice[s]
		i, j := int(ch/64), int(ch%64)
		if j == 63 {
			m.boundaryFlip(err, flipped[i])
			s &^= 1 << i
		} else {
			m.pathFlip(err, flipped[i], flipped[j])
			s &^= (1 << i) | (1 << j)
		}
	}
}

func (m *matcher) decodeGreedy(err []bool, flipped []int) {
	m.decodeGreedyWith(m.newScratch(), err, flipped)
}

func (m *matcher) decodeGreedyWith(sc *decodeScratch, err []bool, flipped []int) {
	used := sc.used
	for _, z := range flipped {
		used[z] = false
	}
	for {
		bestCost := 1 << 30
		bi, bj := -1, -1 // bj == -2 means boundary
		for x := 0; x < len(flipped); x++ {
			if used[flipped[x]] {
				continue
			}
			for y := x + 1; y < len(flipped); y++ {
				if used[flipped[y]] {
					continue
				}
				if c := m.dist(flipped[x], flipped[y]); c < bestCost {
					bestCost, bi, bj = c, flipped[x], flipped[y]
				}
			}
			if c := m.boundaryDist[flipped[x]]; c < bestCost {
				bestCost, bi, bj = c, flipped[x], -2
			}
		}
		if bi == -1 {
			return
		}
		used[bi] = true
		if bj == -2 {
			m.boundaryFlip(err, bi)
		} else {
			used[bj] = true
			m.pathFlip(err, bi, bj)
		}
	}
}

// syndrome computes the Z-stabilizer syndrome of an X-error pattern.
func (m *matcher) syndrome(err []bool) []bool {
	return m.syndromeInto(make([]bool, len(m.zAncillas)), err)
}

// syndromeInto computes the syndrome into s (len(zAncillas)) and returns it.
func (m *matcher) syndromeInto(s []bool, err []bool) []bool {
	for i := range s {
		s[i] = false
	}
	for q, e := range err {
		if !e {
			continue
		}
		for _, z := range m.dataToZ[q] {
			s[z] = !s[z]
		}
	}
	return s
}

// logicalFlip reports whether the residual X pattern flips the logical
// qubit: odd parity over the Z-logical support (data row 0).
func (m *matcher) logicalFlip(err []bool) bool {
	parity := false
	for c := 0; c < m.p.D; c++ {
		if err[c] { // row 0: qubits 0..d-1
			parity = !parity
		}
	}
	return parity
}

// MonteCarloLogicalError estimates the code-capacity logical X error rate of
// a distance-d patch under i.i.d. X errors of probability p, using the
// greedy matching decoder. It validates the Projection's (p/p_th)^((d+1)/2)
// scaling; the paper's timing-dependent effects enter through ErrorParams.
func MonteCarloLogicalError(d int, p float64, shots int, seed int64) DecoderResult {
	res, err := MonteCarloLogicalErrorCtx(context.Background(), d, p, shots, seed, simrun.Options{})
	if err != nil {
		panic(err) // legacy boundary: preserves the seed API's panic contract
	}
	return res
}

// checkMCParams validates the shared MC arguments.
func checkMCParams(d int, probs ...float64) error {
	if d < 3 || d%2 == 0 {
		return simerr.Invalidf("surface: distance must be odd and >= 3, got %d", d)
	}
	for _, p := range probs {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return simerr.Invalidf("surface: error probability %v outside [0,1]", p)
		}
	}
	return nil
}

// MonteCarloLogicalErrorCtx is the context-aware MonteCarloLogicalError,
// executed on the sharded parallel engine: the shot budget is partitioned
// into fixed-size shards with independent deterministic RNG streams
// (simrun.ShardSeed), run on opt.Workers goroutines (default GOMAXPROCS),
// and merged in shard order — the estimate is bit-identical for every
// worker count. Cancellation or deadline expiry keeps the completed shard
// prefix as a partial, Truncated-flagged estimate; opt can also enable the
// cross-shard standard-error convergence guard.
func MonteCarloLogicalErrorCtx(ctx context.Context, d int, p float64, shots int, seed int64, opt simrun.Options) (DecoderResult, error) {
	if err := checkMCParams(d, p); err != nil {
		return DecoderResult{}, err
	}
	patch := NewPatch(d)
	m := newMatcher(patch) // read-only after construction: shared across shards
	nd := patch.DataQubits()
	failures, status, gerr := simrun.RunSharded(ctx, shots, seed, opt,
		func(t *simrun.ShardTask) (int, int, error) {
			// All per-shot state (error buffer, syndrome, decoder tables)
			// is hoisted here: the shot loop itself allocates nothing.
			errBuf := make([]bool, nd)
			sc := m.newScratch()
			f := 0
			for i := 0; t.Continue(i); i++ {
				anyErr := false
				for q := 0; q < nd; q++ {
					errBuf[q] = t.RNG.Float64() < p
					anyErr = anyErr || errBuf[q]
				}
				if !anyErr {
					continue
				}
				m.syndromeInto(sc.syn, errBuf)
				m.decodeWith(sc, errBuf, sc.syn)
				// After correction the syndrome must be clear; any remaining
				// flip is logical.
				if m.logicalFlip(errBuf) {
					f++
				}
			}
			return f, f, nil
		},
		func(dst *int, src int) { *dst += src })
	if gerr != nil {
		return DecoderResult{}, gerr
	}
	return DecoderResult{Shots: status.Completed, Failures: failures, Status: status}, nil
}

// ThresholdResult is the outcome of a threshold bisection: when Truncated is
// set, Estimate is the best-so-far bracket midpoint after Iterations
// completed bisection steps.
type ThresholdResult struct {
	Estimate   float64       `json:"estimate"`
	Iterations int           `json:"iterations"`
	Status     simrun.Status `json:"status"`
}

// ThresholdEstimate locates the crossing point of the d and d+2 logical
// error curves by bisection over p — a coarse decoder-threshold probe.
func ThresholdEstimate(d int, shots int, seed int64) float64 {
	res, err := ThresholdEstimateCtx(context.Background(), d, shots, seed, simrun.Options{})
	if err != nil {
		panic(err)
	}
	return res.Estimate
}

// ThresholdEstimateCtx is the context-aware ThresholdEstimate. Each
// bisection step runs two guarded MC estimates; on cancellation the current
// bracket midpoint is returned as a Truncated best-so-far estimate.
func ThresholdEstimateCtx(ctx context.Context, d int, shots int, seed int64, opt simrun.Options) (ThresholdResult, error) {
	if err := checkMCParams(d); err != nil {
		return ThresholdResult{}, err
	}
	lo, hi := 0.005, 0.2
	const iters = 12
	for i := 0; i < iters; i++ {
		mid := math.Sqrt(lo * hi)
		small, err := MonteCarloLogicalErrorCtx(ctx, d, mid, shots, seed, opt)
		if err != nil {
			return ThresholdResult{}, err
		}
		if small.Status.Truncated {
			return ThresholdResult{Estimate: math.Sqrt(lo * hi), Iterations: i, Status: small.Status}, nil
		}
		large, err := MonteCarloLogicalErrorCtx(ctx, d+2, mid, shots, seed+1, opt)
		if err != nil {
			return ThresholdResult{}, err
		}
		if large.Status.Truncated {
			return ThresholdResult{Estimate: math.Sqrt(lo * hi), Iterations: i, Status: large.Status}, nil
		}
		if large.Rate() < small.Rate() {
			lo = mid // below threshold: bigger code wins
		} else {
			hi = mid
		}
	}
	return ThresholdResult{
		Estimate:   math.Sqrt(lo * hi),
		Iterations: iters,
		Status:     simrun.Status{Requested: iters, Completed: iters, StopReason: simrun.StopCompleted},
	}, nil
}
