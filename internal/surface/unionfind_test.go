package surface

import "testing"

func TestUnionFindCorrectsSingleErrors(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		patch := NewPatch(d)
		m := newMatcher(patch)
		for q := 0; q < patch.DataQubits(); q++ {
			err := make([]bool, patch.DataQubits())
			err[q] = true
			m.decodeUnionFind(err, m.syndrome(err))
			if m.logicalFlip(err) {
				t.Fatalf("d=%d: union-find failed on single error at %d", d, q)
			}
		}
	}
}

func TestUnionFindSubThreshold(t *testing.T) {
	p3 := MonteCarloUnionFind(3, 0.01, 30000, 1).Rate()
	p5 := MonteCarloUnionFind(5, 0.01, 30000, 2).Rate()
	if p5 >= p3 {
		t.Fatalf("union-find: d=5 (%.4g) should beat d=3 (%.4g) below threshold", p5, p3)
	}
}

func TestUnionFindVsMatchingAccuracy(t *testing.T) {
	// Union-find trades accuracy for near-linear decode time: it must stay
	// within an order of magnitude of matching, and never meaningfully beat
	// it (that would signal a matching bug).
	for _, d := range []int{3, 5} {
		mw := MonteCarloLogicalError(d, 0.02, 40000, 3).Rate()
		uf := MonteCarloUnionFind(d, 0.02, 40000, 3).Rate()
		if uf > 12*mw+1e-4 {
			t.Fatalf("d=%d: union-find %.4g too far above matching %.4g", d, uf, mw)
		}
		if mw > 1.5*uf+1e-4 {
			t.Fatalf("d=%d: matching %.4g worse than union-find %.4g", d, mw, uf)
		}
	}
}

func TestUnionFindDataStructure(t *testing.T) {
	u := newUnionFind(8)
	u.union(0, 1)
	u.union(2, 3)
	u.union(1, 3)
	if u.find(0) != u.find(2) {
		t.Fatal("transitive union broken")
	}
	if u.find(4) == u.find(0) {
		t.Fatal("separate sets merged spuriously")
	}
}
