// The simrun bridge: a Saver turns engine commit callbacks into durable
// snapshots, and Resume turns a snapshot back into the engine's ResumeState.
package checkpoint

import (
	"encoding/json"
	"sync"
	"time"

	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

// now is stubbed in tests that pin SavedAt.
var now = time.Now

// Saver persists engine commits as snapshots at Path. Wire its Hook into
// simrun.Options.Checkpoint:
//
//	sv := &checkpoint.Saver{Path: path, Meta: meta, Every: 4}
//	opt.Checkpoint = sv.Hook()
//	... run ...
//	if err := sv.Err(); err != nil { /* durability degraded, run still valid */ }
//
// Every commit callback serializes the accumulator synchronously (the
// engine's contract: State must not be retained); only every Every-th commit
// actually hits the disk, except the Final flush, which is always written —
// that is what makes SIGINT-then-resume lossless.
//
// Write failures are recorded, not raised: a full disk degrades durability
// (the run continues and stays correct), it does not kill the run. Callers
// check Err after the run and surface it as a warning.
type Saver struct {
	// Path is the snapshot destination (see PathFor).
	Path string
	// Meta is the run identity stamped into every snapshot.
	Meta Meta
	// Every throttles mid-run writes to every N-th commit (<= 1 = every
	// commit). The Final flush ignores the throttle.
	Every int

	mu      sync.Mutex
	commits int
	saves   int
	err     error
}

// Hook returns the simrun.Options.Checkpoint callback.
func (sv *Saver) Hook() func(simrun.CheckpointState) {
	return func(st simrun.CheckpointState) {
		sv.mu.Lock()
		defer sv.mu.Unlock()
		sv.commits++
		every := sv.Every
		if every < 1 {
			every = 1
		}
		if !st.Final && sv.commits%every != 0 {
			return
		}
		snap, err := SnapshotOf(sv.Meta, st)
		if err != nil {
			if sv.err == nil {
				sv.err = err
			}
			return
		}
		if err := Save(sv.Path, snap); err != nil {
			if sv.err == nil {
				sv.err = err
			}
			return
		}
		sv.saves++
	}
}

// Saves returns how many snapshots reached the disk.
func (sv *Saver) Saves() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.saves
}

// Err returns the first write/serialization failure ("" durability
// degraded); the run result itself is unaffected.
func (sv *Saver) Err() error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.err
}

// SnapshotOf converts one engine commit into a Snapshot (exported for
// callers that persist through their own channel).
func SnapshotOf(m Meta, st simrun.CheckpointState) (Snapshot, error) {
	state, err := json.Marshal(st.State)
	if err != nil {
		return Snapshot{}, simerr.Invalidf("checkpoint: accumulator %T does not serialize: %v", st.State, err)
	}
	m.Budget = st.Requested
	return Snapshot{
		Version:    Version,
		Meta:       m,
		Shards:     st.Shards,
		Shots:      st.Shots,
		Events:     st.Events,
		NoConverge: st.NoConverge,
		Final:      st.Final,
		State:      state,
		SavedAt:    now(),
	}, nil
}

// Resume converts a snapshot into the engine's ResumeState after verifying
// it belongs to the run identified by meta. Mismatches are typed errors —
// resuming against the wrong run is refused, never silently replayed.
func Resume(s Snapshot, meta Meta) (*simrun.ResumeState, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.Match(meta); err != nil {
		return nil, err
	}
	return &simrun.ResumeState{
		Shards:     s.Shards,
		Shots:      s.Shots,
		Events:     s.Events,
		NoConverge: s.NoConverge,
		StateJSON:  []byte(s.State),
	}, nil
}

// Attach wires crash-safe checkpointing into an engine Options in one call:
// it derives the snapshot path from meta.Key under dir, optionally loads an
// existing snapshot into opt.Resume (resume == true), and installs a Saver
// hook as opt.Checkpoint. The returned Snapshot pointer is non-nil only when
// a resume snapshot was actually loaded. A corrupted or mismatched snapshot
// is a typed error; a missing one starts cold.
func Attach(opt *simrun.Options, dir string, resume bool, every int, meta Meta) (*Saver, *Snapshot, error) {
	path := PathFor(dir, meta.Key)
	var loaded *Snapshot
	if resume {
		rs, snap, err := LoadResume(path, meta)
		if err != nil {
			return nil, nil, err
		}
		if rs != nil {
			opt.Resume = rs
			loaded = &snap
		}
	}
	sv := &Saver{Path: path, Meta: meta, Every: every}
	opt.Checkpoint = sv.Hook()
	return sv, loaded, nil
}

// LoadResume loads the snapshot at path and converts it for the run
// identified by meta. A missing file returns (nil, zero, nil): start cold.
// A present-but-corrupted or mismatched file is a typed error: the caller
// must not guess.
func LoadResume(path string, meta Meta) (*simrun.ResumeState, Snapshot, error) {
	s, err := Load(path)
	if err != nil {
		if IsNotExist(err) {
			return nil, Snapshot{}, nil
		}
		return nil, Snapshot{}, err
	}
	rs, err := Resume(s, meta)
	if err != nil {
		return nil, Snapshot{}, err
	}
	return rs, s, nil
}
