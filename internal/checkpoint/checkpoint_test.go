package checkpoint

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qisim/internal/simerr"
	"qisim/internal/simrun"
)

func testMeta() Meta {
	return Meta{
		Kind: "surface.mc", Key: strings.Repeat("ab", 32),
		Seed: 11, ShardSize: 64, Budget: 1000,
	}
}

func testSnapshot() Snapshot {
	return Snapshot{
		Version: Version, Meta: testMeta(),
		Shards: 5, Shots: 320, Events: 17,
		State: []byte("42"), SavedAt: time.Unix(1700000000, 0).UTC(),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSnapshot()
	b, err := Encode(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Meta != s.Meta || got.Shards != s.Shards || got.Shots != s.Shots ||
		got.Events != s.Events || string(got.State) != string(s.State) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, s)
	}
}

// TestDecodeRejectsEveryTruncation slices the valid encoding at every length
// and demands a typed error — a torn file (partial write) must never decode.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	b, err := Encode(testSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Fatalf("truncation at %d/%d bytes: want typed ErrInvalidConfig, got %v", n, len(b), err)
		}
	}
}

// TestDecodeRejectsEveryBitFlip flips one bit in every byte of the valid
// encoding: each mutation must either fail typed or (never) silently decode
// to different content.
func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	orig := testSnapshot()
	b, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		mut := make([]byte, len(b))
		copy(mut, b)
		mut[i] ^= 0x40
		got, err := Decode(mut)
		if err == nil {
			// A flip inside a JSON string value can keep CRC-guarded content
			// valid only if the CRC also matches — impossible for a single
			// bit flip in payload. Header flips that decode must reproduce
			// the original exactly (cannot happen either).
			if got.Meta != orig.Meta || got.Shots != orig.Shots {
				t.Fatalf("bit flip at byte %d silently decoded to different content", i)
			}
			t.Fatalf("bit flip at byte %d decoded successfully", i)
		}
		if !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Fatalf("bit flip at byte %d: want typed error, got %v", i, err)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b, _ := Encode(testSnapshot())
	b = append(b, []byte("EXTRA")...)
	if _, err := Decode(b); !errors.Is(err, simerr.ErrInvalidConfig) {
		t.Fatalf("trailing garbage: want typed error, got %v", err)
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	s := testSnapshot()
	s.Version = Version + 1
	if _, err := Encode(s); !errors.Is(err, simerr.ErrInvalidConfig) {
		t.Fatalf("encode of future version: want typed error, got %v", err)
	}
	// Bad container magic.
	b, _ := Encode(testSnapshot())
	copy(b, "QISNAP99")
	if _, err := Decode(b); !errors.Is(err, simerr.ErrInvalidConfig) {
		t.Fatalf("unknown container version: want typed error, got %v", err)
	}
}

func TestValidateRejectsInconsistentSnapshots(t *testing.T) {
	mutations := []func(*Snapshot){
		func(s *Snapshot) { s.Meta.Kind = "" },
		func(s *Snapshot) { s.Meta.Key = "" },
		func(s *Snapshot) { s.Meta.ShardSize = 0 },
		func(s *Snapshot) { s.Meta.Budget = -1 },
		func(s *Snapshot) { s.Shots = s.Meta.Budget + 1 },
		func(s *Snapshot) { s.Events = s.Shots + 1 },
		func(s *Snapshot) { s.Shards = -1 },
		func(s *Snapshot) { s.State = nil },
	}
	for i, mut := range mutations {
		s := testSnapshot()
		mut(&s)
		if err := s.Validate(); !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Errorf("mutation %d: want typed error, got %v", i, err)
		}
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := PathFor(dir, testMeta().Key)
	s := testSnapshot()
	if err := Save(path, s); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Overwrite with a later snapshot: rename must replace atomically.
	s2 := s
	s2.Shards, s2.Shots = 10, 640
	if err := Save(path, s2); err != nil {
		t.Fatalf("second save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Shards != 10 || got.Shots != 640 {
		t.Fatalf("load returned stale snapshot: %+v", got)
	}
	// No stray temp files survive a successful save.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("stray temp file left behind: %s", e.Name())
		}
	}
}

func TestLoadMissingIsNotExist(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.qisnap"))
	if err == nil || !IsNotExist(err) {
		t.Fatalf("want not-exist error, got %v", err)
	}
}

func TestLoadTornFileOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := PathFor(dir, "torn")
	b, _ := Encode(testSnapshot())
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, simerr.ErrInvalidConfig) {
		t.Fatalf("torn on-disk file: want typed error, got %v", err)
	}
}

func TestMatchMismatch(t *testing.T) {
	s := testSnapshot()
	cases := []Meta{}
	for i := 0; i < 6; i++ {
		m := testMeta()
		switch i {
		case 0:
			m.Kind = "pauli.mc"
		case 1:
			m.Key = strings.Repeat("cd", 32)
		case 2:
			m.Seed = 99
		case 3:
			m.ShardSize = 128
		case 4:
			m.Budget = 2000
		case 5:
			m.TargetRelStdErr = 0.05
		}
		cases = append(cases, m)
	}
	for i, m := range cases {
		if err := s.Match(m); !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Errorf("mismatch case %d: want typed error, got %v", i, err)
		}
	}
	if err := s.Match(testMeta()); err != nil {
		t.Errorf("identical meta rejected: %v", err)
	}
}

// TestSaverResumeEndToEnd drives a real sharded run through a Saver, kills
// it mid-run, resumes via LoadResume and checks bit-identity with a cold
// run.
func TestSaverResumeEndToEnd(t *testing.T) {
	const shots, seed = 1000, 5
	meta := Meta{Kind: "test.mc", Key: "k1", Seed: seed, ShardSize: 64, Budget: shots}
	body := func(tk *simrun.ShardTask) (int, int, error) {
		n := 0
		for i := 0; tk.Continue(i); i++ {
			if tk.RNG.Float64() < 0.3 {
				n++
			}
		}
		return n, n, nil
	}
	mergeInt := func(dst *int, src int) { *dst += src }

	cold, coldSt, err := simrun.RunSharded(context.Background(), shots, seed,
		simrun.Options{ShardSize: 64, Workers: 1}, body, mergeInt)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := PathFor(dir, meta.Key)
	sv := &Saver{Path: path, Meta: meta}
	ctx, cancel := context.WithCancel(context.Background())
	opt := simrun.Options{ShardSize: 64, Workers: 1, CheckEvery: 1, Checkpoint: sv.Hook(),
		Progress: func(done, _ int) {
			if done >= 320 {
				cancel()
			}
		}}
	_, killedSt, err := simrun.RunSharded(ctx, shots, seed, opt, body, mergeInt)
	if err != nil {
		t.Fatalf("killed run: %v", err)
	}
	if !killedSt.Truncated || sv.Err() != nil || sv.Saves() == 0 {
		t.Fatalf("killed run: status %+v, saver err %v, saves %d", killedSt, sv.Err(), sv.Saves())
	}

	rs, snap, err := LoadResume(path, meta)
	if err != nil || rs == nil {
		t.Fatalf("load resume: %v (rs %v)", err, rs)
	}
	if !snap.Final {
		t.Fatalf("final flush not recorded: %+v", snap)
	}
	for _, workers := range []int{1, 4, 7} {
		res, st, err := simrun.RunSharded(context.Background(), shots, seed,
			simrun.Options{ShardSize: 64, Workers: workers, Resume: rs}, body, mergeInt)
		if err != nil {
			t.Fatalf("resume (workers %d): %v", workers, err)
		}
		if res != cold || st != coldSt {
			t.Fatalf("resume (workers %d): got (%d, %+v), want (%d, %+v)", workers, res, st, cold, coldSt)
		}
	}

	// Resume against a different run identity must be refused.
	wrong := meta
	wrong.Seed = 999
	if _, _, err := LoadResume(path, wrong); !errors.Is(err, simerr.ErrInvalidConfig) {
		t.Fatalf("mismatched resume: want typed error, got %v", err)
	}
	// Missing file: cold start, no error.
	rs2, _, err := LoadResume(PathFor(dir, "other-key"), meta)
	if err != nil || rs2 != nil {
		t.Fatalf("missing checkpoint: want (nil, nil), got (%v, %v)", rs2, err)
	}
}

// TestSaverEveryThrottle checks the Every throttle writes fewer mid-run
// snapshots but always flushes the final state.
func TestSaverEveryThrottle(t *testing.T) {
	meta := Meta{Kind: "test.mc", Key: "k2", Seed: 3, ShardSize: 10, Budget: 200}
	body := func(tk *simrun.ShardTask) (int, int, error) { return tk.N, -1, nil }
	dir := t.TempDir()
	sv := &Saver{Path: PathFor(dir, meta.Key), Meta: meta, Every: 8}
	_, _, err := simrun.RunSharded(context.Background(), 200, 3,
		simrun.Options{ShardSize: 10, Workers: 1, Checkpoint: sv.Hook()},
		body, func(dst *int, src int) { *dst += src })
	if err != nil {
		t.Fatal(err)
	}
	// 20 commits / 8 = 2 throttled saves + 1 final flush.
	if sv.Saves() != 3 {
		t.Fatalf("saves = %d, want 3", sv.Saves())
	}
	snap, err := Load(sv.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Final || !snap.Complete() || snap.Shots != 200 {
		t.Fatalf("final snapshot wrong: %+v", snap)
	}
}
