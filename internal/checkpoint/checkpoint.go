// Package checkpoint is the durable snapshot layer behind crash-safe
// Monte-Carlo runs: it persists the committed shard prefix of a sharded run
// (internal/simrun) in a versioned, CRC-guarded, atomically-written file, so
// a process killed mid-run can resume bit-identically instead of losing
// hours of shots.
//
// File format (see DESIGN.md "Checkpoint format"):
//
//	offset 0  magic     "QISNAP" + 2-digit format version ("QISNAP01")
//	offset 8  length    uint32 big-endian payload byte count
//	offset 12 crc       uint32 big-endian CRC-32C (Castagnoli) of the payload
//	offset 16 payload   canonical JSON Snapshot
//
// Decode rejects — with typed simerr errors, never a panic or a silent
// replay — every corruption the crash-consistency model can produce: a torn
// header, a payload shorter or longer than declared (partial write, append
// by a stray process), a CRC mismatch (bit rot), an undecodable payload, an
// unknown version, and a snapshot whose fields are internally inconsistent.
//
// Writes are atomic: the snapshot is written to a temp file in the target
// directory, fsynced, and renamed over the destination, so a crash mid-save
// leaves either the previous complete snapshot or a stray temp file — never
// a half-written checkpoint under the real name. Combined with Decode's
// guards, a reader observes only complete, self-consistent snapshots.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"qisim/internal/simerr"
)

// Version is the snapshot payload version. Bump it when Snapshot's layout
// changes incompatibly; Decode rejects unknown versions.
const Version = 1

// magic identifies a QIsim checkpoint file; the trailing two digits are the
// container-format version (header layout), distinct from the payload
// Version carried inside.
const magic = "QISNAP01"

// headerLen is the fixed byte count before the payload.
const headerLen = len(magic) + 4 + 4 // magic + length + crc

// castagnoli is the CRC-32C table (the polynomial storage systems use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Meta identifies WHICH run a snapshot belongs to. Every field participates
// in Match: resuming a snapshot against a run with any differing field is a
// typed error, because the shard RNG streams, the shard geometry, or the
// convergence decisions would diverge and the resumed result would silently
// differ from a cold run.
type Meta struct {
	// Kind names the run family (e.g. "surface.mc", mirroring jobs.Kind).
	Kind string `json:"kind"`
	// Key is the normalized request key (rescache-style content address or
	// any caller-chosen canonical identity of the full parameter set).
	Key string `json:"key"`
	// Seed is the top-level RNG seed the shard streams derive from.
	Seed int64 `json:"seed"`
	// ShardSize fixes the shard geometry and therefore the RNG stream
	// layout.
	ShardSize int `json:"shard_size"`
	// Budget is the effective shot budget (after MaxShots capping).
	Budget int `json:"budget"`
	// MinShots / TargetRelStdErr fix the convergence decisions; resuming
	// under different guard settings could stop at a different prefix.
	MinShots        int     `json:"min_shots,omitempty"`
	TargetRelStdErr float64 `json:"target_rel_std_err,omitempty"`
}

// Snapshot is one durable checkpoint: the run identity plus the committed
// contiguous shard prefix and its accumulator.
type Snapshot struct {
	// Version is the payload version (see Version).
	Version int `json:"version"`
	// Meta identifies the run this snapshot belongs to.
	Meta Meta `json:"meta"`
	// Shards is the committed contiguous shard-prefix length.
	Shards int `json:"shards"`
	// Shots is the shot count the prefix covers.
	Shots int `json:"shots"`
	// Events is the committed binomial event count (convergence guard).
	Events int `json:"events"`
	// NoConverge records the tally's "no binomial statistic" latch.
	NoConverge bool `json:"no_converge,omitempty"`
	// Final marks the flush written when the run stopped (as opposed to a
	// mid-run commit checkpoint).
	Final bool `json:"final,omitempty"`
	// State is the serialized accumulator of the committed prefix (the
	// engine's merged R value, marshaled with encoding/json).
	State json.RawMessage `json:"state,omitempty"`
	// SavedAt records when the snapshot was written (metadata only — it
	// does not participate in resume decisions).
	SavedAt time.Time `json:"saved_at"`
}

// Complete reports whether the snapshot covers its full budget — a resumed
// run would not spend a single additional shot.
func (s Snapshot) Complete() bool { return s.Shots >= s.Meta.Budget }

// Validate checks the snapshot's internal consistency (shape only — Match
// checks identity against a concrete run).
func (s Snapshot) Validate() error {
	switch {
	case s.Version != Version:
		return simerr.Invalidf("checkpoint: unsupported snapshot version %d (want %d)", s.Version, Version)
	case s.Meta.Kind == "":
		return simerr.Invalidf("checkpoint: snapshot has no run kind")
	case s.Meta.Key == "":
		return simerr.Invalidf("checkpoint: snapshot has no request key")
	case s.Meta.ShardSize <= 0:
		return simerr.Invalidf("checkpoint: non-positive shard size %d", s.Meta.ShardSize)
	case s.Meta.Budget <= 0:
		return simerr.Invalidf("checkpoint: non-positive budget %d", s.Meta.Budget)
	case s.Shards < 0 || s.Shots < 0 || s.Events < 0:
		return simerr.Invalidf("checkpoint: negative progress (shards %d, shots %d, events %d)",
			s.Shards, s.Shots, s.Events)
	case s.Shots > s.Meta.Budget:
		return simerr.Invalidf("checkpoint: committed shots %d exceed budget %d", s.Shots, s.Meta.Budget)
	case s.Events > s.Shots:
		return simerr.Invalidf("checkpoint: committed events %d exceed shots %d", s.Events, s.Shots)
	case s.Shards > 0 && len(s.State) == 0:
		return simerr.Invalidf("checkpoint: %d committed shards but no accumulator state", s.Shards)
	}
	return nil
}

// Match verifies that the snapshot belongs to the run identified by m. A
// mismatch on any field is a typed configuration error: resuming would
// double-count shards of a different run or change the RNG stream layout.
func (s Snapshot) Match(m Meta) error {
	if s.Meta == m {
		return nil
	}
	return simerr.Invalidf(
		"checkpoint: snapshot does not match this run (snapshot %s key=%.16s… seed=%d shard=%d budget=%d rel-se=%g min-shots=%d; run %s key=%.16s… seed=%d shard=%d budget=%d rel-se=%g min-shots=%d)",
		s.Meta.Kind, s.Meta.Key, s.Meta.Seed, s.Meta.ShardSize, s.Meta.Budget, s.Meta.TargetRelStdErr, s.Meta.MinShots,
		m.Kind, m.Key, m.Seed, m.ShardSize, m.Budget, m.TargetRelStdErr, m.MinShots)
}

// EncodeContainer frames an arbitrary payload in the QISNAP01 container
// (magic + big-endian length + CRC-32C + payload). The snapshot layer
// builds on it, and the distributed layer (internal/dist) reuses it as the
// shard-result wire format so unit uploads get the same torn-write and
// bit-rot detection as on-disk checkpoints.
func EncodeContainer(payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	copy(buf, magic)
	binary.BigEndian.PutUint32(buf[len(magic):], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[len(magic)+4:], crc32.Checksum(payload, castagnoli))
	copy(buf[headerLen:], payload)
	return buf
}

// DecodeContainer verifies a QISNAP01 container and returns its payload.
// Every failure mode — torn header, truncated or over-long payload, CRC
// mismatch — comes back as a typed ErrInvalidConfig-classed error; a
// corrupted payload is never partially returned.
func DecodeContainer(b []byte) ([]byte, error) {
	if len(b) < headerLen {
		return nil, simerr.Invalidf("checkpoint: torn file: %d bytes is shorter than the %d-byte header",
			len(b), headerLen)
	}
	if string(b[:len(magic)]) != magic {
		return nil, simerr.Invalidf("checkpoint: bad magic %q (not a QIsim checkpoint, or an unsupported container version)",
			string(b[:len(magic)]))
	}
	declared := binary.BigEndian.Uint32(b[len(magic):])
	body := b[headerLen:]
	if uint32(len(body)) < declared {
		return nil, simerr.Invalidf("checkpoint: torn file: payload is %d bytes, header declares %d",
			len(body), declared)
	}
	if uint32(len(body)) > declared {
		return nil, simerr.Invalidf("checkpoint: %d trailing bytes after the declared %d-byte payload",
			uint32(len(body))-declared, declared)
	}
	wantCRC := binary.BigEndian.Uint32(b[len(magic)+4:])
	if got := crc32.Checksum(body, castagnoli); got != wantCRC {
		return nil, simerr.Invalidf("checkpoint: CRC mismatch (stored %08x, computed %08x): file is corrupted",
			wantCRC, got)
	}
	return body, nil
}

// Encode serializes a snapshot into the CRC-guarded container format.
func Encode(s Snapshot) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, simerr.Invalidf("checkpoint: marshal snapshot: %v", err)
	}
	return EncodeContainer(payload), nil
}

// Decode parses and verifies a container produced by Encode. Every failure
// mode — torn header, truncated or over-long payload, CRC mismatch,
// undecodable or inconsistent payload — comes back as a typed
// ErrInvalidConfig-classed error; a corrupted snapshot is never partially
// returned.
func Decode(b []byte) (Snapshot, error) {
	body, err := DecodeContainer(b)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, simerr.Invalidf("checkpoint: undecodable payload: %v", err)
	}
	if err := s.Validate(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// Save atomically writes the snapshot to path: temp file in the same
// directory, fsync, rename, directory fsync (best effort). A crash at any
// point leaves either the previous snapshot or a stray temp file — never a
// torn file under path.
func Save(path string, s Snapshot) error {
	buf, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: create directory: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write temp file: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync temp file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close temp file: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	// Persist the rename itself (best effort — not all filesystems support
	// directory fsync).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and verifies the snapshot at path. A missing file satisfies
// errors.Is(err, fs.ErrNotExist) so callers can distinguish "no checkpoint
// yet" (start cold) from corruption (refuse).
func Load(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Snapshot{}, fmt.Errorf("checkpoint: %w", err)
		}
		return Snapshot{}, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	s, err := Decode(b)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%w (file %s)", err, path)
	}
	return s, nil
}

// IsNotExist reports whether a Load failure means "no checkpoint file".
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// PathFor returns the canonical snapshot location for a request key inside
// a checkpoint directory.
func PathFor(dir, key string) string { return filepath.Join(dir, key+".qisnap") }
