package checkpoint

import (
	"errors"
	"testing"

	"qisim/internal/simerr"
)

// FuzzCheckpointDecode hammers Decode with arbitrary byte soup plus a seed
// corpus of realistic corruptions (torn prefixes, bit flips, trailing
// garbage, header-only files). The invariants under fuzz:
//
//  1. Decode never panics;
//  2. a failure is always a typed simerr.ErrInvalidConfig (no untyped
//     corruption escapes);
//  3. a success re-encodes to the byte-identical input (Decode∘Encode is the
//     identity on valid containers), so Decode cannot "repair" a file into
//     something that was never written.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := Encode(testSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	// Seed corpus: the valid container and its characteristic corruptions.
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))                  // header-only torn file
	f.Add(valid[:headerLen])              // payload fully torn off
	f.Add(valid[:len(valid)/2])           // torn mid-payload
	f.Add(valid[:len(valid)-1])           // torn by one byte
	f.Add(append([]byte{}, valid[1:]...)) // first byte torn off
	f.Add(append(append([]byte{}, valid...), 'X'))
	bitflip := append([]byte{}, valid...)
	bitflip[headerLen+2] ^= 0x01 // payload flip → CRC mismatch
	f.Add(bitflip)
	crcflip := append([]byte{}, valid...)
	crcflip[len(magic)+4] ^= 0x80 // stored-CRC flip
	f.Add(crcflip)
	lenflip := append([]byte{}, valid...)
	lenflip[len(magic)+3] ^= 0x02 // declared-length flip
	f.Add(lenflip)
	f.Add([]byte("QISNAP01 this is not a checkpoint"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, simerr.ErrInvalidConfig) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("decode accepted an invalid snapshot: %v", verr)
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not the identity:\n in  %q\n out %q", data, re)
		}
	})
}
