package simerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestExitCodePerClass(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("plain"), ExitFailure},
		{Interruptedf("stopped"), ExitInterrupted},
		{Invalidf("bad knob"), ExitInvalid},
		{Numericalf("NaN"), ExitNumerical},
		{Budgetf("too few shots"), ExitBudget},
		{Unsupportedf("qasm v3"), ExitUnsupported},
		// Wrapping must not change the class.
		{fmt.Errorf("outer: %w", Numericalf("inner")), ExitNumerical},
		{fmt.Errorf("outer: %w", fmt.Errorf("mid: %w", ErrInterrupted)), ExitInterrupted},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestClassNames(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{errors.New("plain"), "error"},
		{fmt.Errorf("ctx: %w", ErrInvalidConfig), "invalid-config"},
		{fmt.Errorf("ctx: %w", ErrNumerical), "numerical"},
		{fmt.Errorf("ctx: %w", ErrBudgetInfeasible), "budget-infeasible"},
		{fmt.Errorf("ctx: %w", ErrUnsupportedQASM), "unsupported-qasm"},
		{fmt.Errorf("ctx: %w", ErrInterrupted), "interrupted"},
	}
	for _, c := range cases {
		if got := Class(c.err); got != c.want {
			t.Errorf("Class(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestConstructorsTagAndCarryMessage(t *testing.T) {
	err := Invalidf("distance must be odd, got %d", 4)
	if !errors.Is(err, ErrInvalidConfig) {
		t.Fatal("Invalidf did not tag ErrInvalidConfig")
	}
	if want := "distance must be odd, got 4: invalid configuration"; err.Error() != want {
		t.Fatalf("message = %q, want %q", err.Error(), want)
	}
	// Each constructor must tag exactly its own class.
	if errors.Is(err, ErrNumerical) || errors.Is(err, ErrInterrupted) {
		t.Fatal("Invalidf leaked into another class")
	}
}

func TestRecoverIntoConvertsPanic(t *testing.T) {
	f := func() (err error) {
		defer RecoverInto(&err, ErrNumerical)
		panic("matrix exploded")
	}
	err := f()
	if err == nil {
		t.Fatal("RecoverInto did not convert panic to error")
	}
	if !errors.Is(err, ErrNumerical) {
		t.Fatalf("recovered error %v is not ErrNumerical", err)
	}
}

func TestRecoverIntoDefaultsToInvalidConfig(t *testing.T) {
	f := func() (err error) {
		defer RecoverInto(&err, nil)
		panic("unclassified")
	}
	if err := f(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("nil-class recovery should default to ErrInvalidConfig, got %v", err)
	}
}

func TestRecoverIntoNoPanicIsNoop(t *testing.T) {
	f := func() (err error) {
		defer RecoverInto(&err, ErrNumerical)
		return nil
	}
	if err := f(); err != nil {
		t.Fatalf("RecoverInto injected error without panic: %v", err)
	}
}
