// Package simerr defines QIsim's error taxonomy: the small set of sentinel
// error classes every public simulation boundary maps its failures onto, the
// CLI exit-code contract derived from them, and helpers for converting
// library-internal panics into typed errors at those boundaries.
//
// The contract (documented in DESIGN.md "Error-handling contract"):
//
//   - ErrInvalidConfig — the caller asked for something the model cannot
//     represent (bad distance, non-positive shot count, malformed layout).
//   - ErrNumerical — a NaN/Inf was detected in a numerical kernel or its
//     output; the result would be silent garbage and is withheld.
//   - ErrBudgetInfeasible — a shot/time budget cannot satisfy the request
//     (e.g. the convergence floor exceeds the shot budget).
//   - ErrUnsupportedQASM — the OpenQASM source uses a construct outside the
//     supported subset, or is malformed.
//   - ErrInterrupted — a context deadline or cancellation stopped a run;
//     long-running entry points instead return a flagged partial result
//     (see internal/simrun), and CLIs convert that flag into this class.
//
// Hot-path kernels in internal/cmath keep panics for programmer errors
// (shape mismatches); everything reachable from user input must surface as
// one of the classes above.
package simerr

import (
	"errors"
	"fmt"
)

// Sentinel error classes. Match with errors.Is.
var (
	ErrInvalidConfig    = errors.New("invalid configuration")
	ErrNumerical        = errors.New("numerical instability")
	ErrBudgetInfeasible = errors.New("budget infeasible")
	ErrUnsupportedQASM  = errors.New("unsupported QASM")
	ErrInterrupted      = errors.New("interrupted")
)

// CLI exit codes, one per error class. Code 1 is reserved for untyped
// failures and 2 for usage errors (flag package convention).
const (
	ExitOK          = 0
	ExitFailure     = 1
	ExitUsage       = 2
	ExitInterrupted = 3
	ExitInvalid     = 4
	ExitNumerical   = 5
	ExitBudget      = 6
	ExitUnsupported = 7
)

// ExitCode maps an error to the CLI exit-code contract.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, ErrInterrupted):
		return ExitInterrupted
	case errors.Is(err, ErrInvalidConfig):
		return ExitInvalid
	case errors.Is(err, ErrNumerical):
		return ExitNumerical
	case errors.Is(err, ErrBudgetInfeasible):
		return ExitBudget
	case errors.Is(err, ErrUnsupportedQASM):
		return ExitUnsupported
	default:
		return ExitFailure
	}
}

// Class returns the short class name of a typed error ("" for untyped).
func Class(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrInterrupted):
		return "interrupted"
	case errors.Is(err, ErrInvalidConfig):
		return "invalid-config"
	case errors.Is(err, ErrNumerical):
		return "numerical"
	case errors.Is(err, ErrBudgetInfeasible):
		return "budget-infeasible"
	case errors.Is(err, ErrUnsupportedQASM):
		return "unsupported-qasm"
	default:
		return "error"
	}
}

// wrap attaches a class sentinel to a formatted message.
func wrap(class error, format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), class)
}

// Invalidf returns an ErrInvalidConfig-classed error.
func Invalidf(format string, args ...any) error {
	return wrap(ErrInvalidConfig, format, args...)
}

// Numericalf returns an ErrNumerical-classed error.
func Numericalf(format string, args ...any) error {
	return wrap(ErrNumerical, format, args...)
}

// Budgetf returns an ErrBudgetInfeasible-classed error.
func Budgetf(format string, args ...any) error {
	return wrap(ErrBudgetInfeasible, format, args...)
}

// Unsupportedf returns an ErrUnsupportedQASM-classed error.
func Unsupportedf(format string, args ...any) error {
	return wrap(ErrUnsupportedQASM, format, args...)
}

// Interruptedf returns an ErrInterrupted-classed error.
func Interruptedf(format string, args ...any) error {
	return wrap(ErrInterrupted, format, args...)
}

// RecoverInto converts a panic in the calling function into a typed error
// assigned to *errp, preserving any error the function already set. Use at
// public boundaries whose internals legitimately panic on programmer-error
// invariants:
//
//	func Boundary() (err error) {
//	    defer simerr.RecoverInto(&err, simerr.ErrInvalidConfig)
//	    ...
//	}
func RecoverInto(errp *error, class error) {
	r := recover()
	if r == nil {
		return
	}
	if class == nil {
		class = ErrInvalidConfig
	}
	if pe, ok := r.(error); ok {
		*errp = fmt.Errorf("recovered panic: %v: %w", pe, class)
		return
	}
	*errp = fmt.Errorf("recovered panic: %v: %w", r, class)
}
