// Package cyclesim is QIsim's cycle-accurate QCI simulator (Section 4.2): it
// executes compiled per-qubit FIFO instruction queues against a QCI resource
// model — drive-circuit groups with a limited number of simultaneous banks
// (#banks for CMOS FDM, #BS for SFQ, with broadcast merging), per-qubit
// pulse circuits, and grouped readout — using a remaining-time table to
// resolve true dependencies and structural hazards. It produces the
// gate-timing trace and per-unit activity factors the runtime-power and
// decoherence models consume.
package cyclesim

import (
	"fmt"
	"math"
	"sort"

	"qisim/internal/compile"
)

// Config describes the QCI resources.
type Config struct {
	// DriveGroupSize is the FDM degree: qubits [k·g, (k+1)·g) share drive
	// circuit k.
	DriveGroupSize int
	// DriveSlots is the number of simultaneous gates one drive circuit can
	// play (2 digital banks for Horse Ridge; #BS for the SFQ controller).
	DriveSlots int
	// MergeBroadcast allows identical gates (same name+param) within one
	// drive group to share a slot when they start together — the SFQ
	// bitstream broadcast (and the reason #BS=1 suffices for ESM, Opt-#5).
	MergeBroadcast bool
	// ReadoutGroupSize is the readout FDM degree (8): grouped qubits read
	// out through one TX/RX pair.
	ReadoutGroupSize int
	// ReadoutSlots is the number of simultaneous readouts per group (8 for
	// the frequency-multiplexed CMOS readout; 1 for serialised JPM sharing).
	ReadoutSlots int
}

// CMOSConfig returns the Horse Ridge baseline resources.
func CMOSConfig() Config {
	return Config{DriveGroupSize: 32, DriveSlots: 2, ReadoutGroupSize: 8, ReadoutSlots: 8}
}

// SFQConfig returns the SFQ controller resources with the given #BS.
func SFQConfig(bs int) Config {
	return Config{DriveGroupSize: 8, DriveSlots: bs, MergeBroadcast: true, ReadoutGroupSize: 8, ReadoutSlots: 8}
}

// TimedOp is one executed instruction with its schedule.
type TimedOp struct {
	compile.Instr
	Start, End float64
}

// Result is the simulation output.
type Result struct {
	Ops       []TimedOp
	TotalTime float64
	// BusyTime per unit class ("drive", "pulse", "readout") summed over ops.
	BusyTime map[string]float64
	// QubitBusy is per-qubit occupied time (for decoherence accounting).
	QubitBusy []float64
	// Units counts the hardware units of each class for the given qubit
	// count ("drive" circuits, "pulse" circuits, "readout" groups).
	Units map[string]int
}

// ActivityFactor returns the average duty cycle of a unit class.
func (r *Result) ActivityFactor(class string) float64 {
	n := r.Units[class]
	if n == 0 || r.TotalTime <= 0 {
		return 0
	}
	a := r.BusyTime[class] / (float64(n) * r.TotalTime)
	if a > 1 {
		a = 1
	}
	return a
}

// IdleTime returns qubit q's idle exposure (total - busy), the decoherence
// input of the workload error model.
func (r *Result) IdleTime(q int) float64 { return r.TotalTime - r.QubitBusy[q] }

type slotPool struct {
	busyUntil []float64
}

func newSlotPool(n int) *slotPool { return &slotPool{busyUntil: make([]float64, n)} }

// earliest returns the slot index with the smallest busy-until.
func (p *slotPool) earliest() (int, float64) {
	bi, bt := 0, p.busyUntil[0]
	for i, t := range p.busyUntil {
		if t < bt {
			bi, bt = i, t
		}
	}
	return bi, bt
}

type broadcast struct {
	key        string
	start, end float64
}

// Run simulates the executable on the configured QCI.
func Run(ex *compile.Executable, cfg Config) (*Result, error) {
	if cfg.DriveGroupSize <= 0 || cfg.DriveSlots <= 0 || cfg.ReadoutGroupSize <= 0 || cfg.ReadoutSlots <= 0 {
		return nil, fmt.Errorf("cyclesim: invalid config %+v", cfg)
	}
	n := ex.NQubits
	nDrive := (n + cfg.DriveGroupSize - 1) / cfg.DriveGroupSize
	nRead := (n + cfg.ReadoutGroupSize - 1) / cfg.ReadoutGroupSize

	res := &Result{
		BusyTime:  map[string]float64{},
		QubitBusy: make([]float64, n),
		Units: map[string]int{
			"drive":   nDrive,
			"pulse":   n,
			"readout": nRead,
		},
	}

	qubitFree := make([]float64, n)
	heads := make([]int, n)
	drivePools := make([]*slotPool, nDrive)
	for i := range drivePools {
		drivePools[i] = newSlotPool(cfg.DriveSlots)
	}
	readPools := make([]*slotPool, nRead)
	for i := range readPools {
		readPools[i] = newSlotPool(cfg.ReadoutSlots)
	}
	// Active broadcasts per drive group (for SFQ merging).
	casts := make([][]broadcast, nDrive)

	remaining := 0
	for q := 0; q < n; q++ {
		remaining += len(ex.Queues[q])
	}

	head := func(q int) *compile.Instr {
		if heads[q] >= len(ex.Queues[q]) {
			return nil
		}
		return &ex.Queues[q][heads[q]]
	}

	scheduleOne := func(q int, in *compile.Instr) (float64, float64, bool) {
		// Returns (start, end, usedNewSlot=false when merged).
		switch in.Kind {
		case compile.OneQ:
			if in.Virtual {
				return qubitFree[q], qubitFree[q], false
			}
			g := q / cfg.DriveGroupSize
			if cfg.MergeBroadcast {
				for _, bc := range casts[g] {
					if bc.key == in.GateKey() && bc.start >= qubitFree[q] {
						return bc.start, bc.end, false
					}
				}
			}
			_, slotFree := drivePools[g].earliest()
			start := math.Max(qubitFree[q], slotFree)
			return start, start + in.Duration, true
		case compile.Measure:
			g := q / cfg.ReadoutGroupSize
			_, slotFree := readPools[g].earliest()
			start := math.Max(qubitFree[q], slotFree)
			return start, start + in.Duration, true
		default:
			start := qubitFree[q]
			return start, start + in.Duration, true
		}
	}

	for remaining > 0 {
		// Barrier handling: if every live head is the same barrier id,
		// synchronise.
		progressed := false

		// Candidate selection: earliest-start ready instruction.
		bestQ := -1
		var bestStart, bestEnd float64
		bestNew := false
		for q := 0; q < n; q++ {
			in := head(q)
			if in == nil {
				continue
			}
			switch in.Kind {
			case compile.Barrier:
				continue // handled collectively below
			case compile.TwoQ:
				p := in.Partner
				ph := head(p)
				if ph == nil || ph.ID != in.ID {
					continue // partner not ready: true dependency
				}
				if p < q {
					continue // schedule from the lower index side once
				}
				start := math.Max(qubitFree[q], qubitFree[p])
				end := start + in.Duration
				if bestQ == -1 || start < bestStart {
					bestQ, bestStart, bestEnd, bestNew = q, start, end, true
				}
			default:
				start, end, usedNew := scheduleOne(q, in)
				if bestQ == -1 || start < bestStart {
					bestQ, bestStart, bestEnd, bestNew = q, start, end, usedNew
				}
			}
		}

		if bestQ >= 0 {
			in := head(bestQ)
			switch in.Kind {
			case compile.TwoQ:
				p := in.Partner
				res.Ops = append(res.Ops, TimedOp{Instr: *in, Start: bestStart, End: bestEnd})
				qubitFree[bestQ], qubitFree[p] = bestEnd, bestEnd
				res.QubitBusy[bestQ] += bestEnd - bestStart
				res.QubitBusy[p] += bestEnd - bestStart
				res.BusyTime["pulse"] += 2 * (bestEnd - bestStart)
				heads[bestQ]++
				heads[p]++
				remaining -= 2
			case compile.OneQ:
				res.Ops = append(res.Ops, TimedOp{Instr: *in, Start: bestStart, End: bestEnd})
				qubitFree[bestQ] = bestEnd
				res.QubitBusy[bestQ] += bestEnd - bestStart
				if bestNew && !in.Virtual {
					// Merged broadcasts share the slot, so only a fresh slot
					// accrues drive busy time.
					res.BusyTime["drive"] += bestEnd - bestStart
					g := bestQ / cfg.DriveGroupSize
					si, _ := drivePools[g].earliest()
					drivePools[g].busyUntil[si] = bestEnd
					if cfg.MergeBroadcast {
						casts[g] = append(casts[g], broadcast{key: in.GateKey(), start: bestStart, end: bestEnd})
						if len(casts[g]) > 8 {
							casts[g] = casts[g][1:]
						}
					}
				}
				heads[bestQ]++
				remaining--
			case compile.Measure:
				res.Ops = append(res.Ops, TimedOp{Instr: *in, Start: bestStart, End: bestEnd})
				qubitFree[bestQ] = bestEnd
				res.QubitBusy[bestQ] += bestEnd - bestStart
				res.BusyTime["readout"] += bestEnd - bestStart
				g := bestQ / cfg.ReadoutGroupSize
				si, _ := readPools[g].earliest()
				readPools[g].busyUntil[si] = bestEnd
				heads[bestQ]++
				remaining--
			}
			progressed = true
		}

		if !progressed {
			// All live heads must be barriers (or a deadlock).
			barrierID := -1
			live := 0
			for q := 0; q < n; q++ {
				in := head(q)
				if in == nil {
					continue
				}
				live++
				if in.Kind != compile.Barrier {
					return nil, fmt.Errorf("cyclesim: deadlock at qubit %d instr %+v", q, *in)
				}
				if barrierID == -1 {
					barrierID = in.ID
				}
			}
			if live == 0 {
				break
			}
			var sync float64
			for q := 0; q < n; q++ {
				if qubitFree[q] > sync {
					sync = qubitFree[q]
				}
			}
			for q := 0; q < n; q++ {
				in := head(q)
				if in != nil && in.Kind == compile.Barrier && in.ID == barrierID {
					qubitFree[q] = sync
					heads[q]++
					remaining--
				}
			}
		}
	}

	for _, t := range qubitFree {
		if t > res.TotalTime {
			res.TotalTime = t
		}
	}
	sort.Slice(res.Ops, func(i, j int) bool { return res.Ops[i].Start < res.Ops[j].Start })
	return res, nil
}
