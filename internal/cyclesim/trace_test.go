package cyclesim

import (
	"bytes"
	"testing"
	"testing/quick"

	"qisim/internal/compile"
	"qisim/internal/qasm"
)

func TestTraceRoundTrip(t *testing.T) {
	ex := compileSrc(t, "qreg q[2]; creg c[2]; h q[0]; cz q[0],q[1]; measure q[1]->c[1];", compile.DefaultOptions())
	r, err := Run(ex, CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := BuildTrace(r)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalNS != tr.TotalNS || len(back.Events) != len(tr.Events) {
		t.Fatal("trace round trip changed the timeline")
	}
	if back.Events[0].Name != tr.Events[0].Name {
		t.Fatal("event order changed")
	}
}

func TestTraceEventsOrderedAndBounded(t *testing.T) {
	ex := compileSrc(t, "qreg q[4]; h q[0]; h q[1]; cz q[0],q[1]; cz q[2],q[3]; h q[3];", compile.DefaultOptions())
	r, _ := Run(ex, CMOSConfig())
	tr := BuildTrace(r)
	prev := -1.0
	for _, e := range tr.Events {
		if e.StartNS < prev {
			t.Fatal("events must be sorted by start time")
		}
		prev = e.StartNS
		if e.EndNS < e.StartNS {
			t.Fatal("event ends before it starts")
		}
		if e.EndNS > tr.TotalNS+1e-9 {
			t.Fatal("event exceeds the makespan")
		}
	}
}

// Property: for random single-qubit gate programs, the makespan equals the
// longest per-qubit chain (no cross-qubit dependencies).
func TestQuickMakespanEqualsLongestChain(t *testing.T) {
	f := func(counts [4]uint8) bool {
		prog := &qasm.Program{NQubits: 4}
		longest := 0
		for q, c := range counts {
			n := int(c % 6)
			if n > longest {
				longest = n
			}
			for i := 0; i < n; i++ {
				prog.Gates = append(prog.Gates, qasm.Gate{Name: "x", Qubits: []int{q}, CBit: -1})
			}
		}
		if longest == 0 {
			return true
		}
		ex, err := compile.Compile(prog, compile.DefaultOptions())
		if err != nil {
			return false
		}
		cfg := CMOSConfig()
		cfg.DriveGroupSize = 1 // no structural hazards
		r, err := Run(ex, cfg)
		if err != nil {
			return false
		}
		want := float64(longest) * 25e-9
		return r.TotalTime > want-1e-12 && r.TotalTime < want+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding drive slots never slows a program down.
func TestQuickMoreSlotsNeverSlower(t *testing.T) {
	ex := compileSrc(t, "qreg q[8]; h q[0]; h q[1]; h q[2]; h q[3]; x q[4]; x q[5]; y q[6]; y q[7];", compile.DefaultOptions())
	prev := 1e9
	for slots := 1; slots <= 8; slots++ {
		cfg := Config{DriveGroupSize: 8, DriveSlots: slots, ReadoutGroupSize: 8, ReadoutSlots: 8}
		r, err := Run(ex, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.TotalTime > prev+1e-15 {
			t.Fatalf("slots=%d slower than slots=%d", slots, slots-1)
		}
		prev = r.TotalTime
	}
}
