package cyclesim

import (
	"encoding/json"
	"io"
)

// TraceEvent is one schedule entry in the exported timeline.
type TraceEvent struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Qubit   int     `json:"qubit"`
	Partner int     `json:"partner,omitempty"`
	StartNS float64 `json:"start_ns"`
	EndNS   float64 `json:"end_ns"`
}

// Trace is the exportable simulation timeline.
type Trace struct {
	TotalNS  float64            `json:"total_ns"`
	Units    map[string]int     `json:"units"`
	Activity map[string]float64 `json:"activity"`
	Events   []TraceEvent       `json:"events"`
}

// BuildTrace converts a Result into its exportable form.
func BuildTrace(r *Result) Trace {
	t := Trace{
		TotalNS:  r.TotalTime * 1e9,
		Units:    r.Units,
		Activity: map[string]float64{},
		Events:   make([]TraceEvent, 0, len(r.Ops)),
	}
	for _, class := range []string{"drive", "pulse", "readout"} {
		t.Activity[class] = r.ActivityFactor(class)
	}
	for _, op := range r.Ops {
		t.Events = append(t.Events, TraceEvent{
			Name:    op.Name,
			Kind:    op.Kind.String(),
			Qubit:   op.Qubit,
			Partner: op.Partner,
			StartNS: op.Start * 1e9,
			EndNS:   op.End * 1e9,
		})
	}
	return t
}

// WriteJSON streams the trace as indented JSON.
func (t Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ParseTrace reads a trace back (for tooling round trips).
func ParseTrace(r io.Reader) (Trace, error) {
	var t Trace
	err := json.NewDecoder(r).Decode(&t)
	return t, err
}
