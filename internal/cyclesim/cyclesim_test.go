package cyclesim

import (
	"math"
	"testing"

	"qisim/internal/compile"
	"qisim/internal/qasm"
	"qisim/internal/surface"
)

func compileSrc(t *testing.T, src string, opt compile.Options) *compile.Executable {
	t.Helper()
	p, err := qasm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := compile.Compile(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// esmExecutable lowers one ESM round of a distance-d patch.
func esmExecutable(t testing.TB, d int) *compile.Executable {
	patch := surface.NewPatch(d)
	prog := &qasm.Program{NQubits: patch.TotalQubits()}
	c := 0
	for _, op := range patch.ESMCircuit() {
		switch op.Kind {
		case "h":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "h", Qubits: []int{op.Q}, CBit: -1})
		case "cz":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "cz", Qubits: []int{op.Q, op.Q2}, CBit: -1})
		case "measure":
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "measure", Qubits: []int{op.Q}, CBit: c})
			c++
		}
	}
	prog.NClbits = c
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestSequentialDependency(t *testing.T) {
	ex := compileSrc(t, "qreg q[1]; h q[0]; h q[0]; h q[0];", compile.DefaultOptions())
	r, err := Run(ex, CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Three dependent 25 ns gates: 75 ns.
	if math.Abs(r.TotalTime-75e-9) > 1e-12 {
		t.Fatalf("total %v, want 75 ns", r.TotalTime)
	}
	for i := 1; i < len(r.Ops); i++ {
		if r.Ops[i].Start < r.Ops[i-1].End-1e-15 {
			t.Fatal("dependent gates overlap")
		}
	}
}

func TestCZTrueDependency(t *testing.T) {
	// q1 must finish its H before the CZ can start.
	ex := compileSrc(t, "qreg q[2]; h q[1]; cz q[0],q[1];", compile.DefaultOptions())
	r, err := Run(ex, CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalTime-75e-9) > 1e-12 {
		t.Fatalf("total %v, want 25+50 ns", r.TotalTime)
	}
}

func TestFDMStructuralHazard(t *testing.T) {
	// Four independent H gates on qubits sharing one 2-bank drive circuit
	// serialise into two slots.
	ex := compileSrc(t, "qreg q[4]; h q[0]; h q[1]; h q[2]; h q[3];", compile.DefaultOptions())
	cfg := Config{DriveGroupSize: 4, DriveSlots: 2, ReadoutGroupSize: 8, ReadoutSlots: 8}
	r, err := Run(ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalTime-50e-9) > 1e-12 {
		t.Fatalf("total %v, want 50 ns (two waves of two banks)", r.TotalTime)
	}
	// With four banks they all run at once.
	cfg.DriveSlots = 4
	r2, _ := Run(ex, cfg)
	if math.Abs(r2.TotalTime-25e-9) > 1e-12 {
		t.Fatalf("4-slot total %v, want 25 ns", r2.TotalTime)
	}
}

func TestBroadcastMerging(t *testing.T) {
	// SFQ: identical H gates broadcast through one slot even with #BS=1.
	ex := compileSrc(t, "qreg q[4]; h q[0]; h q[1]; h q[2]; h q[3];", compile.DefaultOptions())
	cfg := Config{DriveGroupSize: 4, DriveSlots: 1, MergeBroadcast: true, ReadoutGroupSize: 8, ReadoutSlots: 8}
	r, err := Run(ex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalTime-25e-9) > 1e-12 {
		t.Fatalf("broadcast total %v, want 25 ns", r.TotalTime)
	}
	// Distinct gates cannot merge.
	ex2 := compileSrc(t, "qreg q[2]; rx(0.5) q[0]; rx(0.25) q[1];", compile.DefaultOptions())
	cfg.DriveGroupSize = 2
	r2, _ := Run(ex2, cfg)
	if math.Abs(r2.TotalTime-50e-9) > 1e-12 {
		t.Fatalf("distinct gates should serialise on one slot: %v", r2.TotalTime)
	}
}

func TestOpt5BSReductionKeepsESMTime(t *testing.T) {
	// The paper's Opt-#5 observation: #BS 8→1 leaves ESM execution time
	// essentially unchanged because FTQC layers broadcast identical gates.
	ex := esmExecutable(t, 5)
	r8, err := Run(ex, SFQConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(ex, SFQConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.TotalTime-r8.TotalTime)/r8.TotalTime > 0.02 {
		t.Fatalf("#BS=1 ESM time %v vs #BS=8 %v — should match (Opt-#5)", r1.TotalTime, r8.TotalTime)
	}
}

func TestCMOSFDMSerializationGrowsWithD(t *testing.T) {
	// At d=9 (161 qubits) FDM-32 serialisation of the H layers is visible
	// vs an 8-qubit FDM.
	ex := esmExecutable(t, 9)
	c32 := CMOSConfig()
	r32, err := Run(ex, c32)
	if err != nil {
		t.Fatal(err)
	}
	c8 := CMOSConfig()
	c8.DriveGroupSize = 8
	r8, _ := Run(ex, c8)
	if r32.TotalTime <= r8.TotalTime {
		t.Fatalf("FDM 32 (%v) should be slower than FDM 8 (%v)", r32.TotalTime, r8.TotalTime)
	}
}

func TestVirtualRzTakesNoTime(t *testing.T) {
	ex := compileSrc(t, "qreg q[1]; rz(0.7) q[0]; h q[0];", compile.DefaultOptions())
	r, _ := Run(ex, CMOSConfig())
	if math.Abs(r.TotalTime-25e-9) > 1e-12 {
		t.Fatalf("virtual Rz should be free: total %v", r.TotalTime)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	ex := compileSrc(t, "qreg q[2]; h q[0]; h q[0]; barrier q; h q[1];", compile.DefaultOptions())
	r, err := Run(ex, CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	// q1's H starts only after q0's two H's (50 ns).
	if math.Abs(r.TotalTime-75e-9) > 1e-12 {
		t.Fatalf("total %v, want 75 ns with barrier", r.TotalTime)
	}
}

func TestReadoutSerialisesWithOneSlot(t *testing.T) {
	ex := compileSrc(t, "qreg q[2]; creg c[2]; measure q[0]->c[0]; measure q[1]->c[1];", compile.DefaultOptions())
	cfg := CMOSConfig()
	cfg.ReadoutGroupSize = 2
	cfg.ReadoutSlots = 1
	r, _ := Run(ex, cfg)
	want := 2 * 517e-9
	if math.Abs(r.TotalTime-want) > 1e-12 {
		t.Fatalf("serialised readout total %v, want %v", r.TotalTime, want)
	}
	cfg.ReadoutSlots = 2
	r2, _ := Run(ex, cfg)
	if math.Abs(r2.TotalTime-517e-9) > 1e-12 {
		t.Fatalf("parallel readout total %v, want 517 ns", r2.TotalTime)
	}
}

func TestActivityFactorsBounded(t *testing.T) {
	ex := esmExecutable(t, 5)
	r, err := Run(ex, CMOSConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"drive", "pulse", "readout"} {
		a := r.ActivityFactor(class)
		if a < 0 || a > 1 {
			t.Fatalf("%s activity %v out of range", class, a)
		}
	}
	if r.ActivityFactor("pulse") <= 0 {
		t.Fatal("ESM must exercise the pulse circuits")
	}
}

func TestIdleTimeAccounting(t *testing.T) {
	ex := compileSrc(t, "qreg q[2]; h q[0]; h q[0]; h q[1];", compile.DefaultOptions())
	r, _ := Run(ex, CMOSConfig())
	// q1 runs one 25 ns gate in a 50 ns schedule → 25 ns idle.
	if math.Abs(r.IdleTime(1)-25e-9) > 1e-12 {
		t.Fatalf("idle time %v, want 25 ns", r.IdleTime(1))
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	ex := compileSrc(t, "qreg q[1]; h q[0];", compile.DefaultOptions())
	if _, err := Run(ex, Config{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}
