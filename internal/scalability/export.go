package scalability

import (
	"encoding/json"
	"io"
	"math"

	"qisim/internal/wiring"
)

// ExportedAnalysis is the JSON-friendly projection of an Analysis.
type ExportedAnalysis struct {
	Design        string             `json:"design"`
	Family        string             `json:"family"`
	PerQubitW     map[string]float64 `json:"per_qubit_w"`
	StageLimit    map[string]float64 `json:"stage_limit"`
	LogicalError  float64            `json:"logical_error"`
	ErrorLimit    float64            `json:"error_limit"`
	MaxQubits     float64            `json:"max_qubits"`
	Binding       string             `json:"binding"`
	MeetsNearTerm bool               `json:"meets_near_term"`
}

// Export converts an Analysis for serialisation (infinities become -1,
// which JSON cannot carry).
func Export(a Analysis) ExportedAnalysis {
	e := ExportedAnalysis{
		Design:        a.Design.Name,
		Family:        a.Design.Family.String(),
		PerQubitW:     map[string]float64{},
		StageLimit:    map[string]float64{},
		LogicalError:  a.LogicalError,
		ErrorLimit:    finite(a.ErrorLimit),
		MaxQubits:     finite(a.MaxQubits),
		Binding:       string(a.Binding),
		MeetsNearTerm: a.MeetsNearTerm,
	}
	for st, w := range a.PerQubit {
		e.PerQubitW[st.String()] = w
	}
	for st, l := range a.StageLimit {
		e.StageLimit[st.String()] = finite(l)
	}
	return e
}

func finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return -1
	}
	return v
}

// WriteJSON streams a set of analyses as indented JSON.
func WriteJSON(w io.Writer, as []Analysis) error {
	out := make([]ExportedAnalysis, len(as))
	for i, a := range as {
		out[i] = Export(a)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// stageNames keeps the exported keys stable.
var _ = []wiring.Stage{wiring.Stage4K, wiring.Stage70K, wiring.Stage100mK, wiring.Stage20mK}
