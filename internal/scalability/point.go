package scalability

import (
	"math"

	"qisim/internal/microarch"
	"qisim/internal/simerr"
	"qisim/internal/wiring"
)

// Metric names produced by AnalyzePointChecked, shared with the dse layer's
// objectives (internal/dse, internal/service dse.sweep).
const (
	MetricMaxQubits    = "max_qubits"
	MetricLogicalError = "logical_error"
	MetricPower4K      = "power_4k_w"
	MetricPower100mK   = "power_100mk_w"
	MetricPower20mK    = "power_20mk_w"
	MetricErrorLimit   = "error_limit"
)

// AnalyzePointChecked evaluates one design-space point — a named design at
// a code distance with an extra per-gate error contribution (the
// sensitivity knob of Fig. 15) — into the flat metric map the DSE layer
// folds into Pareto frontiers. The map holds only finite float64s (JSON-
// safe; +Inf stage limits are clamped to MaxFloat64) and its serialised
// form is deterministic, which the sweep byte-identity contract relies on.
func AnalyzePointChecked(d microarch.Design, extraGateError float64, opt Options) (map[string]float64, error) {
	if err := checkPointArgs(extraGateError, opt); err != nil {
		return nil, err
	}
	pb := d.PerQubitPower()
	maxQ := math.Inf(1)
	for st, budget := range opt.Budgets {
		w := pb.StageW[st]
		if w <= 0 {
			continue
		}
		if lim := budget / w; lim < maxQ {
			maxQ = lim
		}
	}
	pl := d.LogicalError(extraGateError)
	errLimit := opt.Targets.MaxPhysicalQubits(pl, opt.Distance)
	if errLimit < maxQ {
		maxQ = errLimit
	}
	if math.IsNaN(pl) || math.IsNaN(maxQ) {
		return nil, simerr.Numericalf("scalability: NaN analyzing point %q (p_L %v, max qubits %v)", d.Name, pl, maxQ)
	}
	return map[string]float64{
		MetricMaxQubits:    clampInf(maxQ),
		MetricLogicalError: pl,
		MetricPower4K:      pb.StageW[wiring.Stage4K],
		MetricPower100mK:   pb.StageW[wiring.Stage100mK],
		MetricPower20mK:    pb.StageW[wiring.Stage20mK],
		MetricErrorLimit:   clampInf(errLimit),
	}, nil
}

// PointBound returns optimistic metrics for the same point: every value is
// at least as good (under the DSE default objectives — max qubits, min
// power, min error) as AnalyzePointChecked can report. The qubit cap keeps
// only the power-limited term — dropping the error-limit crossing, the
// expensive half of the analysis — so the bound is a genuine relaxation the
// sweep can evaluate without dispatching a child job. Power and logical
// error are cheap and exact, which makes the bound tight on those axes.
func PointBound(d microarch.Design, extraGateError float64, opt Options) map[string]float64 {
	pb := d.PerQubitPower()
	maxQ := math.Inf(1)
	for st, budget := range opt.Budgets {
		w := pb.StageW[st]
		if w <= 0 {
			continue
		}
		if lim := budget / w; lim < maxQ {
			maxQ = lim
		}
	}
	return map[string]float64{
		MetricMaxQubits:    clampInf(maxQ),
		MetricLogicalError: d.LogicalError(extraGateError),
		MetricPower4K:      pb.StageW[wiring.Stage4K],
		MetricPower100mK:   pb.StageW[wiring.Stage100mK],
		MetricPower20mK:    pb.StageW[wiring.Stage20mK],
	}
}

func checkPointArgs(extraGateError float64, opt Options) error {
	if err := checkOptions(opt); err != nil {
		return err
	}
	if math.IsNaN(extraGateError) || math.IsInf(extraGateError, 0) || extraGateError < 0 || extraGateError > 1 {
		return simerr.Invalidf("scalability: extra gate error must be in [0,1], got %v", extraGateError)
	}
	return nil
}

func clampInf(v float64) float64 {
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	return v
}
