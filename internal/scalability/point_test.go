package scalability

import (
	"encoding/json"
	"testing"

	"qisim/internal/microarch"
	"qisim/internal/wiring"
)

func TestAnalyzePointMatchesAnalyze(t *testing.T) {
	// At extraGateError = 0 the point metrics must agree with the headline
	// Analyze verdict for every named design.
	opt := DefaultOptions()
	for _, d := range microarch.AllDesigns() {
		m, err := AnalyzePointChecked(d, 0, opt)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		a := Analyze(d, opt)
		if m[MetricLogicalError] != a.LogicalError {
			t.Errorf("%s: logical_error %v != Analyze %v", d.Name, m[MetricLogicalError], a.LogicalError)
		}
		if m[MetricMaxQubits] != clampInf(a.MaxQubits) {
			t.Errorf("%s: max_qubits %v != Analyze %v", d.Name, m[MetricMaxQubits], a.MaxQubits)
		}
		if m[MetricPower4K] != a.PerQubit[wiring.Stage4K] {
			t.Errorf("%s: power_4k_w %v != Analyze %v", d.Name, m[MetricPower4K], a.PerQubit[wiring.Stage4K])
		}
	}
}

func TestPointBoundIsOptimistic(t *testing.T) {
	// The bound must be at least as good as the actual metrics under the
	// DSE goals (max qubits, min power, min error) for every design ×
	// distance × extra-gate-error combination the sweeps exercise.
	for _, d := range microarch.AllDesigns() {
		for _, dist := range []int{3, 11, 23} {
			for _, extra := range []float64{0, 1e-5, 1e-3} {
				opt := DefaultOptions()
				opt.Distance = dist
				m, err := AnalyzePointChecked(d, extra, opt)
				if err != nil {
					t.Fatalf("%s d=%d extra=%v: %v", d.Name, dist, extra, err)
				}
				b := PointBound(d, extra, opt)
				if b[MetricMaxQubits] < m[MetricMaxQubits] {
					t.Errorf("%s d=%d extra=%v: bound max_qubits %v < actual %v", d.Name, dist, extra, b[MetricMaxQubits], m[MetricMaxQubits])
				}
				if b[MetricLogicalError] > m[MetricLogicalError] {
					t.Errorf("%s d=%d extra=%v: bound logical_error %v > actual %v", d.Name, dist, extra, b[MetricLogicalError], m[MetricLogicalError])
				}
				if b[MetricPower4K] > m[MetricPower4K] {
					t.Errorf("%s: bound power_4k_w %v > actual %v", d.Name, b[MetricPower4K], m[MetricPower4K])
				}
			}
		}
	}
}

func TestAnalyzePointExtraErrorHurts(t *testing.T) {
	// More per-gate error can never improve the logical error rate.
	d := microarch.ERSFQOpt8()
	opt := DefaultOptions()
	prev := -1.0
	for _, extra := range []float64{0, 1e-6, 1e-5, 1e-4, 1e-3} {
		m, err := AnalyzePointChecked(d, extra, opt)
		if err != nil {
			t.Fatal(err)
		}
		if m[MetricLogicalError] < prev {
			t.Errorf("extra=%v: logical error %v fell below %v", extra, m[MetricLogicalError], prev)
		}
		prev = m[MetricLogicalError]
	}
}

func TestAnalyzePointCheckedRejects(t *testing.T) {
	d := microarch.CMOS4KBaseline()
	opt := DefaultOptions()
	if _, err := AnalyzePointChecked(d, -0.1, opt); err == nil {
		t.Error("negative extra error: expected rejection")
	}
	if _, err := AnalyzePointChecked(d, 1.5, opt); err == nil {
		t.Error("extra error > 1: expected rejection")
	}
	bad := opt
	bad.Distance = 4
	if _, err := AnalyzePointChecked(d, 0, bad); err == nil {
		t.Error("even distance: expected rejection")
	}
}

func TestAnalyzePointJSONSafe(t *testing.T) {
	// Every metric must serialise (no Inf/NaN) so the frontier envelope is
	// always valid JSON.
	opt := DefaultOptions()
	for _, d := range microarch.AllDesigns() {
		m, err := AnalyzePointChecked(d, 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := json.Marshal(m); err != nil {
			t.Errorf("%s: metrics not JSON-serialisable: %v", d.Name, err)
		}
	}
}
