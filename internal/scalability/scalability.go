// Package scalability is QIsim's headline analysis (Section 6): for a QCI
// design point it combines the per-qubit per-stage power model with the
// refrigerator budgets and the logical-error target model, and reports the
// maximum supportable physical-qubit count together with the binding
// constraint — reproducing Figs. 12, 13 and 17.
package scalability

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qisim/internal/cryo"
	"qisim/internal/microarch"
	"qisim/internal/surface"
	"qisim/internal/wiring"
)

// Constraint identifies what limits a design's scale.
type Constraint string

const (
	Power4K    Constraint = "4K power"
	Power70K   Constraint = "70K power"
	Power100mK Constraint = "100mK power"
	Power20mK  Constraint = "20mK power"
	LogicalErr Constraint = "logical error"
	Unbounded  Constraint = "unbounded"
)

func stageConstraint(s wiring.Stage) Constraint {
	switch s {
	case wiring.Stage4K:
		return Power4K
	case wiring.Stage70K:
		return Power70K
	case wiring.Stage100mK:
		return Power100mK
	default:
		return Power20mK
	}
}

// Analysis is the scalability verdict for one design.
type Analysis struct {
	Design microarch.Design
	// PerQubit is the per-qubit per-stage power.
	PerQubit map[wiring.Stage]float64
	// StageLimit is the power-limited qubit count per stage.
	StageLimit map[wiring.Stage]float64
	// LogicalError is the achieved p_L at d = 23.
	LogicalError float64
	// ErrorLimit is the error-limited qubit count (target-model crossing).
	ErrorLimit float64
	// MaxQubits is min over all limits; Binding names the constraint.
	MaxQubits float64
	Binding   Constraint
	// MeetsNearTerm reports whether the design satisfies the near-term
	// (1,152-qubit, Jellium N=2) logical-error target.
	MeetsNearTerm bool
}

// Options configure the analysis.
type Options struct {
	Budgets  cryo.Budgets
	Targets  surface.TargetModel
	Distance int
}

// DefaultOptions returns the Table 2 budgets, Jellium targets and d = 23.
func DefaultOptions() Options {
	return Options{Budgets: cryo.DefaultBudgets(), Targets: surface.DefaultTargets(), Distance: 23}
}

// ExtendedOptions adds the 30 W 70 K stage of the Section 7.3 extension, for
// designs that offload components there.
func ExtendedOptions() Options {
	opt := DefaultOptions()
	opt.Budgets = cryo.ExtendedBudgets()
	return opt
}

// Analyze evaluates one design point.
func Analyze(d microarch.Design, opt Options) Analysis {
	a := Analysis{
		Design:     d,
		PerQubit:   map[wiring.Stage]float64{},
		StageLimit: map[wiring.Stage]float64{},
	}
	pb := d.PerQubitPower()
	a.MaxQubits = math.Inf(1)
	a.Binding = Unbounded
	for st, budget := range opt.Budgets {
		w := pb.StageW[st]
		a.PerQubit[st] = w
		if w <= 0 {
			a.StageLimit[st] = math.Inf(1)
			continue
		}
		lim := budget / w
		a.StageLimit[st] = lim
		if lim < a.MaxQubits {
			a.MaxQubits = lim
			a.Binding = stageConstraint(st)
		}
	}
	a.LogicalError = d.LogicalError(0)
	a.ErrorLimit = opt.Targets.MaxPhysicalQubits(a.LogicalError, opt.Distance)
	if a.ErrorLimit < a.MaxQubits {
		a.MaxQubits = a.ErrorLimit
		a.Binding = LogicalErr
	}
	near := opt.Targets.Target(1) // one logical qubit, Jellium N=2 floor
	a.MeetsNearTerm = a.LogicalError <= near
	return a
}

// AnalyzeAll evaluates every named design point.
func AnalyzeAll(opt Options) []Analysis {
	ds := microarch.AllDesigns()
	out := make([]Analysis, len(ds))
	for i, d := range ds {
		out[i] = Analyze(d, opt)
	}
	return out
}

// CurvePoint is one sample of a Fig. 12/13/17-style sweep.
type CurvePoint struct {
	Qubits int
	// Utilization is power/budget per stage at this scale.
	Utilization map[wiring.Stage]float64
	// LogicalError and Target at this scale (target falls as the algorithm
	// grows with the machine).
	LogicalError float64
	Target       float64
	Feasible     bool
}

// Sweep samples a design across qubit counts, producing the data behind the
// scalability figures.
func Sweep(d microarch.Design, qubitCounts []int, opt Options) []CurvePoint {
	pb := d.PerQubitPower()
	pl := d.LogicalError(0)
	perPatch := float64(surface.PhysicalQubitsPerPatch(opt.Distance))
	out := make([]CurvePoint, 0, len(qubitCounts))
	for _, n := range qubitCounts {
		cp := CurvePoint{Qubits: n, Utilization: map[wiring.Stage]float64{}, LogicalError: pl}
		cp.Feasible = true
		for st, budget := range opt.Budgets {
			u := pb.StageW[st] * float64(n) / budget
			cp.Utilization[st] = u
			if u > 1 {
				cp.Feasible = false
			}
		}
		nLogical := float64(n) / perPatch
		cp.Target = opt.Targets.Target(nLogical)
		if pl > cp.Target {
			cp.Feasible = false
		}
		out = append(out, cp)
	}
	return out
}

// Table renders a set of analyses as an aligned text table.
func Table(as []Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %12s %12s %12s %12s %12s %10s %-14s\n",
		"design", "4K W/qubit", "100mK", "20mK", "p_L(d=23)", "err-limit", "max-qubits", "binding")
	for _, a := range as {
		fmt.Fprintf(&b, "%-26s %12.3g %12.3g %12.3g %12.3g %12.0f %10.0f %-14s\n",
			a.Design.Name,
			a.PerQubit[wiring.Stage4K], a.PerQubit[wiring.Stage100mK], a.PerQubit[wiring.Stage20mK],
			a.LogicalError, capInf(a.ErrorLimit), capInf(a.MaxQubits), a.Binding)
	}
	return b.String()
}

func capInf(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// SortByMax orders analyses by achievable scale (descending).
func SortByMax(as []Analysis) {
	sort.Slice(as, func(i, j int) bool { return as[i].MaxQubits > as[j].MaxQubits })
}
