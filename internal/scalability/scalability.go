// Package scalability is QIsim's headline analysis (Section 6): for a QCI
// design point it combines the per-qubit per-stage power model with the
// refrigerator budgets and the logical-error target model, and reports the
// maximum supportable physical-qubit count together with the binding
// constraint — reproducing Figs. 12, 13 and 17.
package scalability

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"qisim/internal/cryo"
	"qisim/internal/microarch"
	"qisim/internal/obs"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
	"qisim/internal/surface"
	"qisim/internal/wiring"
)

// Constraint identifies what limits a design's scale.
type Constraint string

const (
	Power4K    Constraint = "4K power"
	Power70K   Constraint = "70K power"
	Power100mK Constraint = "100mK power"
	Power20mK  Constraint = "20mK power"
	LogicalErr Constraint = "logical error"
	Unbounded  Constraint = "unbounded"
)

func stageConstraint(s wiring.Stage) Constraint {
	switch s {
	case wiring.Stage4K:
		return Power4K
	case wiring.Stage70K:
		return Power70K
	case wiring.Stage100mK:
		return Power100mK
	default:
		return Power20mK
	}
}

// Analysis is the scalability verdict for one design.
type Analysis struct {
	Design microarch.Design
	// PerQubit is the per-qubit per-stage power.
	PerQubit map[wiring.Stage]float64
	// StageLimit is the power-limited qubit count per stage.
	StageLimit map[wiring.Stage]float64
	// LogicalError is the achieved p_L at d = 23.
	LogicalError float64
	// ErrorLimit is the error-limited qubit count (target-model crossing).
	ErrorLimit float64
	// MaxQubits is min over all limits; Binding names the constraint.
	MaxQubits float64
	Binding   Constraint
	// MeetsNearTerm reports whether the design satisfies the near-term
	// (1,152-qubit, Jellium N=2) logical-error target.
	MeetsNearTerm bool
}

// Options configure the analysis.
type Options struct {
	Budgets  cryo.Budgets
	Targets  surface.TargetModel
	Distance int
	// Workers parallelises AnalyzeAllCtx and SweepCtx across design points /
	// sweep samples (0 = GOMAXPROCS, 1 = serial). Results are bit-identical
	// for every worker count: points merge in index order.
	Workers int
	// Progress mirrors simrun.Options.Progress for the design-point / sweep
	// fan-out: called with (points committed, points requested) as the
	// in-order merge frontier advances. Observational only.
	Progress func(completed, requested int)
}

// DefaultOptions returns the Table 2 budgets, Jellium targets and d = 23.
func DefaultOptions() Options {
	return Options{Budgets: cryo.DefaultBudgets(), Targets: surface.DefaultTargets(), Distance: 23}
}

// ExtendedOptions adds the 30 W 70 K stage of the Section 7.3 extension, for
// designs that offload components there.
func ExtendedOptions() Options {
	opt := DefaultOptions()
	opt.Budgets = cryo.ExtendedBudgets()
	return opt
}

// Analyze evaluates one design point.
func Analyze(d microarch.Design, opt Options) Analysis {
	a := Analysis{
		Design:     d,
		PerQubit:   map[wiring.Stage]float64{},
		StageLimit: map[wiring.Stage]float64{},
	}
	pb := d.PerQubitPower()
	a.MaxQubits = math.Inf(1)
	a.Binding = Unbounded
	for st, budget := range opt.Budgets {
		w := pb.StageW[st]
		a.PerQubit[st] = w
		if w <= 0 {
			a.StageLimit[st] = math.Inf(1)
			continue
		}
		lim := budget / w
		a.StageLimit[st] = lim
		if lim < a.MaxQubits {
			a.MaxQubits = lim
			a.Binding = stageConstraint(st)
		}
	}
	a.LogicalError = d.LogicalError(0)
	a.ErrorLimit = opt.Targets.MaxPhysicalQubits(a.LogicalError, opt.Distance)
	if a.ErrorLimit < a.MaxQubits {
		a.MaxQubits = a.ErrorLimit
		a.Binding = LogicalErr
	}
	near := opt.Targets.Target(1) // one logical qubit, Jellium N=2 floor
	a.MeetsNearTerm = a.LogicalError <= near
	return a
}

// AnalyzeChecked is the erroring boundary for Analyze: it validates the
// options and verifies the analysis is numerically sound (no NaN leaking out
// of the power or error models) before returning it.
func AnalyzeChecked(d microarch.Design, opt Options) (Analysis, error) {
	if err := checkOptions(opt); err != nil {
		return Analysis{}, err
	}
	a := Analyze(d, opt)
	if math.IsNaN(a.LogicalError) || math.IsNaN(a.MaxQubits) {
		return Analysis{}, simerr.Numericalf("scalability: NaN in analysis of %q (p_L %v, max qubits %v)",
			d.Name, a.LogicalError, a.MaxQubits)
	}
	return a, nil
}

func checkOptions(opt Options) error {
	if opt.Distance < 3 || opt.Distance%2 == 0 {
		return simerr.Invalidf("scalability: distance must be odd and >= 3, got %d", opt.Distance)
	}
	if len(opt.Budgets) == 0 {
		return simerr.Invalidf("scalability: no refrigerator budgets configured")
	}
	for st, w := range opt.Budgets {
		if w <= 0 || math.IsNaN(w) {
			return simerr.Invalidf("scalability: budget for stage %s must be positive, got %v", st, w)
		}
	}
	return nil
}

// AnalyzeAll evaluates every named design point.
func AnalyzeAll(opt Options) []Analysis {
	ds := microarch.AllDesigns()
	out := make([]Analysis, len(ds))
	for i, d := range ds {
		out[i] = Analyze(d, opt)
	}
	return out
}

// AnalyzeAllCtx evaluates every named design point under a context, fanning
// the designs out across opt.Workers goroutines (index-order merge keeps the
// output order and content identical for every worker count): on
// cancellation it returns the contiguous prefix of analyses completed so
// far with Truncated set.
func AnalyzeAllCtx(ctx context.Context, opt Options) ([]Analysis, simrun.Status, error) {
	if err := checkOptions(opt); err != nil {
		return nil, simrun.Status{}, err
	}
	ds := microarch.AllDesigns()
	out, status, err := simrun.RunSharded(ctx, len(ds), 0,
		simrun.Options{CheckEvery: 1, ShardSize: 1, Workers: opt.Workers, Progress: opt.Progress},
		func(t *simrun.ShardTask) ([]Analysis, int, error) {
			part := make([]Analysis, 0, t.N)
			for i := 0; t.Continue(i); i++ {
				d := ds[t.GlobalShot(i)]
				_, span := obs.StartSpan(t.Context(), "design.analyze",
					obs.String("design", d.Name))
				part = append(part, Analyze(d, opt))
				span.End()
			}
			return part, -1, nil
		},
		func(dst *[]Analysis, src []Analysis) { *dst = append(*dst, src...) })
	if err != nil {
		return nil, simrun.Status{}, err
	}
	return out, status, nil
}

// CurvePoint is one sample of a Fig. 12/13/17-style sweep.
type CurvePoint struct {
	Qubits int `json:"qubits"`
	// Utilization is power/budget per stage at this scale.
	Utilization map[wiring.Stage]float64 `json:"utilization"`
	// LogicalError and Target at this scale (target falls as the algorithm
	// grows with the machine).
	LogicalError float64 `json:"logical_error"`
	Target       float64 `json:"target"`
	Feasible     bool    `json:"feasible"`
}

// Sweep samples a design across qubit counts, producing the data behind the
// scalability figures.
func Sweep(d microarch.Design, qubitCounts []int, opt Options) []CurvePoint {
	res, err := SweepCtx(context.Background(), d, qubitCounts, opt)
	if err != nil {
		panic(err) // legacy boundary: preserves the seed API's contract
	}
	return res.Points
}

// SweepResult is the context-aware sweep outcome: Points holds the curve
// samples completed before cancellation (all of them when Status.Truncated
// is false).
type SweepResult struct {
	Design string        `json:"design"`
	Points []CurvePoint  `json:"points"`
	Status simrun.Status `json:"status"`
}

// SweepCtx is the context-aware qubit-count sweep, fanned out across
// opt.Workers goroutines on the sharded engine (one point per shard,
// index-order merge — output identical for every worker count): on
// cancellation it returns the contiguous prefix of points computed so far,
// flagged Truncated, so an interrupted design-space exploration keeps the
// samples it already paid for.
func SweepCtx(ctx context.Context, d microarch.Design, qubitCounts []int, opt Options) (SweepResult, error) {
	if err := checkOptions(opt); err != nil {
		return SweepResult{}, err
	}
	if len(qubitCounts) == 0 {
		return SweepResult{}, simerr.Invalidf("scalability: sweep needs at least one qubit count")
	}
	for _, n := range qubitCounts {
		if n <= 0 {
			return SweepResult{}, simerr.Invalidf("scalability: qubit count must be positive, got %d", n)
		}
	}
	pb := d.PerQubitPower()
	pl := d.LogicalError(0)
	perPatch := float64(surface.PhysicalQubitsPerPatch(opt.Distance))
	points, status, gerr := simrun.RunSharded(ctx, len(qubitCounts), 0,
		simrun.Options{CheckEvery: 1, ShardSize: 1, Workers: opt.Workers, Progress: opt.Progress},
		func(t *simrun.ShardTask) ([]CurvePoint, int, error) {
			part := make([]CurvePoint, 0, t.N)
			for i := 0; t.Continue(i); i++ {
				n := qubitCounts[t.GlobalShot(i)]
				_, span := obs.StartSpan(t.Context(), "sweep.point", obs.Int("qubits", n))
				cp := CurvePoint{Qubits: n, Utilization: map[wiring.Stage]float64{}, LogicalError: pl}
				cp.Feasible = true
				for st, budget := range opt.Budgets {
					u := pb.StageW[st] * float64(n) / budget
					cp.Utilization[st] = u
					if u > 1 {
						cp.Feasible = false
					}
				}
				nLogical := float64(n) / perPatch
				cp.Target = opt.Targets.Target(nLogical)
				if pl > cp.Target {
					cp.Feasible = false
				}
				span.SetAttr(obs.Bool("feasible", cp.Feasible))
				span.End()
				part = append(part, cp)
			}
			return part, -1, nil
		},
		func(dst *[]CurvePoint, src []CurvePoint) { *dst = append(*dst, src...) })
	if gerr != nil {
		return SweepResult{}, gerr
	}
	return SweepResult{Design: d.Name, Points: points, Status: status}, nil
}

// Table renders a set of analyses as an aligned text table.
func Table(as []Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %12s %12s %12s %12s %12s %10s %-14s\n",
		"design", "4K W/qubit", "100mK", "20mK", "p_L(d=23)", "err-limit", "max-qubits", "binding")
	for _, a := range as {
		fmt.Fprintf(&b, "%-26s %12.3g %12.3g %12.3g %12.3g %12.0f %10.0f %-14s\n",
			a.Design.Name,
			a.PerQubit[wiring.Stage4K], a.PerQubit[wiring.Stage100mK], a.PerQubit[wiring.Stage20mK],
			a.LogicalError, capInf(a.ErrorLimit), capInf(a.MaxQubits), a.Binding)
	}
	return b.String()
}

func capInf(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// SortByMax orders analyses by achievable scale (descending).
func SortByMax(as []Analysis) {
	sort.Slice(as, func(i, j int) bool { return as[i].MaxQubits > as[j].MaxQubits })
}
