package scalability

import (
	"math"
	"strings"
	"testing"

	"qisim/internal/microarch"
	"qisim/internal/wiring"
)

func analyzeByName(t *testing.T, name string) Analysis {
	t.Helper()
	for _, a := range AnalyzeAll(DefaultOptions()) {
		if a.Design.Name == name {
			return a
		}
	}
	t.Fatalf("unknown design %q", name)
	return Analysis{}
}

func TestFig12Headlines(t *testing.T) {
	cases := []struct {
		name    string
		lo, hi  float64
		binding Constraint
	}{
		{"300K-coax", 330, 470, Power100mK},       // paper: 400
		{"300K-microstrip", 560, 820, Power100mK}, // paper: 650
		{"300K-photonic", 20, 110, Power20mK},     // paper: 70
	}
	for _, c := range cases {
		a := analyzeByName(t, c.name)
		if a.MaxQubits < c.lo || a.MaxQubits > c.hi {
			t.Errorf("%s: max qubits %.0f outside [%v, %v]", c.name, a.MaxQubits, c.lo, c.hi)
		}
		if a.Binding != c.binding {
			t.Errorf("%s: binding %v, want %v", c.name, a.Binding, c.binding)
		}
	}
}

func TestFig13Headlines(t *testing.T) {
	base := analyzeByName(t, "4K-CMOS-baseline")
	if base.MaxQubits >= 700 || base.Binding != Power4K {
		t.Errorf("CMOS baseline %.0f (%v), want <700 (4K power)", base.MaxQubits, base.Binding)
	}
	opt := analyzeByName(t, "4K-CMOS-opt12")
	if opt.MaxQubits < 1152 || opt.MaxQubits > 1600 {
		t.Errorf("CMOS opt12 %.0f, want ~1,399 (>= 1,152 target)", opt.MaxQubits)
	}
	rsfq := analyzeByName(t, "RSFQ-baseline")
	if rsfq.MaxQubits >= 200 || rsfq.Binding != Power20mK {
		t.Errorf("RSFQ baseline %.0f (%v), want <160 (20mK power)", rsfq.MaxQubits, rsfq.Binding)
	}
	o345 := analyzeByName(t, "RSFQ-opt345")
	if o345.MaxQubits < 1152 || o345.MaxQubits > 1500 {
		t.Errorf("RSFQ opt345 %.0f, want ~1,248", o345.MaxQubits)
	}
}

func TestFig17Headlines(t *testing.T) {
	adv := analyzeByName(t, "4K-CMOS-advanced-opt67")
	if adv.MaxQubits < 48000 || adv.MaxQubits > 85000 {
		t.Errorf("advanced CMOS %.0f, want ~63,883", adv.MaxQubits)
	}
	if adv.Binding != LogicalErr {
		t.Errorf("advanced CMOS binding %v, want logical error", adv.Binding)
	}
	er := analyzeByName(t, "ERSFQ-opt8")
	if er.MaxQubits < 60000 || er.MaxQubits > 110000 {
		t.Errorf("ERSFQ %.0f, want ~82,413", er.MaxQubits)
	}
	if er.Binding != LogicalErr {
		t.Errorf("ERSFQ binding %v, want logical error", er.Binding)
	}
	// Both exceed the 62,208-qubit long-term goal region within our bands.
	if adv.MaxQubits < 48000 || er.MaxQubits < 62208 {
		t.Error("long-term designs must approach/exceed the 62,208-qubit goal")
	}
}

func TestNaiveSharingInfeasible(t *testing.T) {
	a := analyzeByName(t, "RSFQ-naive-sharing")
	if a.MeetsNearTerm {
		t.Fatal("naive sharing must violate the near-term error target")
	}
	if a.Binding != LogicalErr {
		t.Fatalf("naive sharing binding %v, want logical error", a.Binding)
	}
	if a.MaxQubits > 100 {
		t.Fatalf("naive sharing max qubits %.0f should collapse", a.MaxQubits)
	}
}

func TestOptimizationOrderingMonotone(t *testing.T) {
	// Each optimisation stage must not reduce achievable scale.
	chains := [][]string{
		{"4K-CMOS-baseline", "4K-CMOS-opt12", "4K-CMOS-advanced", "4K-CMOS-advanced-opt6", "4K-CMOS-advanced-opt67"},
		{"RSFQ-baseline", "RSFQ-opt345", "ERSFQ-opt8"},
	}
	for _, chain := range chains {
		prev := 0.0
		for _, name := range chain {
			a := analyzeByName(t, name)
			if a.MaxQubits < prev {
				t.Errorf("%s (%.0f) regresses below predecessor (%.0f)", name, a.MaxQubits, prev)
			}
			prev = a.MaxQubits
		}
	}
}

func TestSweepCurveShape(t *testing.T) {
	d := microarch.CMOS4KBaseline()
	ns := []int{100, 300, 654, 1000, 20000}
	pts := Sweep(d, ns, DefaultOptions())
	if len(pts) != len(ns) {
		t.Fatal("sweep length mismatch")
	}
	// Utilisation grows linearly with N.
	u100 := pts[0].Utilization[wiring.Stage4K]
	u300 := pts[1].Utilization[wiring.Stage4K]
	if math.Abs(u300/u100-3) > 1e-9 {
		t.Fatal("utilisation must be linear in qubit count")
	}
	// Feasibility flips around the limit.
	if !pts[0].Feasible || pts[4].Feasible {
		t.Fatal("feasibility boundary wrong")
	}
	// Target decreases with scale.
	if pts[4].Target >= pts[0].Target {
		t.Fatal("error target must tighten with scale")
	}
}

func TestTableRendering(t *testing.T) {
	as := AnalyzeAll(DefaultOptions())
	s := Table(as)
	for _, name := range []string{"300K-coax", "ERSFQ-opt8", "binding"} {
		if !strings.Contains(s, name) {
			t.Fatalf("table missing %q:\n%s", name, s)
		}
	}
}

func TestSortByMax(t *testing.T) {
	as := AnalyzeAll(DefaultOptions())
	SortByMax(as)
	for i := 1; i < len(as); i++ {
		if as[i].MaxQubits > as[i-1].MaxQubits {
			t.Fatal("sort order broken")
		}
	}
	if as[0].Design.Name != "ERSFQ-opt8" {
		t.Fatalf("largest design should be ERSFQ-opt8, got %s", as[0].Design.Name)
	}
}

func TestSection73SeventyKelvinExtension(t *testing.T) {
	// Offloading the analog front-ends to the 30 W 70 K stage (Section 7.3
	// future direction) lifts the near-term CMOS design meaningfully.
	base := Analyze(microarch.CMOS4KOpt12(), DefaultOptions())
	ext := Analyze(microarch.CMOS4KOpt12With70K(), ExtendedOptions())
	if ext.MaxQubits < 1.2*base.MaxQubits {
		t.Fatalf("70K offload gives %.0f vs %.0f — expected a clear lift", ext.MaxQubits, base.MaxQubits)
	}
	if ext.PerQubit[wiring.Stage70K] <= 0 {
		t.Fatal("offloaded design must dissipate at 70K")
	}
	if ext.PerQubit[wiring.Stage4K] >= base.PerQubit[wiring.Stage4K] {
		t.Fatal("offload must reduce 4K per-qubit power")
	}
	// The huge 70K budget must not be the binding stage.
	if ext.Binding == Power70K {
		t.Fatal("30W 70K budget should not bind")
	}
}

func TestHolisticOrderingStory(t *testing.T) {
	// The paper's core finding: 4 K QCIs start no better than 300 K ones,
	// but architectural optimisation unlocks them.
	coax := analyzeByName(t, "300K-coax")
	cmosBase := analyzeByName(t, "4K-CMOS-baseline")
	if cmosBase.MaxQubits > 2*coax.MaxQubits {
		t.Fatal("baseline 4K CMOS should not dramatically beat 300K coax (Section 6.2.2)")
	}
	cmosOpt := analyzeByName(t, "4K-CMOS-opt12")
	if cmosOpt.MaxQubits < 1.5*coax.MaxQubits {
		t.Fatal("optimised 4K CMOS must clearly beat 300K designs")
	}
}

func TestExportJSON(t *testing.T) {
	as := AnalyzeAll(DefaultOptions())
	var buf strings.Builder
	if err := WriteJSON(&buf, as); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"ERSFQ-opt8", "max_qubits", "binding", "4K"} {
		if !strings.Contains(s, want) {
			t.Fatalf("export missing %q", want)
		}
	}
	// No infinities may leak into the JSON.
	if strings.Contains(s, "Inf") || strings.Contains(s, "inf") {
		t.Fatal("infinity leaked into JSON export")
	}
}
