// Package jj is a JoSIM-lite: a small circuit-dynamics solver for Josephson
// transmission lines, backing the behavioural LJJ model of internal/jpm with
// physics. The mK JPM-readout circuit of Section 3.4.3-iii discriminates the
// JPM state by the delay difference of two LJJ (long-Josephson-junction)
// lines; this package simulates fluxon propagation along a discrete JTL —
// the chain of junctions and inductors — with the RCSJ junction model, and
// measures the propagation delay directly. The tests verify the delay's
// N·√(L) scaling, which is exactly what jpm.LJJModel assumes, and the
// JPM-current-induced delay asymmetry the discriminator exploits.
package jj

import "math"

// Phi0 is the flux quantum (Wb).
const Phi0 = 2.067833848e-15

// JTLine is a discrete Josephson transmission line: N cells, each an RCSJ
// junction (Ic, C, R) shunted to ground, coupled by series inductance L.
type JTLine struct {
	// Cells is the junction count.
	Cells int
	// Ic is the junction critical current (A).
	Ic float64
	// C is the junction capacitance (F).
	C float64
	// R is the junction shunt resistance (Ω).
	R float64
	// L is the coupling inductance between neighbouring cells (H).
	L float64
	// Bias is the uniform DC bias current as a fraction of Ic (inductively
	// delivered in a real LJJ, so zero static dissipation).
	Bias float64
	// CouplingCurrent is an extra per-cell current injected by a coupled
	// JPM's circulating current (sign encodes the JPM state), as a fraction
	// of Ic.
	CouplingCurrent float64
}

// DefaultJTLine returns a line with SFQ5ee-scale parameters.
func DefaultJTLine(cells int, inductancePH float64) JTLine {
	return JTLine{
		Cells: cells,
		Ic:    100e-6,
		C:     0.07e-12,
		R:     2.0,
		L:     inductancePH * 1e-12,
		Bias:  0.7,
	}
}

// state holds the per-cell junction phases and their velocities.
type state struct {
	phi, dphi []float64
}

// derivs computes the RCSJ dynamics of the chain:
//
//	C·(Φ0/2π)·φ̈_i = I_bias + I_coupling − Ic·sin φ_i − (Φ0/2π)·φ̇_i/R
//	                + (Φ0/2π)·(φ_{i-1} − 2φ_i + φ_{i+1})/L
func (l JTLine) derivs(s state, ddphi []float64) {
	k := Phi0 / (2 * math.Pi)
	for i := 0; i < l.Cells; i++ {
		lap := 0.0
		if i > 0 {
			lap += s.phi[i-1] - s.phi[i]
		}
		if i < l.Cells-1 {
			lap += s.phi[i+1] - s.phi[i]
		}
		current := l.Ic*(l.Bias+l.CouplingCurrent) - l.Ic*math.Sin(s.phi[i]) -
			k*s.dphi[i]/l.R + k*lap/l.L
		ddphi[i] = current / (l.C * k)
	}
}

// PropagationDelay injects a fluxon at cell 0 (a 2π phase kick) and returns
// the time until the last cell's phase passes π (the pulse arrival), or a
// negative value if the pulse dies within maxTime.
func (l JTLine) PropagationDelay(maxTime float64) float64 {
	s := state{phi: make([]float64, l.Cells), dphi: make([]float64, l.Cells)}
	// Rest state: all junctions at asin(bias).
	rest := math.Asin(clamp(l.Bias+l.CouplingCurrent, -0.999, 0.999))
	for i := range s.phi {
		s.phi[i] = rest
	}
	// Launch: push the first junction over the barrier.
	s.phi[0] += 2 * math.Pi

	dt := math.Sqrt(l.C*l.L) / 20 // resolve the plasma/LC scale
	if dt <= 0 {
		return -1
	}
	ddphi := make([]float64, l.Cells)
	tmp := state{phi: make([]float64, l.Cells), dphi: make([]float64, l.Cells)}
	threshold := rest + math.Pi

	for t := 0.0; t < maxTime; t += dt {
		// Midpoint (RK2) integration.
		l.derivs(s, ddphi)
		for i := 0; i < l.Cells; i++ {
			tmp.phi[i] = s.phi[i] + 0.5*dt*s.dphi[i]
			tmp.dphi[i] = s.dphi[i] + 0.5*dt*ddphi[i]
		}
		l.derivs(tmp, ddphi)
		for i := 0; i < l.Cells; i++ {
			s.phi[i] += dt * tmp.dphi[i]
			s.dphi[i] += dt * ddphi[i]
		}
		if s.phi[l.Cells-1] > threshold {
			return t
		}
	}
	return -1
}

// DelayAsymmetry returns the propagation delays with the JPM circulating
// current aiding (+) and opposing (−) the bias — the discrimination
// mechanism of the mK JPM readout circuit: "the circulating JPM current
// reversely affects the pulse-transfer speed of each coupled LJJ train".
func (l JTLine) DelayAsymmetry(coupling, maxTime float64) (fast, slow float64) {
	lp := l
	lp.CouplingCurrent = coupling
	fast = lp.PropagationDelay(maxTime)
	lm := l
	lm.CouplingCurrent = -coupling
	slow = lm.PropagationDelay(maxTime)
	return
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
