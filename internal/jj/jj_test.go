package jj

import (
	"math"
	"testing"
)

func TestDelayLinearInLength(t *testing.T) {
	// Fluxon transit time grows linearly with the cell count — the basis of
	// jpm.LJJModel's per-JPM length scaling.
	l10 := DefaultJTLine(10, 10).PropagationDelay(50e-9)
	l20 := DefaultJTLine(20, 10).PropagationDelay(50e-9)
	l40 := DefaultJTLine(40, 10).PropagationDelay(50e-9)
	if l10 <= 0 || l20 <= 0 || l40 <= 0 {
		t.Fatal("fluxon failed to propagate")
	}
	r1, r2 := l20/l10, l40/l20
	if r1 < 1.7 || r1 > 2.5 || r2 < 1.7 || r2 > 2.5 {
		t.Fatalf("delay not linear in length: ratios %.2f / %.2f, want ~2", r1, r2)
	}
}

func TestDelayGrowsWithInductance(t *testing.T) {
	// The Opt-#3 re-design reduced L from 40 pH to 4 pH "for the low
	// readout delay"; the physical model must show the same lever.
	d4 := DefaultJTLine(20, 4).PropagationDelay(50e-9)
	d40 := DefaultJTLine(20, 40).PropagationDelay(50e-9)
	if d4 <= 0 || d40 <= 0 {
		t.Fatal("fluxon failed to propagate")
	}
	ratio := d40 / d4
	// Between √L (3.2x) and linear (10x) for this damping regime.
	if ratio < 2.5 || ratio > 15 {
		t.Fatalf("40 pH / 4 pH delay ratio %.2f outside the physical band", ratio)
	}
	exponent := math.Log(ratio) / math.Log(10)
	if exponent < 0.4 || exponent > 1.2 {
		t.Fatalf("delay-vs-L exponent %.2f implausible", exponent)
	}
}

func TestJPMCurrentDiscrimination(t *testing.T) {
	// The JPM's circulating current aids one line and opposes the other:
	// the aided fluxon arrives promptly; the opposed one is slowed or
	// blocked entirely — the DFF's pulse/no-pulse discrimination.
	l := DefaultJTLine(20, 40)
	fast, slow := l.DelayAsymmetry(0.15, 30e-9)
	if fast <= 0 {
		t.Fatal("aided fluxon must propagate")
	}
	if slow > 0 && slow < 1.5*fast {
		t.Fatalf("opposed fluxon too fast: %.3g vs %.3g", slow, fast)
	}
	// Neutral line sits between.
	neutral := l.PropagationDelay(30e-9)
	if neutral <= fast {
		t.Fatalf("aided (%v) should beat neutral (%v)", fast, neutral)
	}
}

func TestMarginGrowsWithCoupling(t *testing.T) {
	l := DefaultJTLine(16, 20)
	f1, _ := l.DelayAsymmetry(0.05, 30e-9)
	f2, _ := l.DelayAsymmetry(0.20, 30e-9)
	if f2 >= f1 {
		t.Fatalf("stronger coupling should speed the aided line: %.3g vs %.3g", f2, f1)
	}
}

func TestUnbiasedLineBlocksPulse(t *testing.T) {
	l := DefaultJTLine(20, 10)
	l.Bias = 0
	if d := l.PropagationDelay(5e-9); d > 0 {
		t.Fatalf("with zero bias the fluxon should die to damping, but arrived at %v", d)
	}
}

func TestDelayScaleMatchesJPMModel(t *testing.T) {
	// The behavioural jpm model uses 4 ns for a 40 pH single-JPM train; the
	// physical per-cell delay (~30 ps at 40 pH) implies ~130 cells — a
	// plausible LJJ length. Just pin the per-cell delay band here.
	l := DefaultJTLine(40, 40)
	d := l.PropagationDelay(10e-9)
	perCell := d / 40
	if perCell < 5e-12 || perCell > 100e-12 {
		t.Fatalf("per-cell delay %.1f ps outside the SFQ5ee band", perCell*1e12)
	}
}
