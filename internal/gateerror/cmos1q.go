// Package gateerror implements QIsim's gate error-rate models (Fig. 7 of the
// paper): CMOS single-qubit gates driven by noisy quantised microwaves, SFQ
// single-qubit gates built from optimised pulse bitstreams, and the CZ
// two-qubit gate realised by flux pulses — all scored with Hamiltonian
// simulation against ideal unitaries, plus the Bloch–Redfield-style
// decoherence extension used for validation against IBMQ references.
package gateerror

import (
	"math"
	"math/rand"

	"qisim/internal/cmath"
	"qisim/internal/ham"
	"qisim/internal/pulse"
)

// CMOS1QConfig configures the CMOS single-qubit gate-error model.
type CMOS1QConfig struct {
	// GateTime is the microwave pulse duration (Table 2: 25 ns).
	GateTime float64
	// SampleRateHz is the digital sample rate of the drive DAC (2.5 GHz).
	SampleRateHz float64
	// Bits is the DAC amplitude precision (Opt-#2 sweeps this; 0 = ideal).
	Bits int
	// SNRdB is the analog chain's signal-to-noise ratio; <=0 disables noise.
	SNRdB float64
	// AnharmonicityHz is the transmon anharmonicity (negative).
	AnharmonicityHz float64
	// Theta is the target rotation angle; Axis 'x' or 'y'.
	Theta float64
	Axis  byte
	// DRAG enables the derivative-removal quadrature correction that
	// suppresses leakage through the |2> state.
	DRAG bool
	// Trials is the number of noise realisations averaged (default 8).
	Trials int
	// Seed fixes the noise RNG for reproducibility.
	Seed int64
}

// DefaultCMOS1QConfig returns the Table 2 setup: 25 ns Xπ/2-class gate at
// 2.5 GS/s with 14-bit precision and the Horse Ridge SNR.
func DefaultCMOS1QConfig() CMOS1QConfig {
	return CMOS1QConfig{
		GateTime:        25e-9,
		SampleRateHz:    2.5e9,
		Bits:            14,
		SNRdB:           44,
		AnharmonicityHz: -330e6,
		Theta:           math.Pi / 2,
		Axis:            'x',
		DRAG:            true,
		Trials:          8,
		Seed:            1,
	}
}

// CMOS1QResult reports the model output.
type CMOS1QResult struct {
	// Error is the mean average-gate-infidelity over noise trials.
	Error float64
	// CoherentError is the infidelity of the noiseless quantised pulse.
	CoherentError float64
	// Leakage is the |2>-state population left by the noiseless pulse.
	Leakage float64
}

// CMOS1QError runs the full model pipeline: envelope → digital samples →
// quantisation → Gaussian noise → 3-level Hamiltonian simulation → average
// gate infidelity vs. the ideal rotation.
func CMOS1QError(cfg CMOS1QConfig) CMOS1QResult {
	if cfg.Trials <= 0 {
		cfg.Trials = 8
	}
	n := int(math.Round(cfg.GateTime * cfg.SampleRateHz))
	if n < 4 {
		n = 4
	}
	ts := cfg.GateTime / float64(n)
	env := pulse.CosineEnvelope{}
	amps := pulse.Samples(env, n, cfg.GateTime)

	// Pulse area for a cosine envelope is T/2; set the Rabi rate so the
	// two-level rotation angle is Theta, then fine-calibrate the amplitude
	// scale against the 3-level simulation (experimental tune-up analogue).
	var area float64
	for _, a := range amps {
		area += a * ts
	}
	rabi := cfg.Theta / area
	alpha := 2 * math.Pi * cfg.AnharmonicityHz

	// DRAG quadrature: Q(t) = -Ȧ(t)/α (in envelope units).
	drag := make([]float64, n)
	if cfg.DRAG && alpha != 0 {
		for k := 0; k < n; k++ {
			t := (float64(k) + 0.5) * ts
			// derivative of the cosine envelope
			dA := math.Pi / cfg.GateTime * math.Sin(2*math.Pi*t/cfg.GateTime)
			drag[k] = -dA / alpha // envelope units: -Ȧ/α
		}
	}

	ideal := idealRotation(cfg.Theta, cfg.Axis)

	// One transmon + one evolution workspace serve every calibration probe:
	// the golden-section tune-up below re-runs simulate ~150 times, so the
	// per-sample Hamiltonians and propagator scratch are built in place.
	// The returned matrix is owned by the workspace and valid until the next
	// simulate call.
	d := ham.NewDrivenTransmon(3, 0, alpha, rabi)
	var ws ham.EvolveWorkspace
	hs := ws.HamiltonianBuffer(n, 3)
	uBuf := cmath.NewMatrix(3, 3)
	simulate := func(main, quad []float64, scale, detune float64) *cmath.Matrix {
		d.DetuningRad = detune
		d.RabiRad = rabi * scale
		for k := 0; k < n; k++ {
			// Axis 'x': envelope on I, DRAG on Q. Axis 'y': the gate phase
			// shifts by π/2, i.e. envelope on Q and -DRAG on I.
			if cfg.Axis == 'y' {
				d.HamiltonianInto(hs[k], -quad[k], main[k])
			} else {
				d.HamiltonianInto(hs[k], main[k], quad[k])
			}
		}
		ws.EvolveSamplesInto(uBuf, hs, ts)
		return uBuf
	}

	// Score on the computational subspace: the |2> level's free phase is
	// unobservable, but any population left there shrinks the 2x2 block's
	// norm, so leakage is still penalised.
	score := func(u *cmath.Matrix) float64 {
		u2 := cmath.QubitSubspace(u)
		return cmath.GateError(ideal, cmath.GlobalPhaseAlign(ideal, u2))
	}

	// Calibrate (scale, detuning) on the clean pulse — coordinate descent
	// with golden-section, exactly what an experimentalist's tune-up does.
	cleanI := make([]float64, n)
	copy(cleanI, amps)
	scale, detune := 1.0, 0.0
	for iter := 0; iter < 3; iter++ {
		scale = goldenMin(func(s float64) float64 {
			return score(simulate(cleanI, drag, s, detune))
		}, scale*0.98, scale*1.02, 24)
		detune = goldenMin(func(dt float64) float64 {
			return score(simulate(cleanI, drag, scale, dt))
		}, detune-2*math.Pi*3e6, detune+2*math.Pi*3e6, 24)
	}

	// Coherent (noiseless but quantised) pulse.
	qi := pulse.Quantize(cleanI, cfg.Bits)
	qq := pulse.Quantize(drag, cfg.Bits)
	uCoh := simulate(qi, qq, scale, detune).Clone()
	res := CMOS1QResult{CoherentError: score(uCoh)}
	v := uCoh.ApplyTo(cmath.BasisVec(3, 0))
	res.Leakage = real(v[2])*real(v[2]) + imag(v[2])*imag(v[2])

	if cfg.SNRdB <= 0 {
		res.Error = res.CoherentError
		return res
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sum float64
	for trial := 0; trial < cfg.Trials; trial++ {
		ni := pulse.AddNoiseSNR(qi, cfg.SNRdB, rng)
		nq := pulse.AddNoiseSNR(qq, cfg.SNRdB, rng)
		sum += score(simulate(ni, nq, scale, detune))
	}
	res.Error = sum / float64(cfg.Trials)
	return res
}

func idealRotation(theta float64, axis byte) *cmath.Matrix {
	if axis == 'y' {
		return cmath.Ry(theta)
	}
	return cmath.Rx(theta)
}

// goldenMin minimises f on [a, b] by golden-section search with n probes.
func goldenMin(f func(float64) float64, a, b float64, n int) float64 {
	const phi = 0.6180339887498949
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < n; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
	}
	if f1 < f2 {
		return x1
	}
	return x2
}

// DecoherenceFidelity returns the average fidelity of the combined
// amplitude-damping (T1) and dephasing (T2) channel over duration t:
//
//	F_avg(t) = 1/2 + e^{-t/T1}/6 + e^{-t/T2}/3
//
// (the Bloch–Redfield single-qubit result; F(0)=1, F(∞)=1/2).
func DecoherenceFidelity(t, t1, t2 float64) float64 {
	return 0.5 + math.Exp(-t/t1)/6 + math.Exp(-t/t2)/3
}

// WithDecoherence combines a coherent gate error with the decoherence channel
// over the gate duration, as the paper does for CMOS 1Q / readout validation.
func WithDecoherence(coherentError, t, t1, t2 float64) float64 {
	return 1 - (1-coherentError)*DecoherenceFidelity(t, t1, t2)
}
