package gateerror

import (
	"math"

	"qisim/internal/cmath"
	"qisim/internal/pulse"
)

// SFQ1QConfig configures the SFQ single-qubit gate-error model. The SFQ drive
// realises the basis gate Ry(π/2)·Rz(φ): each SFQ pulse applies a small
// y-rotation, and the qubit precesses about z between pulses (Section 2.3.2).
type SFQ1QConfig struct {
	// ClockHz is the SFQ controller clock (Table 2: 24 GHz).
	ClockHz float64
	// QubitFreqHz is the qubit frequency (pulses must align with its phase).
	QubitFreqHz float64
	// TiltPerPulse is the y-rotation per SFQ pulse in radians. Hardware sets
	// this via the pulse's coupled flux; typical values are a few mrad–tens
	// of mrad so a π/2 gate needs tens of pulses.
	TiltPerPulse float64
	// StreamBits is the bitstream length budget in clock cycles (the 21-bit
	// configuration of Fig. 9 uses 5-bit Ry selection; the physical stream
	// spans StreamBits cycles).
	StreamBits int
	// RzBits is the phase resolution of the Rz(φ) selection (16 in Fig. 9).
	RzBits int
	// MaxOptimizeIters bounds the iterative pulse-pair optimisation.
	MaxOptimizeIters int
	// AnharmonicityHz, when non-zero, scores the optimisation on the
	// 3-level transmon so the pulse spacing also suppresses |2> leakage —
	// the full bitstream-optimisation method of Li et al.
	AnharmonicityHz float64
}

// DefaultSFQ1QConfig returns the paper's SFQ drive setup.
func DefaultSFQ1QConfig() SFQ1QConfig {
	return SFQ1QConfig{
		ClockHz:          24e9,
		QubitFreqHz:      5e9,
		TiltPerPulse:     math.Pi / 2 / 60,
		StreamBits:       320,
		RzBits:           16,
		MaxOptimizeIters: 2000,
	}
}

// ValidationSFQ1QConfig reproduces the Table 1 validation point against the
// Li et al. reference (1.37e-5): a longer, finer-tilt stream whose optimised
// error lands at ~1.5e-5.
func ValidationSFQ1QConfig() SFQ1QConfig {
	cfg := DefaultSFQ1QConfig()
	cfg.TiltPerPulse = math.Pi / 2 / 80
	cfg.StreamBits = 480
	cfg.MaxOptimizeIters = 3000
	return cfg
}

// AnalysisSFQ1QConfig reproduces the Table 2 scalability-analysis operating
// point (~1.18e-4): a shorter stream with a coarser per-pulse tilt, trading
// fidelity for drive-circuit cost as the paper's 25 ns budget does.
func AnalysisSFQ1QConfig() SFQ1QConfig {
	cfg := DefaultSFQ1QConfig()
	cfg.TiltPerPulse = math.Pi / 2 / 26
	return cfg
}

// SFQ1QResult reports the SFQ single-qubit model output.
type SFQ1QResult struct {
	// Error is the average gate infidelity of the optimised bitstream
	// against Ry(π/2) (Rz(φ) folds in via the phase-precision term).
	Error float64
	// RzError is the additional error from the finite Rz phase precision.
	RzError float64
	// Pulses is the pulse count of the optimised stream.
	Pulses int
	// Duration is the stream length in seconds.
	Duration float64
	// Iterations is the number of optimisation steps taken.
	Iterations int
	// Train is the optimised bitstream.
	Train pulse.SFQTrain
}

// ComposeBitstream returns the two-level unitary realised by an SFQ pulse
// train: free z-precession of 2π·fq/fclk per clock cycle, interleaved with
// Ry(tilt) at each pulse. The result is expressed in the qubit rotating
// frame, i.e. the net frame rotation over the stream is removed.
func ComposeBitstream(train pulse.SFQTrain, fclk, fq, tilt float64) *cmath.Matrix {
	phasePerTick := 2 * math.Pi * fq / fclk
	// The two gate matrices are constant over the stream; building them once
	// and ping-ponging two product buffers keeps the optimizer's inner loop
	// (hundreds of ticks × thousands of score calls) allocation-free.
	ry := cmath.Ry(tilt)
	rz := cmath.Rz(phasePerTick)
	u := cmath.Identity(2)
	tmp := cmath.NewMatrix(2, 2)
	for _, p := range train {
		if p {
			cmath.MulInto(tmp, ry, u)
			u, tmp = tmp, u
		}
		cmath.MulInto(tmp, rz, u)
		u, tmp = tmp, u
	}
	// Undo the frame precession accumulated over the whole stream.
	total := phasePerTick * float64(len(train))
	cmath.MulInto(tmp, cmath.Rz(-total), u)
	return tmp
}

// ComposeBitstream3 evolves the same pulse train on a 3-level transmon: the
// SFQ kick drives the 1↔2 transition with √2 coupling, and the |2> level
// precesses with the extra anharmonic phase between pulses. It returns the
// full 3x3 operator, whose computational block shrinks by the leakage the
// 2-level model cannot see (the effect the bitstream-optimisation literature
// suppresses with harmonic-free pulse spacings).
func ComposeBitstream3(train pulse.SFQTrain, fclk, fq, anharmHz, tilt float64) *cmath.Matrix {
	phasePerTick := 2 * math.Pi * fq / fclk
	anhPerTick := 2 * math.Pi * anharmHz / fclk
	// Free precession per tick in the rotating frame of the qubit: |1> at 0,
	// |2> at the anharmonic offset.
	free := cmath.NewMatrix(3, 3)
	free.Set(0, 0, 1)
	free.Set(1, 1, cexpi(-phasePerTick))
	free.Set(2, 2, cexpi(-2*phasePerTick-anhPerTick))
	// Kick: exp(-i·(tilt/2)·(a+a†)_y) on 3 levels.
	a := cmath.Destroy(3)
	ad := cmath.Create(3)
	y := cmath.Scale(1i, cmath.Sub(ad, a))
	kick := cmath.Expm(cmath.Scale(complex(0, -tilt/2), y))

	u := cmath.Identity(3)
	tmp := cmath.NewMatrix(3, 3)
	for _, p := range train {
		if p {
			cmath.MulInto(tmp, kick, u)
			u, tmp = tmp, u
		}
		cmath.MulInto(tmp, free, u)
		u, tmp = tmp, u
	}
	// Undo the qubit frame rotation on |1> (and 2x on |2>).
	total := phasePerTick * float64(len(train))
	undo := cmath.NewMatrix(3, 3)
	undo.Set(0, 0, 1)
	undo.Set(1, 1, cexpi(total))
	undo.Set(2, 2, cexpi(2*total))
	cmath.MulInto(tmp, undo, u)
	return tmp
}

func cexpi(theta float64) complex128 {
	return complex(math.Cos(theta), math.Sin(theta))
}

// SFQ1QLeakage evaluates an optimised bitstream on the 3-level transmon and
// returns the leakage-inclusive error and the |2> population from |0> and
// |1> starts.
func SFQ1QLeakage(cfg SFQ1QConfig, anharmHz float64, train pulse.SFQTrain) (err, leak float64) {
	u3 := ComposeBitstream3(train, cfg.ClockHz, cfg.QubitFreqHz, anharmHz, cfg.TiltPerPulse)
	ideal := cmath.Ry(math.Pi / 2)
	u2 := cmath.QubitSubspace(u3)
	err = cmath.GateError(ideal, cmath.GlobalPhaseAlign(ideal, u2))
	for _, start := range []int{0, 1} {
		v := u3.ApplyTo(cmath.BasisVec(3, start))
		leak += real(v[2])*real(v[2]) + imag(v[2])*imag(v[2])
	}
	leak /= 2
	return
}

// SFQ1QError builds an initial phase-aligned bitstream for Ry(π/2) and then
// iteratively inserts/removes pulse pairs while the error decreases,
// following the bitstream-optimising method of Li et al. that the paper
// adopts (Section 4.4.2).
func SFQ1QError(cfg SFQ1QConfig) SFQ1QResult {
	if cfg.MaxOptimizeIters <= 0 {
		cfg.MaxOptimizeIters = 400
	}
	phasePerTick := 2 * math.Pi * cfg.QubitFreqHz / cfg.ClockHz
	need := int(math.Round(math.Pi / 2 / cfg.TiltPerPulse))

	// Initial stream: fire on the clock tick nearest each zero-crossing of
	// the qubit phase (pulses then share a common rotation axis).
	train := make(pulse.SFQTrain, cfg.StreamBits)
	placed := 0
	for k := 0; k < cfg.StreamBits && placed < need; k++ {
		ph := math.Mod(phasePerTick*float64(k), 2*math.Pi)
		if ph > math.Pi {
			ph -= 2 * math.Pi
		}
		if math.Abs(ph) <= phasePerTick/2 {
			train[k] = true
			placed++
		}
	}

	ideal := cmath.Ry(math.Pi / 2)
	score := func(tr pulse.SFQTrain) float64 {
		if cfg.AnharmonicityHz != 0 {
			u3 := ComposeBitstream3(tr, cfg.ClockHz, cfg.QubitFreqHz, cfg.AnharmonicityHz, cfg.TiltPerPulse)
			u2 := cmath.QubitSubspace(u3)
			return cmath.GateError(ideal, cmath.GlobalPhaseAlign(ideal, u2))
		}
		u := ComposeBitstream(tr, cfg.ClockHz, cfg.QubitFreqHz, cfg.TiltPerPulse)
		return cmath.GateError(ideal, cmath.GlobalPhaseAlign(ideal, u))
	}

	best := score(train)
	iters := 0
	improved := true
	for improved && iters < cfg.MaxOptimizeIters {
		improved = false
		// Single-bit flips: toggling one pulse position at a time is the
		// pulse-pair insertion/removal move of the reference method (a pair
		// is two successive accepted flips).
		for k := 0; k < len(train) && iters < cfg.MaxOptimizeIters; k++ {
			train[k] = !train[k]
			if s := score(train); s < best {
				best = s
				improved = true
			} else {
				train[k] = !train[k]
			}
			iters++
		}
	}

	// Rz(φ) precision: φ resolves to 2π/2^RzBits, worst-case phase error
	// half a step; infidelity of Rz(δ) vs I on average is δ²/6.
	var rzErr float64
	if cfg.RzBits > 0 {
		delta := math.Pi / float64(int64(1)<<cfg.RzBits)
		rzErr = delta * delta / 6
	}

	return SFQ1QResult{
		Error:      best + rzErr,
		RzError:    rzErr,
		Pulses:     train.Count(),
		Duration:   float64(len(train)) / cfg.ClockHz,
		Iterations: iters,
		Train:      train,
	}
}
