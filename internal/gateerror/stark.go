package gateerror

import (
	"math"

	"qisim/internal/cmath"
	"qisim/internal/ham"
	"qisim/internal/pulse"
)

// StarkConfig models frequency-multiplexed crosstalk: while the drive
// circuit plays a gate for one qubit, every other qubit on the shared line
// receives the same microwave off-resonantly and its state rotates about the
// z axis (the AC-Stark shift of Section 3.3.1). The Z-correction table of
// our extended NCO cancels exactly this.
type StarkConfig struct {
	// GateTime and SampleRateHz describe the aggressor pulse.
	GateTime     float64
	SampleRateHz float64
	// RabiRad is the aggressor's peak Rabi rate on ITS OWN qubit.
	RabiRad float64
	// DetuningHz is the victim's frequency offset from the drive tone.
	DetuningHz float64
	// Crosstalk is the relative drive amplitude reaching the victim (the
	// line is shared, so this is ~1 for FDM victims).
	Crosstalk float64
}

// DefaultStarkConfig returns a typical FDM neighbour: 80 MHz away on the
// same 25 ns π/2 drive line.
func DefaultStarkConfig() StarkConfig {
	return StarkConfig{
		GateTime:     25e-9,
		SampleRateHz: 2.5e9,
		RabiRad:      math.Pi / 2 / (12.5e-9), // π/2 with a cosine envelope
		DetuningHz:   80e6,
		Crosstalk:    1,
	}
}

// StarkResult compares the victim's error with and without Z correction.
type StarkResult struct {
	// Phase is the AC-Stark phase the victim acquires (radians) — the value
	// the Z-correction table stores.
	Phase float64
	// AnalyticPhase is the perturbative estimate (εΩ)²/(2Δ) · ∫env² dt.
	AnalyticPhase float64
	// Uncorrected is the victim's error vs the identity.
	Uncorrected float64
	// Corrected is the victim's error after the virtual-Rz correction.
	Corrected float64
	// Residual is the non-phase (excitation) part that no Z correction can
	// remove — it bounds Corrected.
	Residual float64
}

// StarkShift Hamiltonian-simulates the victim under the aggressor's
// microwave and evaluates the Z-correction benefit.
func StarkShift(cfg StarkConfig) StarkResult {
	n := int(math.Round(cfg.GateTime * cfg.SampleRateHz))
	if n < 8 {
		n = 8
	}
	ts := cfg.GateTime / float64(n)
	env := pulse.Samples(pulse.CosineEnvelope{}, n, cfg.GateTime)
	delta := 2 * math.Pi * cfg.DetuningHz

	d := ham.NewDrivenTransmon(2, delta, 0, cfg.RabiRad*cfg.Crosstalk)
	hs := make([]*cmath.Matrix, n)
	for k := 0; k < n; k++ {
		hs[k] = d.Hamiltonian(env[k], 0)
	}
	u := ham.EvolveSamples(hs, ts)
	// Remove the frame's own detuning rotation (the victim's NCO tracks its
	// own frequency, so only the drive-induced part is an error).
	u = cmath.Mul(cmath.Rz(-delta*cfg.GateTime), u)

	var r StarkResult
	// The acquired phase: relative phase between |0> and |1> amplitudes.
	p0 := math.Atan2(imag(u.At(0, 0)), real(u.At(0, 0)))
	p1 := math.Atan2(imag(u.At(1, 1)), real(u.At(1, 1)))
	r.Phase = wrapPi(p1 - p0)

	// Perturbative estimate with the envelope's squared area.
	var envSq float64
	for _, a := range env {
		envSq += a * a * ts
	}
	eff := cfg.RabiRad * cfg.Crosstalk
	r.AnalyticPhase = wrapPi(-eff * eff / (2 * delta) * envSq)

	id := cmath.Identity(2)
	r.Uncorrected = cmath.GateError(id, cmath.GlobalPhaseAlign(id, u))
	corr := cmath.Mul(cmath.Rz(-r.Phase), u)
	r.Corrected = cmath.GateError(id, cmath.GlobalPhaseAlign(id, corr))
	// Residual excitation: population transferred out of |0>.
	v := u.ApplyTo(cmath.BasisVec(2, 0))
	r.Residual = real(v[1])*real(v[1]) + imag(v[1])*imag(v[1])
	return r
}

func wrapPi(phi float64) float64 {
	for phi > math.Pi {
		phi -= 2 * math.Pi
	}
	for phi < -math.Pi {
		phi += 2 * math.Pi
	}
	return phi
}
