package gateerror

import (
	"math"
	"math/rand"

	"qisim/internal/cmath"
	"qisim/internal/ham"
	"qisim/internal/pulse"
)

// CZConfig configures the two-qubit (CZ) gate-error model shared by the CMOS
// and SFQ pulse circuits. The flux pulse detunes qubit 1 to the |11>↔|20>
// resonance; the envelope shape is the paper's central design question (the
// unit-step Horse Ridge II shape "almost cannot realize the CZ gate").
type CZConfig struct {
	// GateTime is the total pulse duration (Table 2: 50 ns).
	GateTime float64
	// SampleRateHz is the pulse DAC sample rate.
	SampleRateHz float64
	// Envelope is the pulse shape (FlatTopEnvelope or UnitStepEnvelope).
	Envelope pulse.Envelope
	// Bits quantises the pulse amplitude samples (0 = ideal).
	Bits int
	// NoiseSigma is the relative RMS thermal-noise amplitude on the flux
	// pulse (0 disables).
	NoiseSigma float64
	// AnharmonicityHz (negative) for both transmons.
	AnharmonicityHz float64
	// CouplingHz is the exchange coupling g.
	CouplingHz float64
	// IdleDetuningHz is qubit 1's idle detuning above qubit 2.
	IdleDetuningHz float64
	// Trials is the number of noise realisations (default 8).
	Trials int
	// Seed fixes the RNG.
	Seed int64
	// Calibrate enables amplitude-scale tune-up on the clean pulse (on by
	// default through NewDefault; disable to see the raw pulse).
	Calibrate bool
}

// DefaultCZConfig returns the Table 2 CZ setup: 50 ns flat-top pulse whose
// resonant hold (~35 ns at g = 2π·10 MHz) plus raised-cosine ramps fill the
// gate window.
func DefaultCZConfig() CZConfig {
	return CZConfig{
		GateTime:        50e-9,
		SampleRateHz:    2.5e9,
		Envelope:        pulse.FlatTopEnvelope{RampFrac: 0.14},
		Bits:            14,
		NoiseSigma:      6.7e-3,
		AnharmonicityHz: -300e6,
		CouplingHz:      10e6,
		IdleDetuningHz:  800e6,
		Trials:          8,
		Seed:            7,
		Calibrate:       true,
	}
}

// DefaultSFQCZConfig returns the SFQ pulse-circuit CZ setup: the SFQDC-cell
// DAC resolves fewer amplitude levels than the CMOS DAC (6 bits worth of
// SFQDC cells) and the flux line carries more thermal noise, reproducing the
// Table 2 SFQ 2Q error of ~1.09e-3.
func DefaultSFQCZConfig() CZConfig {
	cfg := DefaultCZConfig()
	cfg.Bits = 6
	cfg.NoiseSigma = 8e-3
	return cfg
}

// CZResult reports the CZ model output.
type CZResult struct {
	Error         float64 // mean infidelity over noise trials
	CoherentError float64 // noiseless quantised-pulse infidelity
	CondPhase     float64 // achieved conditional phase (want π)
}

// CZError runs the CZ pipeline: ideal pulse → quantisation → thermal noise →
// two-transmon Hamiltonian simulation → computational-subspace comparison
// with the ideal CZ (single-qubit phases stripped, as tracked by virtual Rz).
func CZError(cfg CZConfig) CZResult {
	if cfg.Trials <= 0 {
		cfg.Trials = 8
	}
	alpha := 2 * math.Pi * cfg.AnharmonicityHz
	g := 2 * math.Pi * cfg.CouplingHz
	idle := 2 * math.Pi * cfg.IdleDetuningHz
	sys := ham.NewCoupledTransmons(3, alpha, alpha, g, idle)
	resonance := sys.ResonanceDetuning()

	n := int(math.Round(cfg.GateTime * cfg.SampleRateHz))
	if n < 8 {
		n = 8
	}
	ts := cfg.GateTime / float64(n)

	ideal := ham.IdealCZ()
	// The calibration loops below re-run evolve ~100 times on the same 9×9
	// system, so the per-sample Hamiltonians and propagator scratch live in
	// one workspace and are rebuilt in place per call.
	var ws ham.EvolveWorkspace
	hs := ws.HamiltonianBuffer(n, 9)
	u9 := cmath.NewMatrix(9, 9)
	evolve := func(samples []float64, scale float64) *cmath.Matrix {
		for k := 0; k < n; k++ {
			// Envelope interpolates from idle detuning to the (scaled)
			// resonance point.
			delta := idle + (resonance*scale-idle)*samples[k]
			sys.HamiltonianInto(hs[k], delta)
		}
		ws.EvolveSamplesInto(u9, hs, ts)
		u4 := cmath.QubitSubspace2(u9, 3)
		return ham.StripSingleQubitPhases(u4)
	}
	score := func(u4 *cmath.Matrix) float64 { return cmath.GateError(ideal, u4) }

	// Calibration: amplitude scale always; for the flat-top shape also the
	// ramp fraction (it trades hold time against adiabaticity) — the
	// two-knob tune-up an experiment performs, and what the paper's Quanlse
	// ideal-pulse generation provides.
	scale := 1.0
	ft, tunable := cfg.Envelope.(pulse.FlatTopEnvelope)
	env := pulse.Samples(cfg.Envelope, n, cfg.GateTime)
	if cfg.Calibrate {
		if tunable {
			for iter := 0; iter < 2; iter++ {
				scale = goldenMin(func(s float64) float64 { return score(evolve(env, s)) }, 0.92, 1.08, 24)
				rf := goldenMin(func(r float64) float64 {
					e := pulse.Samples(pulse.FlatTopEnvelope{RampFrac: r}, n, cfg.GateTime)
					return score(evolve(e, scale))
				}, 0.04, 0.35, 24)
				ft.RampFrac = rf
				env = pulse.Samples(ft, n, cfg.GateTime)
			}
		}
		scale = goldenMin(func(s float64) float64 { return score(evolve(env, s)) }, 0.92, 1.08, 28)
	}

	q := pulse.Quantize(env, cfg.Bits)
	uCoh := evolve(q, scale)
	res := CZResult{CoherentError: score(uCoh)}
	res.CondPhase = math.Atan2(imag(uCoh.At(3, 3)), real(uCoh.At(3, 3)))

	if cfg.NoiseSigma <= 0 {
		res.Error = res.CoherentError
		return res
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var sum float64
	for trial := 0; trial < cfg.Trials; trial++ {
		noisy := make([]float64, n)
		for k := range noisy {
			noisy[k] = q[k] + cfg.NoiseSigma*rng.NormFloat64()
		}
		sum += score(evolve(noisy, scale))
	}
	res.Error = sum / float64(cfg.Trials)
	return res
}

// UnitStepCZError evaluates the Horse Ridge II-style unit-step pulse under
// the same calibration budget, demonstrating the pathology that motivated the
// paper's new AWG pulse circuits for both CMOS (Section 3.3.2) and SFQ
// (Section 3.4.2).
func UnitStepCZError() CZResult {
	cfg := DefaultCZConfig()
	cfg.Envelope = pulse.UnitStepEnvelope{}
	cfg.NoiseSigma = 0
	return CZError(cfg)
}
