package gateerror

import (
	"math"
	"testing"

	"qisim/internal/cmath"
	"qisim/internal/pulse"
)

func TestCMOS1QTable2Anchor(t *testing.T) {
	// Table 2 CMOS 1Q error (without decoherence): 8.17e-7. Our calibrated
	// model must land within a factor ~2 of the anchor.
	r := CMOS1QError(DefaultCMOS1QConfig())
	if r.Error < 3e-7 || r.Error > 1.8e-6 {
		t.Fatalf("CMOS 1Q error %.3g outside Table 2 anchor band around 8.17e-7", r.Error)
	}
	if r.CoherentError > r.Error {
		t.Fatal("coherent error cannot exceed the noisy total")
	}
	if r.Leakage > 1e-6 {
		t.Fatalf("DRAG-corrected leakage %.3g too high", r.Leakage)
	}
}

func TestCMOS1QNoiseMonotonic(t *testing.T) {
	cfg := DefaultCMOS1QConfig()
	cfg.Trials = 4
	var prev float64 = math.Inf(1)
	for _, snr := range []float64{35, 45, 55} {
		cfg.SNRdB = snr
		e := CMOS1QError(cfg).Error
		if e > prev {
			t.Fatalf("error should fall with SNR: %.3g at %v dB > %.3g", e, snr, prev)
		}
		prev = e
	}
}

func TestCMOS1QBitPrecisionSaturates(t *testing.T) {
	// Fig. 14(b): the 1Q gate error saturates around 9 bits; very coarse
	// precision must hurt.
	cfg := DefaultCMOS1QConfig()
	cfg.SNRdB = 0 // isolate quantisation
	errAt := func(bits int) float64 {
		cfg.Bits = bits
		return CMOS1QError(cfg).Error
	}
	e3, e9, e14 := errAt(3), errAt(9), errAt(14)
	if e3 < 10*e9 {
		t.Fatalf("3-bit error %.3g should be far above 9-bit %.3g", e3, e9)
	}
	if e14 > 2*e9+1e-9 {
		t.Fatalf("9-bit should be near saturation: e9=%.3g e14=%.3g", e9, e14)
	}
}

func TestCMOS1QDRAGHelps(t *testing.T) {
	cfg := DefaultCMOS1QConfig()
	cfg.SNRdB = 0
	withDRAG := CMOS1QError(cfg)
	cfg.DRAG = false
	without := CMOS1QError(cfg)
	if withDRAG.Leakage >= without.Leakage {
		t.Fatalf("DRAG should reduce leakage: %.3g vs %.3g", withDRAG.Leakage, without.Leakage)
	}
}

func TestCMOS1QAxisY(t *testing.T) {
	cfg := DefaultCMOS1QConfig()
	cfg.Axis = 'y'
	cfg.SNRdB = 0
	r := CMOS1QError(cfg)
	if r.Error > 1e-6 {
		t.Fatalf("y-axis gate error %.3g too high", r.Error)
	}
}

func TestSFQ1QValidationAnchor(t *testing.T) {
	// Table 1: model 1.51e-5 vs reference 1.37e-5.
	r := SFQ1QError(ValidationSFQ1QConfig())
	if r.Error < 5e-6 || r.Error > 4e-5 {
		t.Fatalf("SFQ 1Q validation error %.3g outside anchor band around 1.5e-5", r.Error)
	}
	if r.Pulses < 60 {
		t.Fatalf("optimised stream has too few pulses: %d", r.Pulses)
	}
}

func TestSFQ1QAnalysisAnchor(t *testing.T) {
	// Table 2 analysis point: 1.18e-4.
	r := SFQ1QError(AnalysisSFQ1QConfig())
	if r.Error < 4e-5 || r.Error > 3e-4 {
		t.Fatalf("SFQ 1Q analysis error %.3g outside anchor band around 1.18e-4", r.Error)
	}
	if r.Duration > 25e-9 {
		t.Fatalf("stream duration %v ns exceeds the 25 ns Table 2 budget", r.Duration*1e9)
	}
}

func TestSFQ1QOptimizerImproves(t *testing.T) {
	cfg := DefaultSFQ1QConfig()
	cfg.MaxOptimizeIters = 0 // sentinel handled as default; use 1 to disable
	cfg.MaxOptimizeIters = 1
	rough := SFQ1QError(cfg)
	cfg.MaxOptimizeIters = 2000
	tuned := SFQ1QError(cfg)
	if tuned.Error > rough.Error {
		t.Fatalf("optimisation should not worsen the stream: %.3g > %.3g", tuned.Error, rough.Error)
	}
}

func TestComposeBitstreamEmptyIsIdentity(t *testing.T) {
	tr := make(pulse.SFQTrain, 48) // 48 ticks at 24 GHz with 5 GHz qubit: 2ns idle
	u := ComposeBitstream(tr, 24e9, 5e9, 0.01)
	if e := cmath.GateError(cmath.Identity(2), u); e > 1e-12 {
		t.Fatalf("empty train should be identity in the rotating frame, error %.3g", e)
	}
}

func TestComposeBitstreamSinglePulse(t *testing.T) {
	tr := make(pulse.SFQTrain, 1)
	tr[0] = true
	tilt := 0.02
	u := ComposeBitstream(tr, 24e9, 5e9, tilt)
	// One pulse then frame-aligned precession: equivalent to Ry(tilt) up to
	// a z-rotation conjugation; check the rotation angle via the trace.
	tr2 := math.Abs(real(cmath.Trace(u)))
	want := 2 * math.Cos(tilt/2)
	if math.Abs(tr2-want) > 1e-9 {
		t.Fatalf("single-pulse rotation angle wrong: |Tr| = %v, want %v", tr2, want)
	}
}

func TestSFQ3LevelLeakage(t *testing.T) {
	// A train optimised on 2 levels leaks into |2>; scoring the optimiser on
	// the 3-level transmon (the full Li et al. method) suppresses it by an
	// order of magnitude.
	cfg := DefaultSFQ1QConfig()
	r2 := SFQ1QError(cfg)
	e2, leak2 := SFQ1QLeakage(cfg, -330e6, r2.Train)
	cfg3 := cfg
	cfg3.AnharmonicityHz = -330e6
	r3 := SFQ1QError(cfg3)
	e3, leak3 := SFQ1QLeakage(cfg3, -330e6, r3.Train)
	if leak2 < 1e-5 {
		t.Fatalf("2-level-optimised train should leak visibly, got %.3g", leak2)
	}
	if e3 > e2/5 {
		t.Fatalf("3-level optimisation should cut the error >5x: %.3g → %.3g", e2, e3)
	}
	if leak3 > leak2/5 {
		t.Fatalf("3-level optimisation should cut leakage >5x: %.3g → %.3g", leak2, leak3)
	}
}

func TestComposeBitstream3ReducesTo2Level(t *testing.T) {
	// With huge anharmonicity the |2> level decouples and the 3-level
	// computational block matches the 2-level composition.
	cfg := DefaultSFQ1QConfig()
	r := SFQ1QError(cfg)
	u2 := ComposeBitstream(r.Train, cfg.ClockHz, cfg.QubitFreqHz, cfg.TiltPerPulse)
	u3 := ComposeBitstream3(r.Train, cfg.ClockHz, cfg.QubitFreqHz, -330e6, cfg.TiltPerPulse/1000)
	_ = u3 // tiny tilt: both near identity; main check below at real tilt
	e, _ := SFQ1QLeakage(cfg, -330e6, r.Train)
	base := cmath.GateError(cmath.Ry(math.Pi/2), cmath.GlobalPhaseAlign(cmath.Ry(math.Pi/2), u2))
	// The 3-level error must be at least the 2-level error (leakage only
	// adds error).
	if e < base-1e-9 {
		t.Fatalf("3-level error %.3g below 2-level %.3g", e, base)
	}
}

func TestCZTable2Anchor(t *testing.T) {
	// Table 2 CMOS CZ error: 7.8e-4; Table 1 model value 1.09e-3 for SFQ.
	r := CZError(DefaultCZConfig())
	if r.Error < 3e-4 || r.Error > 1.6e-3 {
		t.Fatalf("CZ error %.3g outside anchor band around 7.8e-4", r.Error)
	}
	if math.Abs(math.Abs(r.CondPhase)-math.Pi) > 0.02 {
		t.Fatalf("conditional phase %v not π", r.CondPhase)
	}
}

func TestCZSFQAnchor(t *testing.T) {
	r := CZError(DefaultSFQCZConfig())
	if r.Error < 4e-4 || r.Error > 2.5e-3 {
		t.Fatalf("SFQ CZ error %.3g outside anchor band around 1.09e-3", r.Error)
	}
}

func TestUnitStepCZPathology(t *testing.T) {
	// Section 3.3.2: "the unit-step voltage almost cannot realize the CZ
	// gate" — the error must be orders of magnitude above the ramped pulse.
	ramped := CZError(DefaultCZConfig())
	step := UnitStepCZError()
	if step.Error < 50*ramped.Error {
		t.Fatalf("unit step error %.3g should dwarf ramped %.3g", step.Error, ramped.Error)
	}
	if step.Error < 0.02 {
		t.Fatalf("unit-step CZ error %.3g implausibly low", step.Error)
	}
}

func TestCZNoiseMonotonic(t *testing.T) {
	cfg := DefaultCZConfig()
	cfg.Trials = 4
	var prev float64
	for _, sig := range []float64{0, 3e-3, 9e-3} {
		cfg.NoiseSigma = sig
		e := CZError(cfg).Error
		if e < prev {
			t.Fatalf("CZ error should grow with flux noise: %.3g at σ=%v < %.3g", e, sig, prev)
		}
		prev = e
	}
}

func TestDecoherenceFidelityLimits(t *testing.T) {
	if f := DecoherenceFidelity(0, 100e-6, 100e-6); math.Abs(f-1) > 1e-12 {
		t.Fatalf("F(0) = %v, want 1", f)
	}
	if f := DecoherenceFidelity(1, 100e-6, 100e-6); math.Abs(f-0.5) > 1e-3 {
		t.Fatalf("F(∞) = %v, want 0.5", f)
	}
	// Monotone decreasing in t.
	f1 := DecoherenceFidelity(10e-9, 100e-6, 100e-6)
	f2 := DecoherenceFidelity(100e-9, 100e-6, 100e-6)
	if f2 >= f1 {
		t.Fatal("decoherence fidelity must decrease with time")
	}
}

func TestWithDecoherenceIBMAnchor(t *testing.T) {
	// Table 1: CMOS 1Q incl. decoherence — model 6.07e-5 vs ibm_peekskill
	// 6.59e-5, using the reference machine's T1/T2.
	coh := CMOS1QError(DefaultCMOS1QConfig()).Error
	total := WithDecoherence(coh, 25e-9, 280e-6, 175e-6)
	if total < 4e-5 || total > 9e-5 {
		t.Fatalf("decoherence-included 1Q error %.3g outside ibm_peekskill band", total)
	}
}

func TestGoldenMinFindsMinimum(t *testing.T) {
	got := goldenMin(func(x float64) float64 { return (x - 0.37) * (x - 0.37) }, 0, 1, 40)
	if math.Abs(got-0.37) > 1e-6 {
		t.Fatalf("goldenMin = %v, want 0.37", got)
	}
}
