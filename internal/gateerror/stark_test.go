package gateerror

import (
	"math"
	"testing"
)

func TestStarkPhaseMatchesPerturbation(t *testing.T) {
	r := StarkShift(DefaultStarkConfig())
	if r.Phase == 0 {
		t.Fatal("FDM victim must acquire an AC-Stark phase")
	}
	// The perturbative estimate (εΩ)²/(2Δ)·∫env² should agree within ~15%.
	if math.Abs(r.Phase-r.AnalyticPhase) > 0.15*math.Abs(r.AnalyticPhase) {
		t.Fatalf("simulated phase %.4f vs analytic %.4f disagree", r.Phase, r.AnalyticPhase)
	}
}

func TestZCorrectionBenefit(t *testing.T) {
	// Section 3.3.1: without Z correction the AC-Stark shift is a large
	// coherent error; the extended NCO's table removes it down to the
	// unavoidable residual-excitation floor.
	r := StarkShift(DefaultStarkConfig())
	if r.Corrected > r.Uncorrected/20 {
		t.Fatalf("Z correction should cut the error >20x: %.3g → %.3g", r.Uncorrected, r.Corrected)
	}
	if r.Corrected > 3*r.Residual+1e-9 {
		t.Fatalf("corrected error %.3g should approach the residual-excitation floor %.3g", r.Corrected, r.Residual)
	}
}

func TestStarkShiftScalesInverselyWithDetuning(t *testing.T) {
	cfg := DefaultStarkConfig()
	r1 := StarkShift(cfg)
	cfg.DetuningHz *= 2
	r2 := StarkShift(cfg)
	// φ ∝ 1/Δ.
	ratio := r1.Phase / r2.Phase
	if ratio < 1.6 || ratio > 2.6 {
		t.Fatalf("doubling detuning should halve the Stark phase: ratio %.2f", ratio)
	}
}

func TestStarkShiftScalesWithCrosstalkSquared(t *testing.T) {
	cfg := DefaultStarkConfig()
	full := StarkShift(cfg)
	cfg.Crosstalk = 0.5
	half := StarkShift(cfg)
	ratio := full.Phase / half.Phase
	if ratio < 3.3 || ratio > 4.8 {
		t.Fatalf("phase should scale with crosstalk²: ratio %.2f, want ~4", ratio)
	}
}

func TestStarkNoCrosstalkNoError(t *testing.T) {
	cfg := DefaultStarkConfig()
	cfg.Crosstalk = 0
	r := StarkShift(cfg)
	if r.Uncorrected > 1e-10 || math.Abs(r.Phase) > 1e-9 {
		t.Fatalf("no crosstalk must mean no victim error, got %.3g / phase %.3g", r.Uncorrected, r.Phase)
	}
}
