// Package sfq models the superconducting single-flux-quantum circuits of the
// SFQ-based QCI: an RSFQ/ERSFQ cell library, circuit composition with JJ
// counts and critical-path depth, and static/dynamic power and frequency
// estimation. It substitutes for the paper's Yosys+XQsim synthesis flow: the
// framework consumes only per-circuit {JJ count, static power, dynamic
// energy, fmax}, which this model provides and which we validate against the
// post-layout anchor values of Fig. 10.
package sfq

import (
	"fmt"
	"math"

	"qisim/internal/phys"
)

// Tech selects the SFQ logic family.
type Tech int

const (
	// RSFQ is resistor-biased rapid SFQ: static power in every bias resistor.
	RSFQ Tech = iota
	// ERSFQ is the energy-efficient variant with inductive biasing: zero
	// static power, roughly doubled switching energy (the feeding JJ also
	// switches).
	ERSFQ
)

func (t Tech) String() string {
	if t == ERSFQ {
		return "ERSFQ"
	}
	return "RSFQ"
}

// Device carries the per-JJ device parameters of the fabrication process.
type Device struct {
	Tech Tech
	// CriticalCurrentA is the JJ critical current Ic (MITLL SFQ5ee: 100 µA).
	CriticalCurrentA float64
	// BiasVoltageV is the bias-network voltage for RSFQ static power.
	BiasVoltageV float64
	// BiasFraction is Ib/Ic (typically 0.7).
	BiasFraction float64
	// IcScale scales Ic for mK operation (the paper applies 0.01·Ic to
	// 20 mK devices following Howington/McDermott).
	IcScale float64
	// GateDelayS is the per-stage logic delay limiting fmax.
	GateDelayS float64
}

// MITLLSFQ5ee returns the MIT-LL SFQ5ee-process device used for the 4 K
// circuits (chosen by the paper to keep the artifact open-source).
func MITLLSFQ5ee(tech Tech) Device {
	return Device{
		Tech:             tech,
		CriticalCurrentA: 100e-6,
		BiasVoltageV:     2.6e-3,
		BiasFraction:     0.7,
		IcScale:          1,
		GateDelayS:       5.2e-12,
	}
}

// MKDevice returns the 20 mK variant with Ic scaled by 0.01.
func MKDevice(tech Tech) Device {
	d := MITLLSFQ5ee(tech)
	d.IcScale = 0.01
	return d
}

// StaticPowerPerJJ returns the bias-network dissipation per junction.
func (d Device) StaticPowerPerJJ() float64 {
	if d.Tech == ERSFQ {
		return 0
	}
	return d.CriticalCurrentA * d.IcScale * d.BiasFraction * d.BiasVoltageV
}

// SwitchEnergyPerJJ returns the energy of one 2π phase slip, Ic·Φ0 (doubled
// for ERSFQ's bias-JJ co-switching).
func (d Device) SwitchEnergyPerJJ() float64 {
	e := d.CriticalCurrentA * d.IcScale * phys.Phi0
	if d.Tech == ERSFQ {
		e *= 2
	}
	return e
}

// Cell is one SFQ logic cell type.
type Cell struct {
	Name string
	JJs  int
}

// The cell library (JJ counts follow the ColdFlux SFQ5ee library scale).
var (
	JTL   = Cell{"jtl", 2}
	DFF   = Cell{"dff", 6}
	NDRO  = Cell{"ndro", 11}
	Split = Cell{"split", 3}
	Merge = Cell{"merge", 7}
	And   = Cell{"and", 11}
	Or    = Cell{"or", 9}
	Not   = Cell{"not", 10}
	Xor   = Cell{"xor", 8}
	SFQDC = Cell{"sfqdc", 12} // SFQ-to-DC converter cell of the pulse circuit
)

// Circuit is a composed SFQ circuit: named cell counts plus pipeline depth.
type Circuit struct {
	Name  string
	Cells map[Cell]int
	// Depth is the critical-path stage count limiting fmax.
	Depth int
	// Activity is the average per-JJ switching probability per clock cycle
	// under the ESM workload (from the cycle-accurate simulator; stored here
	// as the calibrated default).
	Activity float64
}

// NewCircuit returns an empty circuit.
func NewCircuit(name string, depth int, activity float64) *Circuit {
	return &Circuit{Name: name, Cells: make(map[Cell]int), Depth: depth, Activity: activity}
}

// Add includes n instances of cell c.
func (c *Circuit) Add(cell Cell, n int) *Circuit {
	c.Cells[cell] += n
	return c
}

// JJCount returns the total junction count.
func (c *Circuit) JJCount() int {
	total := 0
	for cell, n := range c.Cells {
		total += cell.JJs * n
	}
	return total
}

// StaticPower returns the circuit's static dissipation on the given device.
func (c *Circuit) StaticPower(d Device) float64 {
	return float64(c.JJCount()) * d.StaticPowerPerJJ()
}

// DynamicPower returns switching power at clock f with the circuit's
// activity factor.
func (c *Circuit) DynamicPower(d Device, f float64) float64 {
	return float64(c.JJCount()) * c.Activity * f * d.SwitchEnergyPerJJ()
}

// TotalPower is static + dynamic at clock f.
func (c *Circuit) TotalPower(d Device, f float64) float64 {
	return c.StaticPower(d) + c.DynamicPower(d, f)
}

// FMax returns the depth-limited maximum clock frequency.
func (c *Circuit) FMax(d Device) float64 {
	if c.Depth <= 0 {
		return math.Inf(1)
	}
	return 1 / (float64(c.Depth) * d.GateDelayS)
}

func (c *Circuit) String() string {
	return fmt.Sprintf("%s{JJs: %d, depth: %d}", c.Name, c.JJCount(), c.Depth)
}

// DriveSpec parameterises the SFQ drive-circuit builders (Fig. 5).
type DriveSpec struct {
	Qubits int // qubits per drive group (8 in the Fig. 9 layouts)
	BS     int // #BS: simultaneous bitstreams (8 baseline; Opt-#5 → 1)
	RyBits int // Ry(π/2) selection bits (5)
	RzBits int // Rz(φ) selection bits (16) → 2^8 φ values materialised
	// PhiValues is the number of distinct Rz(φ) streams the bitstream
	// generator materialises (256 in Opt-#4's description).
	PhiValues int
	// StreamLen is the pulse-stream length in DFF stages per output register.
	StreamLen int
}

// DefaultDriveSpec matches the Fig. 9 post-layout configuration: 21-bit
// bitstream (5-bit Ry, 16-bit Rz), eight qubits, #BS = 8.
func DefaultDriveSpec() DriveSpec {
	return DriveSpec{Qubits: 8, BS: 8, RyBits: 5, RzBits: 16, PhiValues: 256, StreamLen: 12}
}

// ControlDataBuffer builds the per-group instruction buffer: shift registers
// that collect next-instruction bits (clocked by Valid) feeding an NDRO
// memory broadcast every cycle (Section 3.4.1 re-design).
func ControlDataBuffer(s DriveSpec) *Circuit {
	bits := s.RyBits + s.RzBits + s.Qubits // bitstream select + per-qubit gate select
	c := NewCircuit("control-data-buffer", 12, 0.02)
	c.Add(DFF, bits)   // shift register stages
	c.Add(NDRO, bits)  // non-destructive readout memory
	c.Add(Split, bits) // fanout of Go/Valid
	c.Add(JTL, 4*bits) // interconnect
	return c
}

// BitstreamGenerator builds the baseline generator: one output shift
// register per φ value (256 output shift registers), each StreamLen DFFs
// deep plus fanout and interconnect — the power hog Opt-#4 eliminates.
// Counts are calibrated so the generator carries ~23.6% of the per-qubit 4 K
// power, matching the Fig. 16/18 breakdown.
func BitstreamGenerator(s DriveSpec) *Circuit {
	c := NewCircuit("bitstream-generator", 10, 0.05)
	c.Add(DFF, s.PhiValues*s.StreamLen)
	c.Add(Split, s.PhiValues*6)
	c.Add(JTL, s.PhiValues*14)
	return c
}

// LowPowerBitstreamGenerator builds the Opt-#4 re-design: a single
// splitter-equipped shift register holding the Rz(NΔφ)·Ry(π/2) pulse whose
// taps broadcast to the φ outputs — ~98% fewer JJs.
func LowPowerBitstreamGenerator(s DriveSpec) *Circuit {
	c := NewCircuit("bitstream-generator-lp", 10, 0.05)
	c.Add(DFF, s.StreamLen+s.RzBits) // the one shared register
	c.Add(Split, s.PhiValues)        // per-φ output taps
	c.Add(JTL, s.PhiValues/2)
	return c
}

// BitstreamController builds the #BS-way stream selector: each of the BS
// lanes muxes one of the φ streams and broadcasts it to the per-qubit
// controllers. Its cost is what Opt-#5 attacks by cutting #BS to 1.
func BitstreamController(s DriveSpec) *Circuit {
	c := NewCircuit("bitstream-controller", 14, 0.04)
	// Per lane: a PhiValues-wide NDRO select tree, its merge tree, and the
	// PTL/JTL interconnect that dominates routed SFQ chips.
	c.Add(NDRO, s.BS*s.PhiValues)
	c.Add(Merge, s.BS*(s.PhiValues-1))
	c.Add(Split, s.BS*s.PhiValues/2)
	c.Add(JTL, s.BS*s.PhiValues*3)
	return c
}

// PerQubitController builds the per-qubit BS-to-1 selector.
func PerQubitController(s DriveSpec) *Circuit {
	c := NewCircuit("per-qubit-controller", 8, 0.04)
	per := s.BS*16 + 24
	c.Add(NDRO, s.Qubits*per/8)
	c.Add(Merge, s.Qubits*per/10)
	c.Add(JTL, s.Qubits*per)
	return c
}

// PulseCircuit builds the Opt-capable SFQ pulse circuit (Fig. 5(c)): the
// SFQDC controller with per-subgroup CZ-select bitstreams at 4 K plus the
// per-qubit SFQDC cell banks.
func PulseCircuit(qubits, subgroups, amplitudeBits int) *Circuit {
	c := NewCircuit("pulse-circuit", 12, 0.03)
	cellsPerQubit := 1 << amplitudeBits // unary-weighted SFQDC bank
	if cellsPerQubit < 8 {
		cellsPerQubit = 8
	}
	c.Add(SFQDC, qubits*cellsPerQubit)
	c.Add(DFF, subgroups*96) // per-subgroup CZ-select bitstream storage
	c.Add(NDRO, qubits*8)    // per-qubit mask
	c.Add(Split, qubits*16)
	c.Add(JTL, qubits*160)
	return c
}

// ReadoutFrontEnd builds the 4 K circuits that send/receive SFQ pulses
// to/from the mK JPM readout circuit (Section 3.4.3-iii), including the
// resonator-driving and JPM-pulse variants of the drive/pulse circuits.
func ReadoutFrontEnd(qubits int) *Circuit {
	c := NewCircuit("readout-frontend", 10, 0.02)
	c.Add(DFF, qubits*96)
	c.Add(NDRO, qubits*24)
	c.Add(Merge, qubits*12)
	c.Add(Split, qubits*16)
	c.Add(JTL, qubits*320)
	return c
}

// MKJPMReadout builds the 20 mK JPM readout circuit (per shared group): the
// LJJ trains and per-JPM couplers are inductance-biased (zero static power),
// so only the fixed discriminating core (clock/data DFF comparator, merge
// tree, output driver) carries bias power. With Opt-#3 one such core serves
// `sharing` JPMs, dividing the per-qubit mK static power by exactly the
// sharing degree — the "eight times" of the paper.
func MKJPMReadout(sharing int) *Circuit {
	c := NewCircuit("mk-jpm-readout", 6, 0.01)
	c.Add(DFF, 4)
	c.Add(Merge, 2)
	c.Add(Split, 2)
	c.Add(NDRO, 1)
	c.Add(JTL, 8)
	_ = sharing // LJJ couplers per JPM are zero-static; core is shared
	return c
}
