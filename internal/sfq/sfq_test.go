package sfq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeviceStaticPower(t *testing.T) {
	d := MITLLSFQ5ee(RSFQ)
	// 100 µA · 0.7 · 2.6 mV = 182 nW per JJ.
	if got := d.StaticPowerPerJJ(); math.Abs(got-182e-9) > 1e-12 {
		t.Fatalf("RSFQ static/JJ = %v, want 182 nW", got)
	}
	if MITLLSFQ5ee(ERSFQ).StaticPowerPerJJ() != 0 {
		t.Fatal("ERSFQ static power must be zero (inductive biasing)")
	}
}

func TestSwitchEnergy(t *testing.T) {
	r := MITLLSFQ5ee(RSFQ).SwitchEnergyPerJJ()
	e := MITLLSFQ5ee(ERSFQ).SwitchEnergyPerJJ()
	if math.Abs(e-2*r) > 1e-30 {
		t.Fatal("ERSFQ switch energy should be 2x RSFQ (bias JJ co-switch)")
	}
	// Ic·Φ0 ≈ 2.07e-19 J.
	if r < 2.0e-19 || r > 2.2e-19 {
		t.Fatalf("RSFQ switch energy %.3g J implausible", r)
	}
}

func TestMKIcScaling(t *testing.T) {
	d4k := MITLLSFQ5ee(RSFQ)
	dmk := MKDevice(RSFQ)
	if math.Abs(dmk.StaticPowerPerJJ()-0.01*d4k.StaticPowerPerJJ()) > 1e-18 {
		t.Fatal("mK device must apply the 0.01 Ic scaling to static power")
	}
	if math.Abs(dmk.SwitchEnergyPerJJ()-0.01*d4k.SwitchEnergyPerJJ()) > 1e-30 {
		t.Fatal("mK device must apply the 0.01 Ic scaling to switch energy")
	}
}

func TestCircuitComposition(t *testing.T) {
	c := NewCircuit("x", 5, 0.1)
	c.Add(DFF, 10).Add(JTL, 20)
	if got := c.JJCount(); got != 10*6+20*2 {
		t.Fatalf("JJ count = %d", got)
	}
	d := MITLLSFQ5ee(RSFQ)
	if c.StaticPower(d) <= 0 || c.DynamicPower(d, 24e9) <= 0 {
		t.Fatal("powers must be positive")
	}
	if c.FMax(d) != 1/(5*d.GateDelayS) {
		t.Fatal("fmax formula changed")
	}
}

func TestFMaxAboveSFQClock(t *testing.T) {
	// Every drive-path circuit must close timing at the 24 GHz Table 2 clock
	// — except the deep select trees, which are internally pipelined; their
	// fmax must still be within 2x of the clock.
	d := MITLLSFQ5ee(RSFQ)
	s := DefaultDriveSpec()
	for _, c := range []*Circuit{ControlDataBuffer(s), BitstreamGenerator(s), LowPowerBitstreamGenerator(s), PerQubitController(s)} {
		if c.FMax(d) < 24e9/2 {
			t.Errorf("%s fmax %.1f GHz too far below the 24 GHz clock", c.Name, c.FMax(d)/1e9)
		}
	}
}

func TestOpt4BitgenReduction(t *testing.T) {
	// Opt-#4: the splitter-based generator removes ~98% of the baseline's
	// JJs (paper: 98.2% of bitgen power).
	s := DefaultDriveSpec()
	d := MITLLSFQ5ee(RSFQ)
	base := BitstreamGenerator(s).StaticPower(d)
	lp := LowPowerBitstreamGenerator(s).StaticPower(d)
	red := 1 - lp/base
	if red < 0.93 || red > 0.999 {
		t.Fatalf("Opt-#4 bitgen reduction %.3f, want ~0.98", red)
	}
}

func TestOpt5ControllerScaling(t *testing.T) {
	// Opt-#5: controllers scale with #BS; 8→1 must save ~43.8% of the 4 K
	// drive-group power.
	s := DefaultDriveSpec()
	d := MITLLSFQ5ee(RSFQ)
	group := func(sp DriveSpec) float64 {
		return ControlDataBuffer(sp).StaticPower(d) +
			BitstreamGenerator(sp).StaticPower(d) +
			BitstreamController(sp).StaticPower(d) +
			PerQubitController(sp).StaticPower(d) +
			PulseCircuit(sp.Qubits, 4, 6).StaticPower(d) +
			ReadoutFrontEnd(sp.Qubits).StaticPower(d)
	}
	base := group(s)
	s1 := s
	s1.BS = 1
	save := 1 - group(s1)/base
	if save < 0.38 || save > 0.50 {
		t.Fatalf("Opt-#5 saving %.3f, want ~0.438", save)
	}
}

func TestBaselinePerQubitPower(t *testing.T) {
	// Calibration check: baseline RSFQ per-qubit 4 K power ≈ 2.6 mW, which
	// bounds the baseline at <600 qubits from 4 K alone (Fig. 13(b)).
	s := DefaultDriveSpec()
	d := MITLLSFQ5ee(RSFQ)
	tot := ControlDataBuffer(s).StaticPower(d) +
		BitstreamGenerator(s).StaticPower(d) +
		BitstreamController(s).StaticPower(d) +
		PerQubitController(s).StaticPower(d) +
		PulseCircuit(s.Qubits, 4, 6).StaticPower(d) +
		ReadoutFrontEnd(s.Qubits).StaticPower(d)
	perQubit := tot / float64(s.Qubits)
	if perQubit < 2.2e-3 || perQubit > 3.2e-3 {
		t.Fatalf("per-qubit 4K RSFQ power %.3g W outside calibration band ~2.6 mW", perQubit)
	}
}

func TestMKReadoutSharingExactly8x(t *testing.T) {
	// Opt-#3: one mK core per 8 JPMs divides per-qubit mK static by 8.
	d := MKDevice(RSFQ)
	core := MKJPMReadout(1).StaticPower(d)
	perQubitUnshared := core
	perQubitShared := MKJPMReadout(8).StaticPower(d) / 8
	if math.Abs(perQubitUnshared/perQubitShared-8) > 1e-9 {
		t.Fatalf("sharing ratio = %v, want exactly 8", perQubitUnshared/perQubitShared)
	}
	// ~129 nW/qubit unshared → <160 qubits under the 20 µW budget.
	if n := int(20e-6 / perQubitUnshared); n < 120 || n > 200 {
		t.Fatalf("unshared mK-limited qubit count %d, want ~155 (paper <160)", n)
	}
	if n := int(20e-6 / perQubitShared); n < 1100 || n > 1400 {
		t.Fatalf("shared mK-limited qubit count %d, want ~1,240 (paper 1,248)", n)
	}
}

func TestERSFQEliminatesStatic(t *testing.T) {
	s := DefaultDriveSpec()
	e := MITLLSFQ5ee(ERSFQ)
	c := BitstreamController(s)
	if c.StaticPower(e) != 0 {
		t.Fatal("ERSFQ circuit must have zero static power")
	}
	if c.DynamicPower(e, 24e9) <= 0 {
		t.Fatal("ERSFQ circuit must still dissipate dynamically")
	}
}

func TestDynamicPowerLinearInFrequency(t *testing.T) {
	d := MITLLSFQ5ee(RSFQ)
	c := PulseCircuit(8, 4, 6)
	p24 := c.DynamicPower(d, 24e9)
	p48 := c.DynamicPower(d, 48e9)
	if math.Abs(p48-2*p24) > 1e-15 {
		t.Fatal("dynamic power must be linear in clock frequency")
	}
}

func TestQuickCircuitPowerMonotonicInCells(t *testing.T) {
	d := MITLLSFQ5ee(RSFQ)
	f := func(n uint8) bool {
		a := NewCircuit("a", 4, 0.05).Add(DFF, int(n))
		b := NewCircuit("b", 4, 0.05).Add(DFF, int(n)+1)
		return b.StaticPower(d) > a.StaticPower(d) || n == 0 && a.StaticPower(d) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTechString(t *testing.T) {
	if RSFQ.String() != "RSFQ" || ERSFQ.String() != "ERSFQ" {
		t.Fatal("Tech strings changed")
	}
}
