// Package cryo models the dilution refrigerator's temperature stages and
// their cooling budgets (Table 2: 1.5 W at 4 K, 200 µW at 100 mK, 20 µW at
// 20 mK), and reports per-stage utilisation for a candidate QCI design.
package cryo

import (
	"fmt"
	"sort"
	"strings"

	"qisim/internal/wiring"
)

// Budgets carries the cooling capacity of each stage in watts.
type Budgets map[wiring.Stage]float64

// DefaultBudgets returns the Table 2 / Krinner et al. capacities.
func DefaultBudgets() Budgets {
	return Budgets{
		wiring.Stage4K:    1.5,
		wiring.Stage100mK: 200e-6,
		wiring.Stage20mK:  20e-6,
	}
}

// ExtendedBudgets adds the 70 K stage (30 W, Krinner et al.) of the Section
// 7.3 extension, at which power-hungry components can be re-homed.
func ExtendedBudgets() Budgets {
	b := DefaultBudgets()
	b[wiring.Stage70K] = 30
	return b
}

// Report is the per-stage power accounting of one design point.
type Report struct {
	Budgets Budgets
	// PowerW is the total dissipation per stage.
	PowerW map[wiring.Stage]float64
}

// NewReport returns an empty report against the given budgets.
func NewReport(b Budgets) *Report {
	return &Report{Budgets: b, PowerW: make(map[wiring.Stage]float64)}
}

// Add accumulates power at a stage.
func (r *Report) Add(s wiring.Stage, w float64) { r.PowerW[s] += w }

// Utilization returns power/budget for a stage.
func (r *Report) Utilization(s wiring.Stage) float64 {
	b := r.Budgets[s]
	if b <= 0 {
		return 0
	}
	return r.PowerW[s] / b
}

// WithinBudget reports whether every stage is at or below capacity.
func (r *Report) WithinBudget() bool {
	for s, b := range r.Budgets {
		if r.PowerW[s] > b {
			return false
		}
	}
	return true
}

// BindingStage returns the stage with the highest utilisation.
func (r *Report) BindingStage() wiring.Stage {
	best := wiring.Stage4K
	bu := -1.0
	for s := range r.Budgets {
		if u := r.Utilization(s); u > bu {
			bu, best = u, s
		}
	}
	return best
}

// String renders the report.
func (r *Report) String() string {
	stages := make([]wiring.Stage, 0, len(r.Budgets))
	for s := range r.Budgets {
		stages = append(stages, s)
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i] < stages[j] })
	var b strings.Builder
	for _, s := range stages {
		fmt.Fprintf(&b, "%-6s %12.4g W / %8.4g W (%.1f%%)\n",
			s, r.PowerW[s], r.Budgets[s], 100*r.Utilization(s))
	}
	return b.String()
}
