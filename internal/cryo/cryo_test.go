package cryo

import (
	"math"
	"strings"
	"testing"

	"qisim/internal/wiring"
)

func TestDefaultBudgetsTable2(t *testing.T) {
	b := DefaultBudgets()
	if b[wiring.Stage4K] != 1.5 || b[wiring.Stage100mK] != 200e-6 || b[wiring.Stage20mK] != 20e-6 {
		t.Fatalf("budgets %+v do not match Table 2", b)
	}
}

func TestReportAccumulation(t *testing.T) {
	r := NewReport(DefaultBudgets())
	r.Add(wiring.Stage4K, 0.5)
	r.Add(wiring.Stage4K, 0.25)
	if math.Abs(r.Utilization(wiring.Stage4K)-0.5) > 1e-12 {
		t.Fatalf("utilisation = %v, want 0.5", r.Utilization(wiring.Stage4K))
	}
	if !r.WithinBudget() {
		t.Fatal("should be within budget")
	}
	r.Add(wiring.Stage20mK, 25e-6)
	if r.WithinBudget() {
		t.Fatal("20mK stage is over budget")
	}
	if r.BindingStage() != wiring.Stage20mK {
		t.Fatalf("binding stage = %v, want 20mK", r.BindingStage())
	}
}

func TestReportString(t *testing.T) {
	r := NewReport(DefaultBudgets())
	r.Add(wiring.Stage100mK, 100e-6)
	s := r.String()
	if !strings.Contains(s, "100mK") || !strings.Contains(s, "50.0%") {
		t.Fatalf("report rendering missing fields:\n%s", s)
	}
}

func TestEmptyReportBindingStage(t *testing.T) {
	r := NewReport(DefaultBudgets())
	// With zero power everywhere any stage ties at 0; must not panic.
	_ = r.BindingStage()
	if !r.WithinBudget() {
		t.Fatal("empty report must be within budget")
	}
}

func TestExtendedBudgetsAdds70K(t *testing.T) {
	b := ExtendedBudgets()
	if b[wiring.Stage70K] != 30 {
		t.Fatalf("70K budget %v, want 30 W", b[wiring.Stage70K])
	}
	// Default stages unchanged.
	if b[wiring.Stage4K] != 1.5 {
		t.Fatal("extended budgets must not alter the 4K budget")
	}
}
