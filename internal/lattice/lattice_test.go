package lattice

import (
	"math"
	"strings"
	"testing"

	"qisim/internal/microarch"
	"qisim/internal/surface"
)

func TestLayoutGrid(t *testing.T) {
	l := NewLayout(5, 23)
	if l.LogicalQubits() < 5 {
		t.Fatalf("layout holds %d logical qubits, need >= 5", l.LogicalQubits())
	}
	if l.PhysicalQubits() != l.LogicalQubits()*surface.PhysicalQubitsPerPatch(23) {
		t.Fatal("physical budget must be 2(d+1)^2 per patch")
	}
	// 54 logical qubits at d=23 → the paper's 62,208-qubit long-term goal.
	l54 := Layout{D: 23, Rows: 6, Cols: 9}
	if l54.PhysicalQubits() != 62208 {
		t.Fatalf("54 patches at d=23 = %d physical qubits, want 62,208", l54.PhysicalQubits())
	}
}

func TestRoutingDistance(t *testing.T) {
	l := Layout{D: 3, Rows: 3, Cols: 3}
	if d := l.RoutingDistance(0, 8); d != 4 {
		t.Fatalf("corner-to-corner distance %d, want 4", d)
	}
	if d := l.RoutingDistance(4, 4); d != 0 {
		t.Fatal("self distance must be 0")
	}
	if l.RoutingDistance(0, 5) != l.RoutingDistance(5, 0) {
		t.Fatal("routing distance must be symmetric")
	}
}

func TestPPMValidation(t *testing.T) {
	l := NewLayout(4, 3)
	good := PPM{Ops: []PauliOp{{0, 'X'}, {1, 'Z'}}}
	if err := good.Validate(l); err != nil {
		t.Fatal(err)
	}
	bad := []PPM{
		{},
		{Ops: []PauliOp{{99, 'X'}}},
		{Ops: []PauliOp{{0, 'X'}, {0, 'Z'}}},
		{Ops: []PauliOp{{0, 'Q'}}},
	}
	for i, p := range bad {
		if err := p.Validate(l); err == nil {
			t.Fatalf("bad PPM %d accepted", i)
		}
	}
}

func TestScheduleSingleQubitMeasurement(t *testing.T) {
	l := NewLayout(2, 5)
	op, err := Schedule(PPM{Ops: []PauliOp{{0, 'Z'}}}, l)
	if err != nil {
		t.Fatal(err)
	}
	if op.TotalRounds() != 1 {
		t.Fatalf("transversal measurement takes 1 round, got %d", op.TotalRounds())
	}
}

func TestScheduleTwoQubitPPM(t *testing.T) {
	l := NewLayout(4, 5)
	op, err := Schedule(PPM{Ops: []PauliOp{{0, 'Z'}, {1, 'Z'}}}, l)
	if err != nil {
		t.Fatal(err)
	}
	// Merge runs d rounds (fault tolerance demands it), plus the split.
	if op.TotalRounds() != 5+1 {
		t.Fatalf("ZZ surgery rounds %d, want d+1 = 6", op.TotalRounds())
	}
	// Y factors cost an extra twist phase.
	opY, _ := Schedule(PPM{Ops: []PauliOp{{0, 'Y'}, {1, 'Z'}}}, l)
	if opY.TotalRounds() <= op.TotalRounds() {
		t.Fatal("Y-basis PPM must cost more rounds than ZZ")
	}
}

func TestScheduleRoutingArea(t *testing.T) {
	l := Layout{D: 3, Rows: 3, Cols: 3}
	near, _ := Schedule(PPM{Ops: []PauliOp{{0, 'Z'}, {1, 'Z'}}}, l)
	far, _ := Schedule(PPM{Ops: []PauliOp{{0, 'Z'}, {8, 'Z'}}}, l)
	if far.Phases[0].ExtraPatchArea <= near.Phases[0].ExtraPatchArea {
		t.Fatal("distant patches need more routing area")
	}
}

func TestCNOTProgram(t *testing.T) {
	l := NewLayout(3, 5)
	pr := CNOTProgram(l, 0, 1, 2)
	ops, total, err := pr.ScheduleAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("CNOT lowers to 3 PPMs, got %d", len(ops))
	}
	// ZZ (d+1) + XX (d+1) + Z measure (1) = 2d+3.
	if total != 2*5+3 {
		t.Fatalf("CNOT rounds %d, want 13 at d=5", total)
	}
}

func TestMemoryProgramStats(t *testing.T) {
	l := NewLayout(4, 3)
	pr := MemoryProgram(l, 10)
	st, err := pr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalRounds != 10*l.LogicalQubits() {
		t.Fatalf("memory rounds %d", st.TotalRounds)
	}
	if st.PeakPatches != 1 {
		t.Fatal("memory peaks at one patch per op")
	}
}

func TestExecuteOnDesign(t *testing.T) {
	l := NewLayout(2, 23)
	pr := CNOTProgram(NewLayout(3, 23), 0, 1, 2)
	_ = l
	ex, err := Execute(pr, microarch.CMOS4KOpt12())
	if err != nil {
		t.Fatal(err)
	}
	if ex.WallClock <= 0 || ex.Success <= 0 || ex.Success > 1 {
		t.Fatalf("implausible execution: %+v", ex)
	}
	// At d=23 the logical CNOT succeeds essentially surely.
	if ex.Success < 0.999999 {
		t.Fatalf("d=23 CNOT success %v, want ~1", ex.Success)
	}
	// Wall clock = rounds × round time.
	want := float64(ex.Stats.TotalRounds) * ex.RoundTime
	if math.Abs(ex.WallClock-want) > 1e-12 {
		t.Fatal("wall clock accounting broken")
	}
}

func TestExecuteDistanceMatters(t *testing.T) {
	prLow := CNOTProgram(NewLayout(3, 3), 0, 1, 2)
	prHigh := CNOTProgram(NewLayout(3, 11), 0, 1, 2)
	exLow, _ := Execute(prLow, microarch.RSFQOpt345())
	exHigh, _ := Execute(prHigh, microarch.RSFQOpt345())
	if exHigh.LogicalErr >= exLow.LogicalErr {
		t.Fatal("higher distance must give lower logical error")
	}
	if exHigh.Success <= exLow.Success {
		t.Fatal("higher distance must give higher success")
	}
}

func TestRequiredDistance(t *testing.T) {
	pr := MemoryProgram(NewLayout(2, 3), 1000)
	d := RequiredDistance(pr, microarch.CMOS4KOpt12(), 0.99)
	if d < 3 || d > 25 || d%2 == 0 {
		t.Fatalf("required distance %d implausible", d)
	}
	// A harsher design (naive sharing) needs more distance.
	dBad := RequiredDistance(pr, microarch.RSFQNaiveSharing(), 0.99)
	if dBad <= d {
		t.Fatalf("naive sharing should need more distance: %d vs %d", dBad, d)
	}
}

func TestTransversalHRz(t *testing.T) {
	// Opt-#6: every H·Rz pair fuses into one instruction.
	if got := TransversalHRz(10, 10); got != 10 {
		t.Fatalf("fused count %d, want 10", got)
	}
	if got := TransversalHRz(10, 4); got != 10 {
		t.Fatalf("unbalanced fusion %d, want 10", got)
	}
}

func TestPPMString(t *testing.T) {
	p := PPM{Ops: []PauliOp{{0, 'X'}, {3, 'Z'}}}
	if s := p.String(); !strings.Contains(s, "X0") || !strings.Contains(s, "Z3") {
		t.Fatalf("PPM rendering %q", s)
	}
}
