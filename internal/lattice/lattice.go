// Package lattice implements the fault-tolerant logical-operation layer of
// Section 2.1.4: multi-patch surface-code layouts and lattice surgery.
// Arbitrary logical circuits reduce to sequences of multi-qubit
// Pauli-product measurements (PPMs), each executed by merging the involved
// patches through their shared routing space for d ESM rounds and splitting
// them again. This is the layer a quantum control processor (XQsim-class)
// would drive; QIsim consumes its output as ESM workload schedules — the
// peak-power pattern the scalability analysis runs.
package lattice

import (
	"fmt"
	"strings"

	"qisim/internal/simerr"
	"qisim/internal/surface"
)

// Layout is a 2D arrangement of logical-qubit patches with routing lanes,
// following the compact lattice-surgery floor plan: patches on a grid with
// one routing row between patch rows and one routing column per patch
// column.
type Layout struct {
	// D is the code distance of every patch.
	D int
	// Rows, Cols is the patch grid.
	Rows, Cols int
}

// NewLayoutChecked is the erroring boundary over NewLayout: invalid logical
// qubit counts or code distances return a typed ErrInvalidConfig instead of
// panicking.
func NewLayoutChecked(n, d int) (Layout, error) {
	if n < 1 {
		return Layout{}, simerr.Invalidf("lattice: need at least one logical qubit, got %d", n)
	}
	if d < 3 || d%2 == 0 {
		return Layout{}, simerr.Invalidf("lattice: code distance must be odd and >= 3, got %d", d)
	}
	return NewLayout(n, d), nil
}

// NewLayout builds a layout for at least n logical qubits at distance d.
// It panics on n < 1; callers handling untrusted input should use
// NewLayoutChecked.
func NewLayout(n, d int) Layout {
	if n < 1 {
		panic("lattice: need at least one logical qubit")
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	return Layout{D: d, Rows: rows, Cols: cols}
}

// LogicalQubits returns the patch count.
func (l Layout) LogicalQubits() int { return l.Rows * l.Cols }

// PhysicalQubits returns the planning-number physical budget: 2(d+1)² per
// patch (patch + its routing share), the paper's Section 6.1 accounting.
func (l Layout) PhysicalQubits() int {
	return l.LogicalQubits() * surface.PhysicalQubitsPerPatch(l.D)
}

// PatchPosition returns the grid coordinates of logical qubit q.
func (l Layout) PatchPosition(q int) (row, col int) {
	return q / l.Cols, q % l.Cols
}

// RoutingDistance returns the Manhattan routing-lane distance between two
// patches — the merge region of a two-qubit PPM spans this many lanes.
func (l Layout) RoutingDistance(a, b int) int {
	ra, ca := l.PatchPosition(a)
	rb, cb := l.PatchPosition(b)
	dr, dc := ra-rb, ca-cb
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// PauliOp is one tensor factor of a Pauli product.
type PauliOp struct {
	Qubit int
	Basis byte // 'X', 'Y' or 'Z'
}

// PPM is a multi-qubit Pauli-product measurement — the universal logical
// instruction of lattice-surgery FTQC (Litinski's "game of surface codes").
type PPM struct {
	Ops []PauliOp
}

// Validate checks the PPM against a layout.
func (p PPM) Validate(l Layout) error {
	if len(p.Ops) == 0 {
		return fmt.Errorf("lattice: empty PPM")
	}
	seen := map[int]bool{}
	for _, op := range p.Ops {
		if op.Qubit < 0 || op.Qubit >= l.LogicalQubits() {
			return fmt.Errorf("lattice: PPM touches unknown logical qubit %d", op.Qubit)
		}
		if seen[op.Qubit] {
			return fmt.Errorf("lattice: PPM touches qubit %d twice", op.Qubit)
		}
		seen[op.Qubit] = true
		switch op.Basis {
		case 'X', 'Y', 'Z':
		default:
			return fmt.Errorf("lattice: bad Pauli basis %q", op.Basis)
		}
	}
	return nil
}

func (p PPM) String() string {
	var b strings.Builder
	for i, op := range p.Ops {
		if i > 0 {
			b.WriteRune('⊗')
		}
		fmt.Fprintf(&b, "%c%d", op.Basis, op.Qubit)
	}
	return b.String()
}

// Phase is one scheduled step of a surgery operation.
type Phase struct {
	Name string
	// Rounds of ESM this phase runs on the involved region.
	Rounds int
	// Patches involved (incl. routing ancilla region as extra area).
	Patches []int
	// ExtraPatchArea counts routing-lane area in units of patches.
	ExtraPatchArea int
}

// Operation is a scheduled lattice-surgery operation.
type Operation struct {
	PPM    PPM
	Phases []Phase
}

// TotalRounds sums the ESM rounds across phases.
func (o Operation) TotalRounds() int {
	t := 0
	for _, p := range o.Phases {
		t += p.Rounds
	}
	return t
}

// Schedule lowers a PPM into merge/measure/split phases per the standard
// lattice-surgery recipe: d rounds of merged ESM to measure the product
// fault-tolerantly, a Y-basis factor costs one extra patch interaction
// round (the twist/Y-state overhead), and single-qubit PPMs are transversal
// measurements needing a single round.
func Schedule(p PPM, l Layout) (Operation, error) {
	if err := p.Validate(l); err != nil {
		return Operation{}, err
	}
	op := Operation{PPM: p}
	var qs []int
	hasY := false
	for _, o := range p.Ops {
		qs = append(qs, o.Qubit)
		if o.Basis == 'Y' {
			hasY = true
		}
	}
	if len(qs) == 1 && !hasY {
		op.Phases = []Phase{{Name: "measure", Rounds: 1, Patches: qs}}
		return op, nil
	}
	// Routing area: lanes along the path through all involved patches
	// (greedy chain in qubit order — adequate for area accounting).
	area := 0
	for i := 1; i < len(qs); i++ {
		area += l.RoutingDistance(qs[i-1], qs[i])
	}
	if area == 0 {
		area = 1
	}
	merge := Phase{Name: "merge+measure", Rounds: l.D, Patches: qs, ExtraPatchArea: area}
	split := Phase{Name: "split", Rounds: 1, Patches: qs, ExtraPatchArea: area}
	if hasY {
		op.Phases = append(op.Phases, Phase{Name: "y-twist", Rounds: 1, Patches: qs, ExtraPatchArea: 1})
	}
	op.Phases = append(op.Phases, merge, split)
	return op, nil
}

// Program is a sequence of PPMs — the logical-level workload a QCP streams
// to the QCI.
type Program struct {
	Layout Layout
	PPMs   []PPM
}

// ScheduleAll lowers every PPM, returning the operations and total rounds.
func (pr Program) ScheduleAll() ([]Operation, int, error) {
	var ops []Operation
	total := 0
	for _, p := range pr.PPMs {
		op, err := Schedule(p, pr.Layout)
		if err != nil {
			return nil, 0, err
		}
		ops = append(ops, op)
		total += op.TotalRounds()
	}
	return ops, total, nil
}

// WorkloadStats summarises the physical demand of a logical program: what
// the QCI must sustain.
type WorkloadStats struct {
	LogicalQubits  int
	PhysicalQubits int
	TotalRounds    int
	// BusyPatchRounds counts patch·round products (activity exposure).
	BusyPatchRounds int
	// PeakPatches is the largest simultaneous patch+routing area.
	PeakPatches int
}

// Stats computes the workload statistics of a program.
func (pr Program) Stats() (WorkloadStats, error) {
	ops, total, err := pr.ScheduleAll()
	if err != nil {
		return WorkloadStats{}, err
	}
	st := WorkloadStats{
		LogicalQubits:  pr.Layout.LogicalQubits(),
		PhysicalQubits: pr.Layout.PhysicalQubits(),
		TotalRounds:    total,
	}
	for _, op := range ops {
		for _, ph := range op.Phases {
			area := len(ph.Patches) + ph.ExtraPatchArea
			st.BusyPatchRounds += area * ph.Rounds
			if area > st.PeakPatches {
				st.PeakPatches = area
			}
		}
	}
	return st, nil
}

// TransversalHRz exploits the Opt-#6 insight: in lattice-surgery circuits
// every adjacent single-qubit pair is H·Rz(nπ/4), compressible into one
// Ry(π/2)·Rz(nπ/4) instruction. Given counts of raw H and Rz layers it
// returns the compressed instruction count.
func TransversalHRz(hLayers, rzLayers int) int {
	pairs := hLayers
	if rzLayers < pairs {
		pairs = rzLayers
	}
	return hLayers + rzLayers - pairs
}
