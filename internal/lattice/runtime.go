package lattice

import (
	"math"

	"qisim/internal/microarch"
	"qisim/internal/surface"
)

// Execution estimates how a logical program runs on a concrete QCI design:
// wall-clock time (rounds × the design's ESM round time) and logical success
// probability (every busy patch·round survives with 1 - p_L).
type Execution struct {
	Stats      WorkloadStats
	RoundTime  float64
	WallClock  float64
	LogicalErr float64 // per patch per round at the layout's distance
	Success    float64
}

// Execute estimates a program's execution on a design.
func Execute(pr Program, d microarch.Design) (Execution, error) {
	st, err := pr.Stats()
	if err != nil {
		return Execution{}, err
	}
	rt := d.RoundTiming().RoundTime()
	// Project at the layout's distance rather than the default 23.
	proj := surface.DefaultProjection()
	proj.D = pr.Layout.D
	pEff := d.ErrorParams().Effective(rt, 0)
	pl := proj.Logical(pEff)
	ex := Execution{
		Stats:      st,
		RoundTime:  rt,
		WallClock:  float64(st.TotalRounds) * rt,
		LogicalErr: pl,
	}
	ex.Success = math.Exp(float64(st.BusyPatchRounds) * math.Log1p(-clampP(pl)))
	return ex, nil
}

// RequiredDistance returns the smallest odd distance at which the program
// reaches the target success probability on the design (or 0 if none ≤ 51
// suffices) — the near-term "grow d until the target" procedure of
// Section 6.1.
func RequiredDistance(pr Program, d microarch.Design, targetSuccess float64) int {
	for dist := 3; dist <= 51; dist += 2 {
		trial := pr
		trial.Layout.D = dist
		ex, err := Execute(trial, d)
		if err != nil {
			return 0
		}
		if ex.Success >= targetSuccess {
			return dist
		}
	}
	return 0
}

func clampP(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.999999 {
		return 0.999999
	}
	return p
}

// CNOTProgram builds the canonical lattice-surgery CNOT between control and
// target via an ancilla patch: Z⊗Z(control, ancilla) then X⊗X(ancilla,
// target) then Z(ancilla) measurement — the textbook two-PPM construction.
func CNOTProgram(l Layout, control, target, ancilla int) Program {
	return Program{
		Layout: l,
		PPMs: []PPM{
			{Ops: []PauliOp{{control, 'Z'}, {ancilla, 'Z'}}},
			{Ops: []PauliOp{{ancilla, 'X'}, {target, 'X'}}},
			{Ops: []PauliOp{{ancilla, 'Z'}}},
		},
	}
}

// MemoryProgram is n idle logical qubits held for rounds ESM rounds — the
// pure-memory workload (every patch runs ESM every round).
func MemoryProgram(l Layout, rounds int) Program {
	var ppms []PPM
	// Represent memory as repeated single-qubit Z "identity checks" whose
	// schedule degenerates to ESM rounds on every patch.
	for r := 0; r < rounds; r++ {
		for q := 0; q < l.LogicalQubits(); q++ {
			ppms = append(ppms, PPM{Ops: []PauliOp{{q, 'Z'}}})
		}
	}
	return Program{Layout: l, PPMs: ppms}
}
