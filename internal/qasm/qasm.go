// Package qasm parses the OpenQASM 2 subset QIsim's cycle-accurate simulator
// consumes: qreg/creg declarations, the standard gate set (h, x, y, z, s,
// sdg, t, tdg, rx, ry, rz, cx, cz, swap), measure, and barrier. Programs are
// flattened to a single quantum register's index space.
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"qisim/internal/simerr"
)

// Gate is one parsed operation.
type Gate struct {
	Name   string
	Qubits []int
	Params []float64
	// CBit is the classical target of a measure (-1 otherwise).
	CBit int
}

// Program is a parsed OpenQASM program.
type Program struct {
	NQubits int
	NClbits int
	Gates   []Gate
}

// Validate checks a (possibly programmatically built) Program for
// structural corruption: qubit/clbit indices out of range, wrong gate arity,
// NaN parameters. Failures are classed ErrInvalidConfig — this is the guard
// the compiler runs before lowering an instruction stream.
func (p *Program) Validate() error {
	if p == nil {
		return simerr.Invalidf("qasm: nil program")
	}
	if p.NQubits < 0 || p.NClbits < 0 {
		return simerr.Invalidf("qasm: negative register size (%d qubits, %d clbits)", p.NQubits, p.NClbits)
	}
	for i, g := range p.Gates {
		switch g.Name {
		case "barrier":
			continue
		case "measure":
			if len(g.Qubits) != 1 {
				return simerr.Invalidf("qasm: gate %d: measure takes one qubit, got %d", i, len(g.Qubits))
			}
			if g.CBit < 0 || (p.NClbits > 0 && g.CBit >= p.NClbits) {
				return simerr.Invalidf("qasm: gate %d: classical bit %d out of range [0,%d)", i, g.CBit, p.NClbits)
			}
		case "cx", "cz", "swap":
			if len(g.Qubits) != 2 {
				return simerr.Invalidf("qasm: gate %d: %s takes two qubits, got %d", i, g.Name, len(g.Qubits))
			}
			if g.Qubits[0] == g.Qubits[1] {
				return simerr.Invalidf("qasm: gate %d: %s control equals target (%d)", i, g.Name, g.Qubits[0])
			}
		case "h", "x", "y", "z", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "id", "sx":
			if len(g.Qubits) != 1 {
				return simerr.Invalidf("qasm: gate %d: %s takes one qubit, got %d", i, g.Name, len(g.Qubits))
			}
		default:
			return simerr.Invalidf("qasm: gate %d: unknown gate %q", i, g.Name)
		}
		for _, q := range g.Qubits {
			if q < 0 || q >= p.NQubits {
				return simerr.Invalidf("qasm: gate %d (%s): qubit %d out of range [0,%d)", i, g.Name, q, p.NQubits)
			}
		}
		for _, v := range g.Params {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return simerr.Invalidf("qasm: gate %d (%s): non-finite parameter %v", i, g.Name, v)
			}
		}
	}
	return nil
}

// Parse parses OpenQASM 2 source. All parse failures — malformed statements
// as well as constructs outside the supported subset — are classed as
// simerr.ErrUnsupportedQASM; no input can make Parse panic (enforced both by
// the boundary recover below and by the FuzzParse target).
func Parse(src string) (prog *Program, err error) {
	defer simerr.RecoverInto(&err, simerr.ErrUnsupportedQASM)
	prog, perr := parse(src)
	if perr != nil {
		return nil, fmt.Errorf("%w: %w", simerr.ErrUnsupportedQASM, perr)
	}
	return prog, nil
}

// reg records a declared register's slice of the flattened index space.
type reg struct{ base, size int }

func parse(src string) (*Program, error) {
	p := &Program{}
	regs := map[string]reg{} // name → flattened slice
	cregs := map[string]reg{}

	// Strip comments, split statements on ';'.
	var clean strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	for _, stmt := range strings.Split(clean.String(), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		switch {
		case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"):
			continue
		case strings.HasPrefix(stmt, "qreg"):
			name, size, err := parseReg(stmt[4:])
			if err != nil {
				return nil, err
			}
			regs[name] = reg{base: p.NQubits, size: size}
			p.NQubits += size
		case strings.HasPrefix(stmt, "creg"):
			name, size, err := parseReg(stmt[4:])
			if err != nil {
				return nil, err
			}
			cregs[name] = reg{base: p.NClbits, size: size}
			p.NClbits += size
		case strings.HasPrefix(stmt, "barrier"):
			p.Gates = append(p.Gates, Gate{Name: "barrier", CBit: -1})
		case strings.HasPrefix(stmt, "measure"):
			g, err := parseMeasure(stmt, regs, cregs)
			if err != nil {
				return nil, err
			}
			p.Gates = append(p.Gates, g)
		default:
			g, err := parseGate(stmt, regs)
			if err != nil {
				return nil, err
			}
			p.Gates = append(p.Gates, g)
		}
	}
	return p, nil
}

func parseReg(s string) (string, int, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "[")
	close := strings.Index(s, "]")
	if open < 0 || close < open {
		return "", 0, fmt.Errorf("qasm: malformed register %q", s)
	}
	size, err := strconv.Atoi(s[open+1 : close])
	if err != nil || size <= 0 {
		return "", 0, fmt.Errorf("qasm: bad register size in %q", s)
	}
	return strings.TrimSpace(s[:open]), size, nil
}

func parseMeasure(stmt string, regs, cregs map[string]reg) (Gate, error) {
	body := strings.TrimSpace(stmt[len("measure"):])
	parts := strings.Split(body, "->")
	if len(parts) != 2 {
		return Gate{}, fmt.Errorf("qasm: malformed measure %q", stmt)
	}
	q, err := resolveIndex(strings.TrimSpace(parts[0]), regs)
	if err != nil {
		return Gate{}, err
	}
	c, err := resolveIndex(strings.TrimSpace(parts[1]), cregs)
	if err != nil {
		return Gate{}, err
	}
	return Gate{Name: "measure", Qubits: []int{q}, CBit: c}, nil
}

func parseGate(stmt string, regs map[string]reg) (Gate, error) {
	g := Gate{CBit: -1}
	rest := stmt
	// Optional parameter list.
	if open := strings.Index(stmt, "("); open >= 0 && open < strings.IndexAny(stmt+" ", " \t") {
		close := strings.Index(stmt, ")")
		if close < open {
			return g, fmt.Errorf("qasm: malformed parameters in %q", stmt)
		}
		g.Name = strings.TrimSpace(stmt[:open])
		for _, ps := range strings.Split(stmt[open+1:close], ",") {
			v, err := evalParam(strings.TrimSpace(ps))
			if err != nil {
				return g, err
			}
			g.Params = append(g.Params, v)
		}
		rest = stmt[close+1:]
	} else {
		fields := strings.SplitN(stmt, " ", 2)
		if len(fields) != 2 {
			return g, fmt.Errorf("qasm: malformed statement %q", stmt)
		}
		g.Name = strings.TrimSpace(fields[0])
		rest = fields[1]
	}
	for _, qs := range strings.Split(rest, ",") {
		q, err := resolveIndex(strings.TrimSpace(qs), regs)
		if err != nil {
			return g, err
		}
		g.Qubits = append(g.Qubits, q)
	}
	switch g.Name {
	case "h", "x", "y", "z", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "id", "sx":
		if len(g.Qubits) != 1 {
			return g, fmt.Errorf("qasm: %s takes one qubit, got %d", g.Name, len(g.Qubits))
		}
	case "cx", "cz", "swap":
		if len(g.Qubits) != 2 {
			return g, fmt.Errorf("qasm: %s takes two qubits, got %d", g.Name, len(g.Qubits))
		}
		if g.Qubits[0] == g.Qubits[1] {
			return g, fmt.Errorf("qasm: %s control equals target (%d)", g.Name, g.Qubits[0])
		}
	default:
		return g, fmt.Errorf("qasm: unsupported gate %q", g.Name)
	}
	return g, nil
}

func resolveIndex(s string, regs map[string]reg) (int, error) {
	open := strings.Index(s, "[")
	close := strings.Index(s, "]")
	if open < 0 || close < open {
		return 0, fmt.Errorf("qasm: expected reg[idx], got %q", s)
	}
	r, ok := regs[strings.TrimSpace(s[:open])]
	if !ok {
		return 0, fmt.Errorf("qasm: unknown register in %q", s)
	}
	idx, err := strconv.Atoi(s[open+1 : close])
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("qasm: bad index in %q", s)
	}
	if idx >= r.size {
		return 0, fmt.Errorf("qasm: index %d out of range for %d-wide register in %q", idx, r.size, s)
	}
	return r.base + idx, nil
}

// evalParam evaluates the restricted parameter grammar: float literals, pi,
// unary minus, and binary */ with pi (e.g. "pi/2", "-3*pi/4", "0.25").
func evalParam(s string) (float64, error) {
	s = strings.ReplaceAll(s, " ", "")
	if s == "" {
		return 0, fmt.Errorf("qasm: empty parameter")
	}
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	}
	val := 1.0
	div := false
	for _, tok := range splitTokens(s) {
		switch tok {
		case "*":
		case "/":
			div = true
		case "pi":
			val = apply(val, math.Pi, div)
			div = false
		default:
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return 0, fmt.Errorf("qasm: bad parameter token %q", tok)
			}
			val = apply(val, f, div)
			div = false
		}
	}
	if neg {
		val = -val
	}
	return val, nil
}

func apply(acc, v float64, div bool) float64 {
	if div {
		return acc / v
	}
	return acc * v
}

func splitTokens(s string) []string {
	var out []string
	cur := strings.Builder{}
	for _, r := range s {
		if r == '*' || r == '/' {
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
			out = append(out, string(r))
		} else {
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// Emit renders a Program back to OpenQASM 2 source. Empty registers are
// omitted (a `qreg q[0]` declaration would not re-parse), so Emit∘Parse is
// a fixed point on the supported subset — the property FuzzParse enforces.
func Emit(p *Program) string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n")
	if p.NQubits > 0 {
		fmt.Fprintf(&b, "qreg q[%d];\n", p.NQubits)
	}
	if p.NClbits > 0 {
		fmt.Fprintf(&b, "creg c[%d];\n", p.NClbits)
	}
	for _, g := range p.Gates {
		switch g.Name {
		case "barrier":
			b.WriteString("barrier q;\n")
		case "measure":
			fmt.Fprintf(&b, "measure q[%d] -> c[%d];\n", g.Qubits[0], g.CBit)
		default:
			b.WriteString(g.Name)
			if len(g.Params) > 0 {
				b.WriteByte('(')
				for i, v := range g.Params {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, "%g", v)
				}
				b.WriteByte(')')
			}
			b.WriteByte(' ')
			for i, q := range g.Qubits {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "q[%d]", q)
			}
			b.WriteString(";\n")
		}
	}
	return b.String()
}
