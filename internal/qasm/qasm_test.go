package qasm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `
OPENQASM 2.0;
include "qelib1.inc";
// a comment
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/2) q[2];
ry(-0.25) q[1];
cz q[1], q[2];
barrier q;
measure q[0] -> c[0];
measure q[2] -> c[2];
`

func TestParseSample(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.NQubits != 3 || p.NClbits != 3 {
		t.Fatalf("registers %d/%d, want 3/3", p.NQubits, p.NClbits)
	}
	if len(p.Gates) != 8 {
		t.Fatalf("gate count %d, want 8", len(p.Gates))
	}
	if p.Gates[0].Name != "h" || p.Gates[0].Qubits[0] != 0 {
		t.Fatalf("first gate %+v", p.Gates[0])
	}
	if p.Gates[1].Name != "cx" || p.Gates[1].Qubits[1] != 1 {
		t.Fatalf("cx parse wrong: %+v", p.Gates[1])
	}
	if math.Abs(p.Gates[2].Params[0]-math.Pi/2) > 1e-12 {
		t.Fatalf("rz(pi/2) param = %v", p.Gates[2].Params[0])
	}
	if math.Abs(p.Gates[3].Params[0]+0.25) > 1e-12 {
		t.Fatalf("ry(-0.25) param = %v", p.Gates[3].Params[0])
	}
	last := p.Gates[7]
	if last.Name != "measure" || last.Qubits[0] != 2 || last.CBit != 2 {
		t.Fatalf("measure parse wrong: %+v", last)
	}
}

func TestMultipleRegisters(t *testing.T) {
	p, err := Parse("qreg a[2]; qreg b[2]; h b[1];")
	if err != nil {
		t.Fatal(err)
	}
	if p.NQubits != 4 {
		t.Fatalf("NQubits = %d", p.NQubits)
	}
	if p.Gates[0].Qubits[0] != 3 {
		t.Fatalf("b[1] should flatten to 3, got %d", p.Gates[0].Qubits[0])
	}
}

func TestParamExpressions(t *testing.T) {
	cases := map[string]float64{
		"rz(pi) q[0];":      math.Pi,
		"rz(2*pi) q[0];":    2 * math.Pi,
		"rz(pi/4) q[0];":    math.Pi / 4,
		"rz(-3*pi/4) q[0];": -3 * math.Pi / 4,
		"rz(0.125) q[0];":   0.125,
	}
	for src, want := range cases {
		p, err := Parse("qreg q[1]; " + src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got := p.Gates[0].Params[0]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s: param %v, want %v", src, got, want)
		}
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"qreg q[2]; bogus q[0];",
		"qreg q[2]; h q[0], q[1];",
		"qreg q[2]; cx q[0];",
		"qreg q[]; h q[0];",
		"qreg q[2]; h r[0];",
		"qreg q[1]; measure q[0];",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestEmitRoundTrip(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(Emit(p))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, Emit(p))
	}
	if len(p2.Gates) != len(p.Gates) || p2.NQubits != p.NQubits {
		t.Fatal("round trip changed the program")
	}
	for i := range p.Gates {
		if p.Gates[i].Name != p2.Gates[i].Name {
			t.Fatalf("gate %d: %s vs %s", i, p.Gates[i].Name, p2.Gates[i].Name)
		}
	}
}

func TestCommentsStripped(t *testing.T) {
	p, err := Parse("qreg q[1]; // trailing\n// full line\nh q[0]; // done")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Gates) != 1 {
		t.Fatalf("gate count %d", len(p.Gates))
	}
}

func TestEmitContainsHeader(t *testing.T) {
	p := &Program{NQubits: 2, Gates: []Gate{{Name: "h", Qubits: []int{0}, CBit: -1}}}
	out := Emit(p)
	if !strings.Contains(out, "OPENQASM 2.0") || !strings.Contains(out, "qreg q[2]") {
		t.Fatalf("emit output malformed:\n%s", out)
	}
}

func TestQuickRandomProgramRoundTrip(t *testing.T) {
	gates1q := []string{"h", "x", "y", "z", "s", "t"}
	f := func(seedBytes [12]uint8) bool {
		p := &Program{NQubits: 4, NClbits: 4}
		for i, b := range seedBytes {
			switch b % 4 {
			case 0:
				p.Gates = append(p.Gates, Gate{Name: gates1q[int(b/4)%len(gates1q)], Qubits: []int{int(b) % 4}, CBit: -1})
			case 1:
				a := int(b) % 4
				p.Gates = append(p.Gates, Gate{Name: "cz", Qubits: []int{a, (a + 1) % 4}, CBit: -1})
			case 2:
				p.Gates = append(p.Gates, Gate{Name: "rz", Qubits: []int{int(b) % 4}, Params: []float64{float64(i) * 0.17}, CBit: -1})
			case 3:
				p.Gates = append(p.Gates, Gate{Name: "measure", Qubits: []int{int(b) % 4}, CBit: int(b) % 4})
			}
		}
		p2, err := Parse(Emit(p))
		if err != nil || len(p2.Gates) != len(p.Gates) || p2.NQubits != p.NQubits {
			return false
		}
		for i := range p.Gates {
			if p.Gates[i].Name != p2.Gates[i].Name || len(p.Gates[i].Qubits) != len(p2.Gates[i].Qubits) {
				return false
			}
			for j := range p.Gates[i].Qubits {
				if p.Gates[i].Qubits[j] != p2.Gates[i].Qubits[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
