package qasm_test

import (
	"strings"
	"testing"

	"qisim/internal/qasm"
	"qisim/internal/workloads"
)

// FuzzParse enforces the qasm boundary contract: no input — well-formed,
// malformed, or adversarial — may make Parse panic, and every successfully
// parsed program must pass structural validation (indices in range, arity
// correct, parameters finite). The seed corpus is the emitted form of every
// workload generator plus hand-picked edge cases around the statement
// grammar.
func FuzzParse(f *testing.F) {
	// Real programs: every benchmark generator at a couple of sizes.
	for _, name := range workloads.Names() {
		for _, n := range []int{4, 9} {
			p, err := workloads.Generate(name, n)
			if err != nil {
				f.Fatalf("seed corpus %s(%d): %v", name, n, err)
			}
			f.Add(qasm.Emit(p))
		}
	}
	// Grammar edge cases.
	for _, s := range []string{
		"",
		"OPENQASM 2.0;",
		"qreg q[0];",
		"qreg q[-3];",
		"qreg q[2]; h q[2];",
		"qreg q[2]; cx q[0], q[0];",
		"qreg q[2]; rz(pi/2) q[0];",
		"qreg q[2]; rz(-3*pi/4) q[1];",
		"qreg q[2]; rz() q[0];",
		"qreg q[2]; rz(pi q[0];",
		"qreg q[1]; creg c[1]; measure q[0] -> c[0];",
		"qreg q[1]; measure q[0] -> ;",
		"qreg q[1]; barrier q;",
		"// comment only",
		"qreg q[1]; h q[0]; h q[99999999999999999999];",
		"qreg q[1]; unknown_gate q[0];",
		"qreg \x00[1];",
		strings.Repeat("qreg q[1];", 50),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := qasm.Parse(src)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse accepted a structurally invalid program: %v\nsource:\n%s", verr, src)
		}
		// Emit must render anything Parse accepts, and the round trip must
		// parse again (Emit output is in the supported subset by design).
		if _, rerr := qasm.Parse(qasm.Emit(p)); rerr != nil {
			t.Fatalf("round trip failed: %v\nsource:\n%s", rerr, src)
		}
	})
}
