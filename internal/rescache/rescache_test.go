package rescache

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestKeyForFieldOrderIndependence: two JSON-equivalent params values that
// differ only in key order (and nesting order) must produce the same key.
func TestKeyForFieldOrderIndependence(t *testing.T) {
	a := json.RawMessage(`{"distance":11,"p":0.005,"opts":{"x":1,"y":2}}`)
	b := json.RawMessage(`{"opts":{"y":2,"x":1},"p":0.005,"distance":11}`)
	ka, err := KeyFor("surface.mc", a, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := KeyFor("surface.mc", b, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("field order changed the key: %s vs %s", ka, kb)
	}
	if !ka.Valid() {
		t.Fatalf("key %q not a 64-hex key", ka)
	}
}

// TestKeyForDiscriminates: kind, params, seed and shard size must each flip
// the key — they all change the result bytes.
func TestKeyForDiscriminates(t *testing.T) {
	p := map[string]any{"distance": 11}
	base, err := KeyFor("surface.mc", p, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		key  func() (Key, error)
	}{
		{"kind", func() (Key, error) { return KeyFor("pauli.mc", p, 1, 512) }},
		{"params", func() (Key, error) { return KeyFor("surface.mc", map[string]any{"distance": 13}, 1, 512) }},
		{"seed", func() (Key, error) { return KeyFor("surface.mc", p, 2, 512) }},
		{"shard size", func() (Key, error) { return KeyFor("surface.mc", p, 1, 256) }},
	}
	for _, v := range variants {
		k, err := v.key()
		if err != nil {
			t.Fatal(err)
		}
		if k == base {
			t.Errorf("changing %s did not change the key", v.name)
		}
	}
}

// TestCanonicalJSONStable: struct vs map vs raw JSON with shuffled keys all
// canonicalize to the same bytes.
func TestCanonicalJSONStable(t *testing.T) {
	type s struct {
		B int `json:"b"`
		A int `json:"a"`
	}
	c1, err := CanonicalJSON(s{B: 2, A: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CanonicalJSON(map[string]int{"b": 2, "a": 1})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := CanonicalJSON(json.RawMessage("{ \"b\" : 2,\n\"a\": 1 }"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) || !bytes.Equal(c2, c3) {
		t.Fatalf("canonical forms differ: %s / %s / %s", c1, c2, c3)
	}
	if string(c1) != `{"a":1,"b":2}` {
		t.Fatalf("canonical form %s, want sorted compact object", c1)
	}
}

func mustKey(t *testing.T, kind string, seed int64) Key {
	t.Helper()
	k, err := KeyFor(kind, map[string]any{"seed": seed}, seed, 512)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestCacheHitMissAndCopy: basic round-trip, stats accounting, and the
// defensive copy (mutating a returned body must not poison the cache).
func TestCacheHitMissAndCopy(t *testing.T) {
	c := New(4)
	k := mustKey(t, "surface.mc", 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "surface.mc", []byte(`{"rate":0.01}`))
	got, ok := c.Get(k)
	if !ok || string(got) != `{"rate":0.01}` {
		t.Fatalf("get = %q, %v", got, ok)
	}
	got[0] = 'X' // caller mutates its copy
	again, ok := c.Get(k)
	if !ok || string(again) != `{"rate":0.01}` {
		t.Fatalf("returned body not defensively copied: %q, %v", again, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Corruptions != 0 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheLRUEviction: the least recently used entry is evicted at the
// bound, and a Get refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	k1, k2, k3 := mustKey(t, "a", 1), mustKey(t, "a", 2), mustKey(t, "a", 3)
	c.Put(k1, "a", []byte("1"))
	c.Put(k2, "a", []byte("2"))
	if _, ok := c.Get(k1); !ok { // refresh k1: k2 becomes LRU
		t.Fatal("k1 missing before eviction")
	}
	c.Put(k3, "a", []byte("3"))
	if c.Contains(k2) {
		t.Fatal("LRU entry k2 survived eviction")
	}
	if !c.Contains(k1) || !c.Contains(k3) {
		t.Fatal("recently used entries evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheDetectsCorruption is the integrity contract: a tampered body is
// detected on Get, dropped, counted, and never served; a fresh Put recovers.
func TestCacheDetectsCorruption(t *testing.T) {
	c := New(4)
	k := mustKey(t, "surface.mc", 7)
	body := []byte(`{"failures":12,"shots":1000}`)
	c.Put(k, "surface.mc", body)
	if !c.Tamper(k, func(b []byte) { b[2] ^= 0xff }) {
		t.Fatal("tamper hook missed the entry")
	}
	if got, ok := c.Get(k); ok {
		t.Fatalf("corrupted entry served: %q", got)
	}
	st := c.Stats()
	if st.Corruptions != 1 || st.Entries != 0 {
		t.Fatalf("corruption not accounted: %+v", st)
	}
	// Recompute path: a fresh Put fully recovers the key.
	c.Put(k, "surface.mc", body)
	if got, ok := c.Get(k); !ok || !bytes.Equal(got, body) {
		t.Fatalf("recovery Put failed: %q, %v", got, ok)
	}
}

// TestKeyVersionPinned: the envelope version is part of the hash — bumping
// it must change every key. (Guards against accidental envelope edits that
// forget the version bump; see also the golden key test in
// internal/service.)
func TestKeyVersionPinned(t *testing.T) {
	if KeyVersion != 1 {
		t.Fatalf("KeyVersion = %d; if this bump is intentional, update the golden key test in internal/service too", KeyVersion)
	}
}

func TestKindCounts(t *testing.T) {
	c := New(10)
	c.Put("k1", "dse.point", []byte("a"))
	c.Put("k2", "dse.point", []byte("b"))
	c.Put("k3", "surface.mc", []byte("c"))
	got := c.KindCounts()
	if got["dse.point"] != 2 || got["surface.mc"] != 1 || len(got) != 2 {
		t.Fatalf("KindCounts = %v", got)
	}
	// Re-putting an existing key must not double-count.
	c.Put("k1", "dse.point", []byte("a2"))
	if got := c.KindCounts(); got["dse.point"] != 2 {
		t.Fatalf("after re-put: %v", got)
	}
}
