// Package rescache is qisimd's content-addressed result cache. A QIsim
// analysis is a pure function of (request kind, normalized parameters, seed,
// shard size) — the deterministic sharded engine (internal/simrun) makes the
// result bit-exact for every worker count — so identical requests can share
// one stored result byte-for-byte.
//
// Keys are the SHA-256 of a canonical JSON envelope (see KeyFor): JSON
// object keys are sorted recursively, so two requests that differ only in
// field order, whitespace, or defaulted-vs-explicit options (after the
// caller's normalization) produce the same key. The key format is versioned
// (`"v":1`) so a future envelope change cannot silently alias old keys.
//
// Every entry stores a SHA-256 checksum of its body, re-verified on each
// Get: a corrupted entry is detected, dropped, and reported as a miss — a
// poisoned result is never served (see the faultinject scenario
// "corrupted-cache-entry").
package rescache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// KeyVersion is the canonical-envelope version baked into every key. Bump it
// when the envelope layout changes so old and new keys can never collide.
const KeyVersion = 1

// Key is the 64-character lowercase hex SHA-256 of a canonical request
// envelope.
type Key string

// Valid reports whether k is a well-formed key (64 hex chars).
func (k Key) Valid() bool {
	if len(k) != 64 {
		return false
	}
	_, err := hex.DecodeString(string(k))
	return err == nil
}

// CanonicalJSON marshals v into canonical JSON: object keys sorted
// recursively (encoding/json sorts map keys), no insignificant whitespace.
// It round-trips v through an untyped tree, so struct field order, input
// key order and formatting cannot leak into the bytes.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("rescache: canonicalize marshal: %w", err)
	}
	var tree any
	if err := json.Unmarshal(raw, &tree); err != nil {
		return nil, fmt.Errorf("rescache: canonicalize reparse: %w", err)
	}
	out, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("rescache: canonicalize remarshal: %w", err)
	}
	return out, nil
}

// keyEnvelope is the struct whose canonical JSON is hashed. Field names are
// part of the key contract — changing them requires a KeyVersion bump.
type keyEnvelope struct {
	V         int             `json:"v"`
	Kind      string          `json:"kind"`
	Params    json.RawMessage `json:"params"`
	Seed      int64           `json:"seed"`
	ShardSize int             `json:"shard_size"`
}

// KeyFor derives the content-address of a request: the SHA-256 of the
// versioned canonical envelope over (kind, params, seed, shardSize). params
// is canonicalized first, so any JSON-equivalent params value keys
// identically. Execution hints that do not change the result bytes (worker
// count!) must NOT be part of params.
func KeyFor(kind string, params any, seed int64, shardSize int) (Key, error) {
	cp, err := CanonicalJSON(params)
	if err != nil {
		return "", err
	}
	env, err := CanonicalJSON(keyEnvelope{
		V: KeyVersion, Kind: kind, Params: cp, Seed: seed, ShardSize: shardSize,
	})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(env)
	return Key(hex.EncodeToString(sum[:])), nil
}

// Stats are the cache's cumulative observability counters (all monotonic
// except Entries).
type Stats struct {
	Hits        uint64
	Misses      uint64
	Corruptions uint64
	Evictions   uint64
	Entries     int
}

// entry is one cached result with its integrity checksum.
type entry struct {
	key       Key
	kind      string
	body      []byte
	sum       [sha256.Size]byte
	createdAt time.Time
}

// Cache is a bounded in-memory LRU of content-addressed results. Safe for
// concurrent use.
type Cache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used; values are *entry
	items map[Key]*list.Element
	stats Stats
}

// New returns a cache bounded to maxEntries (minimum 1).
func New(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{max: maxEntries, ll: list.New(), items: map[Key]*list.Element{}}
}

// Put stores body under key (kind is recorded for observability). The body
// is copied, and its checksum fixed at insertion time. Re-putting an
// existing key replaces the entry — the recovery path after a detected
// corruption.
func (c *Cache) Put(key Key, kind string, body []byte) {
	b := make([]byte, len(body))
	copy(b, body)
	e := &entry{key: key, kind: kind, body: b, sum: sha256.Sum256(b), createdAt: time.Now()}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.removeLocked(oldest)
		c.stats.Evictions++
	}
}

// Get returns a copy of the stored body. Before serving, the body is
// re-hashed against the insertion-time checksum: a mismatch (bit rot,
// accidental in-place mutation) drops the entry, counts a corruption AND a
// miss, and returns ok=false so the caller recomputes — a corrupted result
// is never served.
func (c *Cache) Get(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if sha256.Sum256(e.body) != e.sum {
		c.removeLocked(el)
		c.stats.Corruptions++
		c.stats.Misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	out := make([]byte, len(e.body))
	copy(out, e.body)
	return out, true
}

// Contains reports whether key is present without touching LRU order,
// integrity, or stats.
func (c *Cache) Contains(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// KindCounts returns the number of resident entries per kind — the
// breakdown behind the qisimd_cache_entries_by_kind gauge. A sweep's
// fan-out is visible here as a burst of dse.point entries.
func (c *Cache) KindCounts() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int)
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out[el.Value.(*entry).kind]++
	}
	return out
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}

// Tamper mutates the stored body of key in place WITHOUT updating its
// checksum — the fault-injection hook behind the corrupted-cache-entry
// scenario. Returns false when the key is absent. Never use outside tests
// and fault injection.
func (c *Cache) Tamper(key Key, mutate func(body []byte)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	mutate(el.Value.(*entry).body)
	return true
}

// removeLocked unlinks an element; callers hold c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	if el == nil {
		return
	}
	c.ll.Remove(el)
	delete(c.items, el.Value.(*entry).key)
}
