// Package jpm implements the SFQ-based readout path of the paper (Section
// 3.4.3): resonator driving with SFQ pulse trains, JPM tunnelling, the
// mK-located LJJ readout circuit, and reset — together with the Opt-#3
// sharing/pipelining scheduler and the Opt-#8 fast resonator driving and
// unsharing.
//
// The LJJ circuit is modelled behaviourally (a substitute for the paper's
// JoSIM SPICE runs): the framework only consumes its latency and failure
// rate, and the behavioural model reproduces both, including the 40 pH→4 pH
// re-design that enables 8-way sharing at 13 ns.
package jpm

import (
	"fmt"
	"math"

	"qisim/internal/phys"
	"qisim/internal/pulse"
)

// ResonatorDriveModel converts the qubit state into a resonator coherent
// state by driving with a periodic SFQ pulse train. The drive time is the
// ring-up time to the error-saturating pointer amplitude:
//
//	t(r) = -(2/κ)·ln(1 - TargetFrac/r)
//
// where r is the energy-rate multiplier relative to the 24 GHz baseline
// train. Opt-#8 boosts the clock to 48 GHz, doubling the pulse density
// within each half resonator period (r = 2) and cutting the drive time from
// 578.2 ns to 230.9 ns.
type ResonatorDriveModel struct {
	// KappaHz is the JPM readout resonator linewidth. The JPM path uses a
	// higher-Q resonator than the dispersive CMOS path.
	KappaHz float64
	// TargetFrac is the target pointer amplitude as a fraction of the
	// baseline-rate steady state (the error-saturating point).
	TargetFrac float64
	// ResonatorFreqHz and baseline/boost clock frequencies for the pulse
	// train construction.
	ResonatorFreqHz float64
	Clocks          phys.ClockFreqs
}

// DefaultResonatorDriveModel is calibrated to the Table 2 anchor (578.2 ns at
// 24 GHz) and the Opt-#8 anchor (230.9 ns at 48 GHz).
func DefaultResonatorDriveModel() ResonatorDriveModel {
	return ResonatorDriveModel{
		KappaHz:         477.5e3,
		TargetFrac:      0.58,
		ResonatorFreqHz: 6.8e9,
		Clocks:          phys.DefaultClocks(),
	}
}

// DriveTime returns the ring-up time for an energy-rate multiplier r ≥
// TargetFrac (the steady state must exceed the target).
func (m ResonatorDriveModel) DriveTime(rate float64) float64 {
	if rate <= m.TargetFrac {
		return math.Inf(1)
	}
	kappa := 2 * math.Pi * m.KappaHz
	return -(2 / kappa) * math.Log(1-m.TargetFrac/rate)
}

// BaselineDriveTime returns the 24 GHz drive time (Table 2: 578.2 ns).
func (m ResonatorDriveModel) BaselineDriveTime() float64 { return m.DriveTime(1) }

// FastDriveTime returns the Opt-#8 48 GHz drive time (230.9 ns).
func (m ResonatorDriveModel) FastDriveTime() float64 { return m.DriveTime(2) }

// RateBoost computes the achievable energy-rate multiplier of a boosted
// clock from first principles: it builds the baseline and boosted pulse
// trains and compares their coherent drive energies per unit time at the
// resonator frequency.
func (m ResonatorDriveModel) RateBoost() float64 {
	n := 4096
	slow := pulse.AlignedTrain(n, m.ResonatorFreqHz, m.Clocks.SFQHz, 1)
	fast := pulse.AlignedTrain(2*n, m.ResonatorFreqHz, m.Clocks.SFQBoostHz, 2)
	eSlow := slow.DriveEnergyAt(m.ResonatorFreqHz, m.Clocks.SFQHz) / (float64(n) / m.Clocks.SFQHz)
	eFast := fast.DriveEnergyAt(m.ResonatorFreqHz, m.Clocks.SFQBoostHz) / (float64(2*n) / m.Clocks.SFQBoostHz)
	return eFast / eSlow
}

// LJJModel is the behavioural model of the mK JPM-readout circuit: two
// inductance-biased long-Josephson-junction transmission lines whose delay
// difference discriminates the JPM state.
type LJJModel struct {
	// InductancePH is the per-cell bias inductance (40 pH baseline; Opt-#3
	// re-design uses the 4 pH scale common to the MITLL and AIST libraries).
	InductancePH float64
	// JPMsPerLine is the number of JPMs sharing one LJJ line (1 or 8).
	JPMsPerLine int
	// BaseDelay is the single-JPM 40 pH propagation delay (Table 2: 4 ns).
	BaseDelay float64
	// MuxOverhead is the per-extra-JPM merge overhead.
	MuxOverhead float64
	// NoiseMarginSigmas is the thermal-noise margin of the discriminating
	// DFF under the AIST process; failures go as the Gaussian tail.
	NoiseMarginSigmas float64
}

// DefaultLJJ returns the unshared baseline (4 ns, 40 pH, margin such that no
// failure is observed — consistent with both the paper's JoSIM runs and the
// referenced experiments).
func DefaultLJJ() LJJModel {
	return LJJModel{
		InductancePH:      40,
		JPMsPerLine:       1,
		BaseDelay:         4e-9,
		MuxOverhead:       0.411e-9,
		NoiseMarginSigmas: 8,
	}
}

// SharedLJJ returns the Opt-#3 8-way shared re-design: 4 pH inductance keeps
// the longer line's delay at ~13 ns.
func SharedLJJ() LJJModel {
	l := DefaultLJJ()
	l.InductancePH = 4
	l.JPMsPerLine = 8
	return l
}

// Delay returns the readout propagation delay: the pulse transit time scales
// with line length (one segment per JPM) and with √L of the cells.
func (l LJJModel) Delay() float64 {
	scale := math.Sqrt(l.InductancePH / 40.0)
	return float64(l.JPMsPerLine)*l.BaseDelay*scale + float64(l.JPMsPerLine-1)*l.MuxOverhead
}

// FailureRate returns the thermal-noise-induced misread probability, the
// Gaussian tail of the timing margin. For the design points used in the
// paper this is numerically zero (< 1e-15), matching the observation that
// neither the model nor prior studies saw any LJJ readout error.
func (l LJJModel) FailureRate() float64 {
	return 0.5 * math.Erfc(l.NoiseMarginSigmas/math.Sqrt2)
}

// StaticPowerZero reports that LJJ lines consume no static power thanks to
// inductance biasing — the property Opt-#3 exploits.
func (l LJJModel) StaticPowerZero() bool { return true }

// ShareMode selects the JPM readout organisation.
type ShareMode int

const (
	// Unshared gives every JPM its own readout circuit (baseline and the
	// Opt-#8 ERSFQ end state).
	Unshared ShareMode = iota
	// NaiveShared serialises the full 4-stage readout across the group.
	NaiveShared
	// Pipelined overlaps stages so that no JPM-readout stage coincides with
	// a JPM-writing stage (tunnelling/reset) on the shared line (Opt-#3).
	Pipelined
)

func (m ShareMode) String() string {
	switch m {
	case Unshared:
		return "unshared"
	case NaiveShared:
		return "naive-shared"
	case Pipelined:
		return "shared+pipelined"
	default:
		return fmt.Sprintf("ShareMode(%d)", int(m))
	}
}

// StageEvent is one scheduled stage occurrence, for timeline inspection
// (Fig. 15(b)).
type StageEvent struct {
	Qubit int
	Stage string
	Start float64
	End   float64
}

// Pipeline is the Opt-#3 JPM readout scheduler.
type Pipeline struct {
	Mode      ShareMode
	GroupSize int
	Spec      phys.SFQReadoutSpec
	LJJ       LJJModel
	// FastDriving applies the Opt-#8 drive time in place of Spec's.
	FastDriving bool
	Drive       ResonatorDriveModel
}

// NewPipeline builds a scheduler for the given mode; group size defaults to 8
// for shared modes and 1 otherwise.
func NewPipeline(mode ShareMode) Pipeline {
	_, spec := phys.SFQOperationSpecs()
	p := Pipeline{Mode: mode, GroupSize: 1, Spec: spec, LJJ: DefaultLJJ(), Drive: DefaultResonatorDriveModel()}
	if mode != Unshared {
		p.GroupSize = 8
		p.LJJ = SharedLJJ()
	}
	return p
}

// driveTime returns the resonator-driving latency in effect.
func (p Pipeline) driveTime() float64 {
	if p.FastDriving {
		return p.Drive.FastDriveTime()
	}
	return p.Spec.ResonatorDriving.Latency
}

// Timeline returns the scheduled stage events for the whole group.
func (p Pipeline) Timeline() []StageEvent {
	drive := p.driveTime()
	tun := p.Spec.JPMTunneling.Latency
	read := p.LJJ.Delay()
	reset := p.Spec.Reset.Latency
	var ev []StageEvent
	add := func(q int, stage string, start, dur float64) float64 {
		ev = append(ev, StageEvent{Qubit: q, Stage: stage, Start: start, End: start + dur})
		return start + dur
	}
	switch p.Mode {
	case Unshared:
		for q := 0; q < p.GroupSize; q++ {
			t := add(q, "drive", 0, drive)
			t = add(q, "tunnel", t, tun)
			t = add(q, "read", t, read)
			add(q, "reset", t, reset)
		}
	case NaiveShared:
		t := 0.0
		for q := 0; q < p.GroupSize; q++ {
			t = add(q, "drive", t, drive)
			t = add(q, "tunnel", t, tun)
			t = add(q, "read", t, read)
			t = add(q, "reset", t, reset)
		}
	case Pipelined:
		// All resonators drive in parallel; the first JPM tunnels; then the
		// shared LJJ reads one JPM per slot while the previous JPM resets
		// (reset is a writing stage, so it may not overlap a read — hence
		// the slot length is read+reset; the next tunnelling hides inside
		// the previous reset window).
		for q := 0; q < p.GroupSize; q++ {
			add(q, "drive", 0, drive)
		}
		t := add(0, "tunnel", drive, tun)
		for q := 0; q < p.GroupSize; q++ {
			slot := t + float64(q)*(read+reset)
			end := add(q, "read", slot, read)
			add(q, "reset", end, reset)
			if q+1 < p.GroupSize {
				// next JPM tunnels during this reset window (write‖write ok)
				add(q+1, "tunnel", end, tun)
			}
		}
	}
	return ev
}

// TotalLatency returns the end-to-end readout latency for the group.
func (p Pipeline) TotalLatency() float64 {
	var max float64
	for _, e := range p.Timeline() {
		if e.End > max {
			max = e.End
		}
	}
	return max
}

// Validate checks the Opt-#3 scheduling invariant: on shared lines, no read
// overlaps any write (tunnel/reset) of another JPM in the group.
func (p Pipeline) Validate() error {
	if p.Mode == Unshared {
		return nil
	}
	ev := p.Timeline()
	for _, a := range ev {
		if a.Stage != "read" {
			continue
		}
		for _, b := range ev {
			if b.Qubit == a.Qubit || (b.Stage != "tunnel" && b.Stage != "reset") {
				continue
			}
			if a.Start < b.End-1e-15 && b.Start < a.End-1e-15 {
				return fmt.Errorf("jpm: read of q%d [%0.1f,%0.1f]ns overlaps %s of q%d [%0.1f,%0.1f]ns",
					a.Qubit, a.Start*1e9, a.End*1e9, b.Stage, b.Qubit, b.Start*1e9, b.End*1e9)
			}
		}
	}
	return nil
}

// ReadoutError returns the per-qubit SFQ readout error for this pipeline:
// the driving/tunnelling error, the LJJ failure tail, and the reset error
// combine independently. Sharing does not change the per-qubit error — it
// changes the latency (and hence decoherence, accounted elsewhere).
func (p Pipeline) ReadoutError() float64 {
	ok := (1 - p.Spec.ResonatorDriving.Error) *
		(1 - p.Spec.JPMTunneling.Error) *
		(1 - p.LJJ.FailureRate()) *
		(1 - p.Spec.Reset.Error)
	return 1 - ok
}
