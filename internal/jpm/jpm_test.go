package jpm

import (
	"math"
	"testing"
)

func nsApprox(got, wantNS, tolNS float64) bool {
	return math.Abs(got*1e9-wantNS) <= tolNS
}

func TestBaselineDriveTimeTable2(t *testing.T) {
	m := DefaultResonatorDriveModel()
	if !nsApprox(m.BaselineDriveTime(), 578.2, 1.0) {
		t.Fatalf("baseline drive time %.1f ns, want 578.2 ns (Table 2)", m.BaselineDriveTime()*1e9)
	}
}

func TestFastDriveTimeOpt8(t *testing.T) {
	m := DefaultResonatorDriveModel()
	// Opt-#8 anchor: 230.9 ns. Our first-principles rate boost is 2.0, which
	// lands at ~228 ns — same error target, same shape.
	if !nsApprox(m.FastDriveTime(), 230.9, 6.0) {
		t.Fatalf("fast drive time %.1f ns, want ~230.9 ns (Opt-#8)", m.FastDriveTime()*1e9)
	}
	if m.FastDriveTime() >= m.BaselineDriveTime()/2 {
		t.Fatal("fast driving should be more than 2x faster (ring-up saturation)")
	}
}

func TestRateBoostFromFirstPrinciples(t *testing.T) {
	m := DefaultResonatorDriveModel()
	boost := m.RateBoost()
	if boost < 1.7 || boost > 2.2 {
		t.Fatalf("48 GHz burst train rate boost = %.3f, want ~2", boost)
	}
}

func TestDriveTimeBelowTargetIsInfinite(t *testing.T) {
	m := DefaultResonatorDriveModel()
	if !math.IsInf(m.DriveTime(m.TargetFrac*0.9), 1) {
		t.Fatal("a drive rate below the target fraction can never reach it")
	}
}

func TestLJJDelays(t *testing.T) {
	if !nsApprox(DefaultLJJ().Delay(), 4.0, 0.01) {
		t.Fatalf("unshared LJJ delay %.2f ns, want 4 ns (Table 2)", DefaultLJJ().Delay()*1e9)
	}
	if !nsApprox(SharedLJJ().Delay(), 13.0, 0.1) {
		t.Fatalf("shared LJJ delay %.2f ns, want 13 ns (Opt-#3)", SharedLJJ().Delay()*1e9)
	}
}

func TestLJJNoObservedError(t *testing.T) {
	// "neither our results nor the previous studies observe any error".
	for _, l := range []LJJModel{DefaultLJJ(), SharedLJJ()} {
		if f := l.FailureRate(); f > 1e-12 {
			t.Fatalf("LJJ failure rate %.3g should be numerically zero", f)
		}
		if !l.StaticPowerZero() {
			t.Fatal("inductance-biased LJJ must have zero static power")
		}
	}
}

func TestUnsharedLatencyTable2(t *testing.T) {
	p := NewPipeline(Unshared)
	if !nsApprox(p.TotalLatency(), 665.0, 0.5) {
		t.Fatalf("unshared readout %.1f ns, want 665 ns", p.TotalLatency()*1e9)
	}
}

func TestNaiveSharingLatencyFig15(t *testing.T) {
	p := NewPipeline(NaiveShared)
	// Paper: 5,320 ns (8 × 665 with the 4 ns read); our shared line reads in
	// 13 ns → 5,392 ns. Same pathology, ~1% apart.
	got := p.TotalLatency() * 1e9
	if got < 5200 || got > 5500 {
		t.Fatalf("naive sharing latency %.0f ns, want ~5,320 ns (Fig. 15)", got)
	}
}

func TestPipelinedLatencyFig15(t *testing.T) {
	p := NewPipeline(Pipelined)
	if !nsApprox(p.TotalLatency(), 1255.0, 1.0) {
		t.Fatalf("pipelined latency %.1f ns, want 1,255 ns (Opt-#3)", p.TotalLatency()*1e9)
	}
}

func TestPipelinedInvariant(t *testing.T) {
	// The Opt-#3 core rule: reads never overlap writes on a shared line.
	for _, mode := range []ShareMode{NaiveShared, Pipelined} {
		p := NewPipeline(mode)
		if err := p.Validate(); err != nil {
			t.Fatalf("%v schedule violates the read/write rule: %v", mode, err)
		}
	}
}

func TestPipelinedBeatsNaive(t *testing.T) {
	naive := NewPipeline(NaiveShared).TotalLatency()
	pipe := NewPipeline(Pipelined).TotalLatency()
	if pipe >= naive/3 {
		t.Fatalf("pipelining should cut latency several-fold: %.0f vs %.0f ns", pipe*1e9, naive*1e9)
	}
}

func TestOpt8UnsharedFast(t *testing.T) {
	p := NewPipeline(Unshared)
	p.FastDriving = true
	// 230.9 + 12.8 + 4 + 70 ≈ 317.7 ns in the paper; ours ~315 ns.
	if !nsApprox(p.TotalLatency(), 317.7, 6.0) {
		t.Fatalf("Opt-#8 readout %.1f ns, want ~317.7 ns", p.TotalLatency()*1e9)
	}
}

func TestReadoutErrorTable2Band(t *testing.T) {
	p := NewPipeline(Unshared)
	e := p.ReadoutError()
	// Driving/tunnelling 7.8e-3 + reset 7e-3 → ~1.47e-2 combined; the
	// Table 1 validation point (6.1e-3 model vs 6.0e-3 reference) applies to
	// the decoherence-free driving stage alone.
	if e < 7.8e-3 || e > 2e-2 {
		t.Fatalf("SFQ readout error %.3g outside the Table 2 band", e)
	}
	// Sharing must not change the per-qubit error, only latency.
	if s := NewPipeline(Pipelined).ReadoutError(); math.Abs(s-e) > 1e-12 {
		t.Fatalf("sharing changed readout error: %.3g vs %.3g", s, e)
	}
}

func TestTimelineStagesComplete(t *testing.T) {
	for _, mode := range []ShareMode{Unshared, NaiveShared, Pipelined} {
		p := NewPipeline(mode)
		counts := map[string]int{}
		for _, e := range p.Timeline() {
			counts[e.Stage]++
			if e.End <= e.Start {
				t.Fatalf("%v: empty stage event %+v", mode, e)
			}
		}
		for _, st := range []string{"drive", "tunnel", "read", "reset"} {
			if counts[st] != p.GroupSize {
				t.Fatalf("%v: stage %q occurs %d times, want %d", mode, st, counts[st], p.GroupSize)
			}
		}
	}
}

func TestShareModeString(t *testing.T) {
	if Unshared.String() != "unshared" || Pipelined.String() != "shared+pipelined" {
		t.Fatal("ShareMode strings changed")
	}
}
