// Benchmarks: one per table/figure of the paper's evaluation. Each bench
// regenerates its experiment end to end, so `go test -bench=. -benchmem`
// both times the framework and re-derives every reported number.
package qisim_test

import (
	"context"
	"fmt"
	"testing"

	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/dsp"
	"qisim/internal/experiments"
	"qisim/internal/gateerror"
	"qisim/internal/ham"
	"qisim/internal/jj"
	"qisim/internal/lattice"
	"qisim/internal/microarch"
	"qisim/internal/pauli"
	"qisim/internal/qcp"
	"qisim/internal/readout"
	"qisim/internal/scalability"
	"qisim/internal/simrun"
	"qisim/internal/surface"
	"qisim/internal/validate"
	"qisim/internal/verilog"
	"qisim/internal/workloads"
)

func BenchmarkFig08CMOSValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := validate.Fig8CMOSPower()
		if validate.MaxError(rows) > 0.065 {
			b.Fatal("Fig. 8 accuracy regression")
		}
	}
}

func BenchmarkFig10SFQValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, p := validate.Fig10SFQ()
		if validate.MaxError(f) > 0.08 || validate.MaxError(p) > 0.085 {
			b.Fatal("Fig. 10 accuracy regression")
		}
	}
}

func BenchmarkTable1GateErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := validate.Table1GateErrors()
		if validate.MaxError(rows) > 0.30 {
			b.Fatal("Table 1 accuracy regression")
		}
	}
}

func BenchmarkFig11WorkloadFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := validate.Fig11Workloads()
		if err != nil {
			b.Fatal(err)
		}
		if m := validate.MeanError(rows); m > 0.08 {
			b.Fatal("Fig. 11 accuracy regression")
		}
	}
}

func BenchmarkTable2Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.Table2(); len(s) == 0 {
			b.Fatal("empty setup")
		}
	}
}

func BenchmarkFig12Scalability300K(b *testing.B) {
	opt := scalability.DefaultOptions()
	for i := 0; i < b.N; i++ {
		for _, d := range []microarch.Design{
			microarch.Baseline300KCoax(), microarch.Baseline300KMicrostrip(), microarch.Baseline300KPhotonic(),
		} {
			a := scalability.Analyze(d, opt)
			if a.MaxQubits >= 1000 {
				b.Fatalf("%s exceeded 1,000 qubits", d.Name)
			}
		}
	}
}

func BenchmarkFig13Scalability4K(b *testing.B) {
	opt := scalability.DefaultOptions()
	for i := 0; i < b.N; i++ {
		if a := scalability.Analyze(microarch.CMOS4KOpt12(), opt); a.MaxQubits < 1152 {
			b.Fatal("near-term CMOS target regression")
		}
		if a := scalability.Analyze(microarch.RSFQOpt345(), opt); a.MaxQubits < 1152 {
			b.Fatal("near-term RSFQ target regression")
		}
	}
}

func BenchmarkFig14BitPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14()
		if r.LogicalSaturationBits > 7 {
			b.Fatal("logical saturation regression")
		}
	}
}

func BenchmarkFig15JPMSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15()
		if r.PipelinedNS > 1300 {
			b.Fatal("pipelined latency regression")
		}
	}
}

func BenchmarkFig16SFQOpts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16()
		if r.BitgenReduction < 0.9 {
			b.Fatal("Opt-#4 regression")
		}
	}
}

func BenchmarkFig17LongTerm(b *testing.B) {
	opt := scalability.DefaultOptions()
	for i := 0; i < b.N; i++ {
		if a := scalability.Analyze(microarch.ERSFQOpt8(), opt); a.MaxQubits < 62208 {
			b.Fatal("long-term target regression")
		}
	}
}

func BenchmarkFig18InstructionMasking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig18()
		if r.BandwidthSaved < 0.85 {
			b.Fatal("Opt-#6 regression")
		}
	}
}

func BenchmarkFig19MultiRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig19()
		if r.MultiRound.Speedup < 0.3 {
			b.Fatal("Opt-#7 regression")
		}
	}
}

func BenchmarkFig20FastDriving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig20()
		if r.FastDriveNS > 260 {
			b.Fatal("Opt-#8 regression")
		}
	}
}

// ---- component micro-benchmarks ----

func BenchmarkCMOS1QGateErrorModel(b *testing.B) {
	cfg := gateerror.DefaultCMOS1QConfig()
	cfg.Trials = 2
	for i := 0; i < b.N; i++ {
		gateerror.CMOS1QError(cfg)
	}
}

func BenchmarkCZGateErrorModel(b *testing.B) {
	cfg := gateerror.DefaultCZConfig()
	cfg.Trials = 2
	for i := 0; i < b.N; i++ {
		gateerror.CZError(cfg)
	}
}

func BenchmarkSFQBitstreamOptimizer(b *testing.B) {
	cfg := gateerror.DefaultSFQ1QConfig()
	for i := 0; i < b.N; i++ {
		gateerror.SFQ1QError(cfg)
	}
}

func BenchmarkCycleSimESMd9(b *testing.B) {
	patch := surface.NewPatch(9)
	ex := esmExecutable(b, patch)
	cfg := cyclesim.CMOSConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cyclesim.Run(ex, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurfaceCodeDecoder measures the sharded Monte-Carlo engine's
// scaling across worker counts: every sub-benchmark runs the identical
// 8,000-shot d=5 MWPM workload (bit-identical result by construction) and
// reports throughput as shots/sec. ShardSize 256 gives ~31 shards so the
// fan-out has real work to distribute.
func BenchmarkSurfaceCodeDecoder(b *testing.B) {
	const shots = 8000
	ctx := context.Background()
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := simrun.Options{Workers: w, ShardSize: 256}
			for i := 0; i < b.N; i++ {
				if _, err := surface.MonteCarloLogicalErrorCtx(ctx, 5, 0.01, shots, int64(i), opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/sec")
		})
	}
}

// BenchmarkReadoutMultiRoundMC scales the multi-round readout sampler the
// same way: same tally for every worker count, throughput in shots/sec.
func BenchmarkReadoutMultiRoundMC(b *testing.B) {
	ctx := context.Background()
	c, tm := readout.DefaultChain(), readout.DefaultTiming()
	cfg := readout.DefaultMultiRoundConfig()
	cfg.Shots = 20000
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := simrun.Options{Workers: w, ShardSize: 512}
			for i := 0; i < b.N; i++ {
				if _, err := readout.MultiRoundErrorCtx(ctx, c, tm, cfg, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cfg.Shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/sec")
		})
	}
}

func BenchmarkWorkloadESP(b *testing.B) {
	prog := workloads.GHZ(16)
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	res, err := cyclesim.Run(ex, cyclesim.CMOSConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := pauli.DefaultConfig(validate.Machines()[0].Rates)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pauli.ESP(res, cfg)
	}
}

func BenchmarkSurfacePhenomenological(b *testing.B) {
	for i := 0; i < b.N; i++ {
		surface.MonteCarloPhenomenological(3, 0.01, 0.01, 3, 200, int64(i))
	}
}

func BenchmarkUnionFindDecoder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		surface.MonteCarloUnionFind(5, 0.01, 200, int64(i))
	}
}

func BenchmarkVerilogGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mods := verilog.GenerateQCI(32, 24, 14, 7, true)
		if err := verilog.CheckBundle(mods); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedPointNCO(b *testing.B) {
	n := dsp.NewFixedNCO(24, 10, 14)
	fw := n.FreqWord(200e6, 2.5e9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(fw)
		n.Sample(8191, 0)
	}
}

func BenchmarkJTLinePropagation(b *testing.B) {
	l := jj.DefaultJTLine(20, 10)
	for i := 0; i < b.N; i++ {
		if d := l.PropagationDelay(5e-9); d <= 0 {
			b.Fatal("fluxon died")
		}
	}
}

func BenchmarkLatticeCNOTPipeline(b *testing.B) {
	layout := lattice.NewLayout(3, 3)
	tr := qcp.NewTranslator(layout)
	prog := lattice.CNOTProgram(layout, 0, 1, 2)
	for i := 0; i < b.N; i++ {
		if _, err := tr.Run(prog, cyclesim.CMOSConfig(), compile.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJPMTunnelLindblad(b *testing.B) {
	m := ham.DefaultJPMTunnelModel()
	for i := 0; i < b.N; i++ {
		m.TunnelProbability(1.0, 12.8e-9)
	}
}

func BenchmarkSFQ1QThreeLevel(b *testing.B) {
	cfg := gateerror.DefaultSFQ1QConfig()
	cfg.MaxOptimizeIters = 100
	cfg.AnharmonicityHz = -330e6
	for i := 0; i < b.N; i++ {
		gateerror.SFQ1QError(cfg)
	}
}

func esmExecutable(b *testing.B, patch *surface.Patch) *compile.Executable {
	b.Helper()
	ex, err := compile.Compile(esmProgram(patch), compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return ex
}
