// Command qisim-trace runs an OpenQASM 2 program on a QCI configuration and
// emits the cycle-accurate schedule as JSON — the gate-timing trace QIsim's
// downstream models (and external visualisers) consume.
//
// Usage:
//
//	qisim-trace [-arch cmos|sfq] [-fuse] file.qasm > trace.json
//	esmgen -d 3 | qisim-trace -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qisim/internal/buildinfo"
	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/qasm"
)

func main() {
	arch := flag.String("arch", "cmos", "QCI architecture: cmos or sfq")
	fuse := flag.Bool("fuse", false, "apply the Opt-#6 H·Rz fusion pass")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisim-trace"))
		return
	}
	if flag.NArg() != 1 {
		fatal("expected exactly one QASM file (or - for stdin)")
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fatal(err.Error())
	}
	prog, err := qasm.Parse(string(src))
	if err != nil {
		fatal(err.Error())
	}
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		fatal(err.Error())
	}
	if *fuse {
		n := compile.FuseHRz(ex)
		fmt.Fprintf(os.Stderr, "qisim-trace: fused %d H·Rz pairs\n", n)
	}
	cfg := cyclesim.CMOSConfig()
	if *arch == "sfq" {
		cfg = cyclesim.SFQConfig(1)
	}
	res, err := cyclesim.Run(ex, cfg)
	if err != nil {
		fatal(err.Error())
	}
	if err := cyclesim.BuildTrace(res).WriteJSON(os.Stdout); err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "qisim-trace:", msg)
	os.Exit(1)
}
