// Command esmgen emits error-syndrome-measurement (ESM) workloads — the
// peak-power workload of the scalability analysis — as OpenQASM 2, for use
// with the cycle-accurate simulator or external tools.
//
// Usage:
//
//	esmgen -d 5 -rounds 2 > esm_d5.qasm
package main

import (
	"flag"
	"fmt"
	"os"

	"qisim/internal/buildinfo"
	"qisim/internal/qasm"
	"qisim/internal/surface"
)

func main() {
	d := flag.Int("d", 3, "surface-code distance (odd, >= 3)")
	rounds := flag.Int("rounds", 1, "ESM rounds")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("esmgen"))
		return
	}
	if *d < 3 || *d%2 == 0 || *rounds < 1 {
		fmt.Fprintln(os.Stderr, "esmgen: distance must be odd >= 3 and rounds >= 1")
		os.Exit(2)
	}
	patch := surface.NewPatch(*d)
	prog := &qasm.Program{NQubits: patch.TotalQubits(), NClbits: len(patch.Ancillas)}
	for r := 0; r < *rounds; r++ {
		c := 0
		for _, op := range patch.ESMCircuit() {
			switch op.Kind {
			case "h":
				prog.Gates = append(prog.Gates, qasm.Gate{Name: "h", Qubits: []int{op.Q}, CBit: -1})
			case "cz":
				prog.Gates = append(prog.Gates, qasm.Gate{Name: "cz", Qubits: []int{op.Q, op.Q2}, CBit: -1})
			case "measure":
				prog.Gates = append(prog.Gates, qasm.Gate{Name: "measure", Qubits: []int{op.Q}, CBit: c})
				c++
			}
		}
		if r+1 < *rounds {
			prog.Gates = append(prog.Gates, qasm.Gate{Name: "barrier", CBit: -1})
		}
	}
	fmt.Print(qasm.Emit(prog))
}
