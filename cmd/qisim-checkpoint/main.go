// Command qisim-checkpoint is the operator's debugging loupe for crash-safe
// snapshot files (internal/checkpoint, *.qisnap): it verifies the container
// integrity (magic, declared length, CRC-32C, strict JSON, semantic
// validation) and prints what the snapshot holds without ever mutating it.
//
// Usage:
//
//	qisim-checkpoint inspect <file.qisnap>   verify + describe one snapshot
//	qisim-checkpoint inspect -json <file>    machine-readable description
//
// A corrupted, torn or otherwise unreadable snapshot exits with the
// invalid-config class code (4) and a diagnosis on stderr — the same typed
// rejection the resume path itself would raise, so `qisim-checkpoint
// inspect` is an exact preflight for `qisim mc -resume`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"qisim/internal/buildinfo"
	"qisim/internal/checkpoint"
	"qisim/internal/simerr"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the snapshot description as JSON")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisim-checkpoint"))
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(simerr.ExitUsage)
	}
	// Accept flags after the subcommand too: `inspect -json file`.
	if args[0] == "inspect" {
		fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
		j := fs.Bool("json", *jsonOut, "emit the snapshot description as JSON")
		if err := fs.Parse(args[1:]); err != nil {
			fail(simerr.Invalidf("inspect: %v", err))
		}
		if fs.NArg() != 1 {
			fail(simerr.Invalidf("inspect requires exactly one snapshot file"))
		}
		if err := inspect(fs.Arg(0), *j); err != nil {
			fail(err)
		}
		return
	}
	usage()
	fail(simerr.Invalidf("unknown subcommand %q", args[0]))
}

func inspect(path string, jsonOut bool) error {
	s, err := checkpoint.Load(path)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	fmt.Printf("snapshot:    %s\n", path)
	fmt.Printf("integrity:   OK (CRC-32C verified, container v%d)\n", s.Version)
	fmt.Printf("kind:        %s\n", s.Meta.Kind)
	fmt.Printf("key:         %s\n", s.Meta.Key)
	fmt.Printf("seed:        %d   shard size: %d\n", s.Meta.Seed, s.Meta.ShardSize)
	fmt.Printf("progress:    %d/%d shots in %d committed shards (%d events)\n",
		s.Shots, s.Meta.Budget, s.Shards, s.Events)
	if s.Meta.TargetRelStdErr > 0 {
		fmt.Printf("convergence: target rel-se %g (min shots %d), guard tripped: %v\n",
			s.Meta.TargetRelStdErr, s.Meta.MinShots, !s.NoConverge && s.Shots < s.Meta.Budget && s.Final)
	}
	state := "resumable mid-run"
	switch {
	case s.Complete():
		state = "complete (resume returns the full result without spending shots)"
	case s.Final:
		state = "final flush of an interrupted run (resume continues from here)"
	}
	fmt.Printf("state:       %s\n", state)
	fmt.Printf("accumulator: %d bytes of JSON\n", len(s.State))
	fmt.Printf("saved at:    %s\n", s.SavedAt.Format("2006-01-02 15:04:05 MST"))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "qisim-checkpoint:", err)
	os.Exit(simerr.ExitCode(err))
}

func usage() {
	fmt.Fprintln(os.Stderr, `qisim-checkpoint — inspect crash-safe Monte-Carlo snapshots (*.qisnap)

  qisim-checkpoint inspect [-json] <file>   verify container integrity and describe the snapshot

A torn or corrupted snapshot exits with code 4 (invalid config) and the same
typed diagnosis the resume path raises — inspect is an exact preflight for
resuming.`)
}
