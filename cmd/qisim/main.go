// Command qisim is the QIsim scalability-analysis CLI: it evaluates the QCI
// design points of the paper's Section 6 against the refrigerator budgets
// and logical-error targets, reporting how many physical qubits each design
// supports and what limits it.
//
// Usage:
//
//	qisim [-timeout d] [-json] designs            list the named design points
//	qisim [-timeout d] [-json] analyze [name ...] analyze designs (default: all)
//	qisim [-timeout d] [-json] sweep <name> <N ...>  per-stage utilisation at qubit counts
//	qisim [-timeout d] [-json] mc [flags]         phenomenological Monte-Carlo run
//	qisim scorecard                               reproduction headlines vs the paper
//	qisim lattice <design> <d>                    logical CNOT/memory estimate
//
// SIGINT/SIGTERM and -timeout cancel the run cooperatively: partial results
// computed so far are still printed (flagged "truncated" in -json output)
// and the process exits with code 3 (interrupted). Other failures exit with
// the per-class codes of internal/simerr (4 invalid config, 5 numerical,
// 6 budget infeasible, 7 unsupported QASM).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"qisim/internal/buildinfo"
	"qisim/internal/checkpoint"
	"qisim/internal/experiments"
	"qisim/internal/lattice"
	"qisim/internal/microarch"
	"qisim/internal/obs"
	"qisim/internal/rescache"
	"qisim/internal/scalability"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
	"qisim/internal/surface"
	"qisim/internal/wiring"
)

// logger is the process-wide structured logger, installed by main before any
// subcommand runs. Checkpoint/resume notices and warnings go through it so
// -log-format=json keeps stderr machine-parseable.
var logger = obs.Discard()

func main() {
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = none)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables (analyze, sweep, mc)")
	workers := flag.Int("workers", 0, "parallel worker goroutines for MC/sweep runs (0 = all cores, 1 = serial; results are identical for every value)")
	traceOut := flag.String("trace-out", "", "record a span trace of the run and write it as Chrome trace_event JSON to this file")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisim"))
		return
	}
	var err error
	logger, err = obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qisim:", err)
		os.Exit(simerr.ExitCode(simerr.Invalidf("%v", err)))
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(simerr.ExitUsage)
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "qisim: -workers must be >= 0")
		os.Exit(simerr.ExitUsage)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// -trace-out arms the span tracer for the whole run: a root "cli" span
	// names the subcommand, and every traced layer underneath (sharded engine,
	// scalability fan-out, checkpointing) hangs off it via the context.
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.NewTracer(obs.TracerConfig{ID: "qisim"})
		ctx = obs.WithTracer(ctx, tr)
	}
	runErr := func() error {
		if tr != nil {
			span := tr.Start("cli", nil,
				obs.String("cmd", args[0]), obs.String("argv", strings.Join(args[1:], " ")))
			ctx = obs.ContextWithSpan(ctx, tr, span)
			defer span.End()
		}
		return run(ctx, args, *jsonOut, *workers)
	}()
	// The trace is best-effort observability: an export failure is a warning
	// and never changes the run's own exit code (the result already printed).
	if tr != nil {
		if err := obs.WriteChromeFile(*traceOut, tr); err != nil {
			logger.Warn("trace export failed; run result unaffected", "err", err, "path", *traceOut)
		} else {
			logger.Debug("trace written", "path", *traceOut, "spans", tr.Len(), "dropped", tr.Dropped())
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "qisim:", runErr)
		os.Exit(simerr.ExitCode(runErr))
	}
}

func run(ctx context.Context, args []string, jsonOut bool, workers int) error {
	switch args[0] {
	case "designs":
		for _, d := range microarch.AllDesigns() {
			fmt.Println(d)
		}
		return nil
	case "analyze":
		return analyze(ctx, args[1:], jsonOut, workers)
	case "sweep":
		if len(args) < 3 {
			return simerr.Invalidf("sweep requires a design name and at least one qubit count")
		}
		return sweep(ctx, args[1], args[2:], jsonOut, workers)
	case "mc":
		return mc(ctx, args[1:], jsonOut, workers)
	case "scorecard":
		fmt.Print(experiments.HeadlineTable())
		return nil
	case "lattice":
		if len(args) != 3 {
			return simerr.Invalidf("lattice requires <design> <distance>")
		}
		return latticeCmd(args[1], args[2])
	default:
		// An unrecognized subcommand is a configuration error (exit 4), not a
		// "called with no arguments" usage error (exit 2): the caller asked
		// for something specific and we could not honour it.
		usage()
		return simerr.Invalidf("unknown subcommand %q", args[0])
	}
}

// latticeCmd estimates a logical CNOT and a 1,000-round memory on a design.
func latticeCmd(name, distStr string) error {
	d, ok := findDesign(name)
	if !ok {
		return simerr.Invalidf("unknown design %q", name)
	}
	dist, err := strconv.Atoi(distStr)
	if err != nil {
		return simerr.Invalidf("bad distance %q", distStr)
	}
	layout, err := lattice.NewLayoutChecked(3, dist)
	if err != nil {
		return err
	}
	cnot := lattice.CNOTProgram(layout, 0, 1, 2)
	ex, err := lattice.Execute(cnot, d)
	if err != nil {
		return err
	}
	fmt.Printf("logical CNOT at d=%d on %s:\n", dist, d.Name)
	fmt.Printf("  rounds %d, wall clock %.2f µs, p_L %.3g/patch/round, success %.8f\n",
		ex.Stats.TotalRounds, ex.WallClock*1e6, ex.LogicalErr, ex.Success)
	mem := lattice.MemoryProgram(lattice.NewLayout(2, dist), 1000)
	need := lattice.RequiredDistance(mem, d, 0.99)
	fmt.Printf("distance needed for 99%% over 1,000 memory rounds: d = %d\n", need)
	return nil
}

func analyze(ctx context.Context, names []string, jsonOut bool, workers int) error {
	opt := scalability.DefaultOptions()
	opt.Workers = workers
	var as []scalability.Analysis
	var status simrun.Status
	if len(names) == 0 {
		var err error
		as, status, err = scalability.AnalyzeAllCtx(ctx, opt)
		if err != nil {
			return err
		}
	} else {
		for _, n := range names {
			d, ok := findDesign(n)
			if !ok {
				return simerr.Invalidf("unknown design %q (see `qisim designs`)", n)
			}
			a, err := scalability.AnalyzeChecked(d, opt)
			if err != nil {
				return err
			}
			as = append(as, a)
		}
	}
	if jsonOut {
		if err := scalability.WriteJSON(os.Stdout, as); err != nil {
			return err
		}
	} else {
		fmt.Print(scalability.Table(as))
	}
	return status.Err() // exit 3 with the partial table already printed
}

func sweep(ctx context.Context, name string, counts []string, jsonOut bool, workers int) error {
	d, ok := findDesign(name)
	if !ok {
		return simerr.Invalidf("unknown design %q", name)
	}
	var ns []int
	for _, c := range counts {
		n, err := strconv.Atoi(c)
		if err != nil {
			return simerr.Invalidf("bad qubit count %q", c)
		}
		ns = append(ns, n)
	}
	opt := scalability.DefaultOptions()
	opt.Workers = workers
	res, err := scalability.SweepCtx(ctx, d, ns, opt)
	if err != nil {
		return err
	}
	if jsonOut {
		if err := emitJSON(res); err != nil {
			return err
		}
	} else {
		fmt.Printf("%10s %10s %10s %10s %12s %12s %9s\n", "qubits", "4K", "100mK", "20mK", "p_L", "target", "feasible")
		for _, p := range res.Points {
			fmt.Printf("%10d %9.1f%% %9.1f%% %9.1f%% %12.3g %12.3g %9v\n",
				p.Qubits,
				100*p.Utilization[wiring.Stage4K],
				100*p.Utilization[wiring.Stage100mK],
				100*p.Utilization[wiring.Stage20mK],
				p.LogicalError, p.Target, p.Feasible)
		}
		if res.Status.Truncated {
			fmt.Printf("(truncated after %d/%d points)\n", res.Status.Completed, res.Status.Requested)
		}
	}
	return res.Status.Err()
}

// mc runs the phenomenological surface-code Monte-Carlo decoder with full
// cancellation support — the CLI face of the context-aware simulation layer.
// On SIGINT or timeout it emits the partial estimate (valid JSON with
// status.truncated=true under -json) and exits with code 3.
//
// With -checkpoint-dir the committed shard prefix is persisted at shard
// boundaries (and flushed once more when the run stops, so ^C loses
// nothing); -resume restarts from that snapshot and produces output
// byte-identical to an uninterrupted run. The snapshot is keyed by the
// normalized request (the same content address qisimd uses), so resuming
// with different parameters is refused with a typed error rather than
// silently mixing runs.
func mc(ctx context.Context, args []string, jsonOut bool, workers int) error {
	fs := flag.NewFlagSet("mc", flag.ContinueOnError)
	d := fs.Int("d", 11, "code distance (odd, >= 3)")
	p := fs.Float64("p", 0.005, "data error probability per round")
	q := fs.Float64("q", 0.005, "measurement error probability per round")
	rounds := fs.Int("rounds", 0, "syndrome rounds (0 = d rounds)")
	shots := fs.Int("shots", 200000, "shot budget")
	seed := fs.Int64("seed", 1, "RNG seed")
	relSE := fs.Float64("rel-se", 0, "convergence target: stop once the relative std-err drops below this (0 = run full budget)")
	mcWorkers := fs.Int("workers", workers, "parallel worker goroutines (0 = all cores, 1 = serial; the estimate is identical for every value)")
	shardSize := fs.Int("shard-size", 0, "shots per shard (0 = engine default; part of the RNG stream layout and the checkpoint identity)")
	ckptDir := fs.String("checkpoint-dir", "", "persist crash-safe checkpoints of the committed shard prefix in this directory")
	resume := fs.Bool("resume", false, "resume from the checkpoint in -checkpoint-dir (bit-identical to an uninterrupted run)")
	ckptEvery := fs.Int("checkpoint-every", 1, "write a checkpoint every N committed shards (the final flush always writes)")
	if err := fs.Parse(args); err != nil {
		return simerr.Invalidf("mc: %v", err)
	}
	r := *rounds
	if r == 0 {
		r = *d
	}
	opt := simrun.Options{TargetRelStdErr: *relSE, Workers: *mcWorkers, ShardSize: *shardSize}
	sv, err := wireCheckpoint(&opt, *ckptDir, *resume, *ckptEvery, "surface.mc",
		map[string]any{"distance": *d, "p": *p, "q": *q, "rounds": r, "shots": *shots, "rel_se": *relSE},
		*seed, *shots)
	if err != nil {
		return err
	}
	res, err := surface.MonteCarloPhenomenologicalCtx(ctx, *d, *p, *q, r, *shots, *seed, opt)
	reportCheckpoint(sv, err == nil && res.Status.Truncated)
	if err != nil {
		return err
	}
	if jsonOut {
		out := struct {
			Distance int     `json:"distance"`
			P        float64 `json:"p"`
			Q        float64 `json:"q"`
			Rounds   int     `json:"rounds"`
			Rate     float64 `json:"logical_error_rate"`
			surface.DecoderResult
		}{*d, *p, *q, r, res.Rate(), res}
		if err := emitJSON(out); err != nil {
			return err
		}
	} else {
		fmt.Printf("d=%d p=%g q=%g rounds=%d: p_L = %.4g (%d failures / %d shots)\n",
			*d, *p, *q, r, res.Rate(), res.Failures, res.Shots)
		if res.Status.Truncated {
			fmt.Printf("(truncated: %s after %d/%d shots — partial estimate)\n",
				res.Status.StopReason, res.Status.Completed, res.Status.Requested)
		} else if res.Status.Converged {
			fmt.Printf("(converged after %d/%d shots)\n", res.Status.Completed, res.Status.Requested)
		}
	}
	return res.Status.Err()
}

// wireCheckpoint configures crash-safe checkpointing on opt. The snapshot is
// keyed by the same content address the qisimd result cache uses — kind +
// normalized params + seed + effective shard size — so a checkpoint can only
// ever resume the exact run that wrote it. With dir == "" it is a no-op
// (nil Saver, safe to pass to reportCheckpoint). With resume it loads the
// snapshot at the derived path: a missing file starts cold, a corrupted or
// mismatched file is a typed error (never silently replayed).
func wireCheckpoint(opt *simrun.Options, dir string, resume bool, every int,
	kind string, params map[string]any, seed int64, shots int) (*checkpoint.Saver, error) {
	if dir == "" {
		if resume {
			return nil, simerr.Invalidf("-resume requires -checkpoint-dir")
		}
		return nil, nil
	}
	ss := opt.ShardSize
	if ss <= 0 {
		ss = simrun.DefaultShardSize
	}
	key, err := rescache.KeyFor(kind, params, seed, ss)
	if err != nil {
		return nil, err
	}
	meta := checkpoint.Meta{
		Kind: kind, Key: string(key), Seed: seed, ShardSize: ss, Budget: shots,
		MinShots: opt.MinShots, TargetRelStdErr: opt.TargetRelStdErr,
	}
	sv, snap, err := checkpoint.Attach(opt, dir, resume, every, meta)
	if err != nil {
		return nil, err
	}
	if snap != nil {
		logger.Info("resuming from checkpoint",
			"kind", kind, "shots", snap.Shots, "budget", snap.Meta.Budget, "path", sv.Path)
	}
	return sv, nil
}

// reportCheckpoint surfaces the checkpoint outcome after a run: a write
// failure degraded durability (warning — the run result itself is still
// valid), and a truncated run prints where to resume from.
func reportCheckpoint(sv *checkpoint.Saver, truncated bool) {
	if sv == nil {
		return
	}
	if err := sv.Err(); err != nil {
		logger.Warn("checkpoint durability degraded", "err", err)
		return
	}
	if truncated {
		logger.Info("checkpoint saved — rerun with -resume to continue", "path", sv.Path)
	}
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func findDesign(name string) (microarch.Design, bool) {
	for _, d := range microarch.AllDesigns() {
		if d.Name == name {
			return d, true
		}
	}
	return microarch.Design{}, false
}

func usage() {
	fmt.Fprintln(os.Stderr, `qisim — QCI scalability analysis (QIsim reproduction)

  qisim [-timeout d] [-json] [-workers n] designs             list the named design points
  qisim [-timeout d] [-json] [-workers n] analyze [name ...]  analyze designs (default: all)
  qisim [-timeout d] [-json] [-workers n] sweep <name> <N ...> per-stage utilisation at qubit counts
  qisim [-timeout d] [-json] [-workers n] mc [flags]          phenomenological MC decoder run
  qisim scorecard                                reproduction headlines vs the paper
  qisim lattice <design> <d>                     logical CNOT/memory estimate on a design

-workers fans Monte-Carlo and sweep work out across n goroutines (0 = all
cores, 1 = serial); deterministic sharded RNG makes the result bit-identical
for every worker count. SIGINT or -timeout cancels cooperatively: partial
results are printed (flagged truncated in -json) and the exit code is 3.
mc -checkpoint-dir persists crash-safe snapshots of the committed shard
prefix (flushed once more on ^C); mc -resume restarts from that snapshot and
produces output byte-identical to an uninterrupted run. Inspect snapshots
with the qisim-checkpoint tool.
-trace-out=<file> records a span trace of the run (engine, shards, merges,
checkpoints) and writes Chrome trace_event JSON loadable in a trace viewer;
tracing never changes the computed results. -log-level and -log-format
control the structured stderr log (text or json).
Error-class exit codes: 4 invalid config, 5 numerical, 6 budget infeasible,
7 unsupported QASM.`)
}
