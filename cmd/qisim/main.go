// Command qisim is the QIsim scalability-analysis CLI: it evaluates the QCI
// design points of the paper's Section 6 against the refrigerator budgets
// and logical-error targets, reporting how many physical qubits each design
// supports and what limits it.
//
// Usage:
//
//	qisim designs                  list the named design points
//	qisim analyze [name ...]       analyze designs (default: all)
//	qisim sweep <name> <N ...>     per-stage utilisation at qubit counts
//	qisim scorecard                reproduction headlines vs the paper
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"qisim/internal/experiments"
	"qisim/internal/lattice"
	"qisim/internal/microarch"
	"qisim/internal/scalability"
	"qisim/internal/wiring"
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "designs":
		for _, d := range microarch.AllDesigns() {
			fmt.Println(d)
		}
	case "analyze":
		analyze(args[1:])
	case "sweep":
		if len(args) < 3 {
			fatal("sweep requires a design name and at least one qubit count")
		}
		sweep(args[1], args[2:])
	case "scorecard":
		fmt.Print(experiments.HeadlineTable())
	case "lattice":
		if len(args) != 3 {
			fatal("lattice requires <design> <distance>")
		}
		latticeCmd(args[1], args[2])
	default:
		usage()
		os.Exit(2)
	}
}

// latticeCmd estimates a logical CNOT and a 1,000-round memory on a design.
func latticeCmd(name, distStr string) {
	d, ok := findDesign(name)
	if !ok {
		fatal(fmt.Sprintf("unknown design %q", name))
	}
	dist, err := strconv.Atoi(distStr)
	if err != nil || dist < 3 || dist%2 == 0 {
		fatal("distance must be odd and >= 3")
	}
	layout := lattice.NewLayout(3, dist)
	cnot := lattice.CNOTProgram(layout, 0, 1, 2)
	ex, err := lattice.Execute(cnot, d)
	if err != nil {
		fatal(err.Error())
	}
	fmt.Printf("logical CNOT at d=%d on %s:\n", dist, d.Name)
	fmt.Printf("  rounds %d, wall clock %.2f µs, p_L %.3g/patch/round, success %.8f\n",
		ex.Stats.TotalRounds, ex.WallClock*1e6, ex.LogicalErr, ex.Success)
	mem := lattice.MemoryProgram(lattice.NewLayout(2, dist), 1000)
	need := lattice.RequiredDistance(mem, d, 0.99)
	fmt.Printf("distance needed for 99%% over 1,000 memory rounds: d = %d\n", need)
}

func analyze(names []string) {
	opt := scalability.DefaultOptions()
	var as []scalability.Analysis
	if len(names) == 0 {
		as = scalability.AnalyzeAll(opt)
	} else {
		for _, n := range names {
			d, ok := findDesign(n)
			if !ok {
				fatal(fmt.Sprintf("unknown design %q (see `qisim designs`)", n))
			}
			as = append(as, scalability.Analyze(d, opt))
		}
	}
	fmt.Print(scalability.Table(as))
}

func sweep(name string, counts []string) {
	d, ok := findDesign(name)
	if !ok {
		fatal(fmt.Sprintf("unknown design %q", name))
	}
	var ns []int
	for _, c := range counts {
		n, err := strconv.Atoi(c)
		if err != nil || n <= 0 {
			fatal(fmt.Sprintf("bad qubit count %q", c))
		}
		ns = append(ns, n)
	}
	pts := scalability.Sweep(d, ns, scalability.DefaultOptions())
	fmt.Printf("%10s %10s %10s %10s %12s %12s %9s\n", "qubits", "4K", "100mK", "20mK", "p_L", "target", "feasible")
	for _, p := range pts {
		fmt.Printf("%10d %9.1f%% %9.1f%% %9.1f%% %12.3g %12.3g %9v\n",
			p.Qubits,
			100*p.Utilization[wiring.Stage4K],
			100*p.Utilization[wiring.Stage100mK],
			100*p.Utilization[wiring.Stage20mK],
			p.LogicalError, p.Target, p.Feasible)
	}
}

func findDesign(name string) (microarch.Design, bool) {
	for _, d := range microarch.AllDesigns() {
		if d.Name == name {
			return d, true
		}
	}
	return microarch.Design{}, false
}

func usage() {
	fmt.Fprintln(os.Stderr, `qisim — QCI scalability analysis (QIsim reproduction)

  qisim designs                  list the named design points
  qisim analyze [name ...]       analyze designs (default: all)
  qisim sweep <name> <N ...>     per-stage utilisation at qubit counts
  qisim scorecard                reproduction headlines vs the paper
  qisim lattice <design> <d>     logical CNOT/memory estimate on a design`)
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "qisim:", msg)
	os.Exit(1)
}
