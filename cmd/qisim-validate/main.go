// Command qisim-validate runs QIsim's validation campaign (Section 5 of the
// paper): the CMOS and SFQ circuit models, the five gate/readout error
// models, and the workload-level fidelity model.
//
// Usage:
//
//	qisim-validate                 run the full campaign
//	qisim-validate fig8|fig10|table1|fig11
//
// SIGINT/SIGTERM and -timeout cancel cooperatively between validations:
// reports already printed survive and the exit code is 3. Pipeline failures
// exit with the per-class codes of internal/simerr; accuracy-bound
// violations keep the campaign's own exit code 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"qisim/internal/buildinfo"
	"qisim/internal/simerr"
	"qisim/internal/validate"
)

func main() {
	timeout := flag.Duration("timeout", 0, "cancel the campaign after this duration (0 = none)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisim-validate"))
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"fig8", "fig10", "table1", "fig11"}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	failed, err := campaign(ctx, ids)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qisim-validate:", err)
		os.Exit(simerr.ExitCode(err))
	}
	if failed {
		fmt.Fprintln(os.Stderr, "qisim-validate: FAILED")
		os.Exit(1)
	}
	fmt.Println("qisim-validate: all validations within published accuracy bands")
}

func campaign(ctx context.Context, ids []string) (failed bool, err error) {
	for i, id := range ids {
		if cerr := ctx.Err(); cerr != nil {
			return failed, simerr.Interruptedf("stopped after %d/%d validations (%v)", i, len(ids), cerr)
		}
		switch id {
		case "fig8":
			rows := validate.Fig8CMOSPower()
			fmt.Print(validate.Report("Fig. 8 — 4K CMOS power (vs Horse Ridge I & II)", rows))
			failed = check("fig8", validate.MaxError(rows), 0.065) || failed
		case "fig10":
			f, p := validate.Fig10SFQ()
			fmt.Print(validate.Report("Fig. 10(a) — RSFQ frequency", f))
			fmt.Print(validate.Report("Fig. 10(b) — RSFQ power", p))
			failed = check("fig10-freq", validate.MaxError(f), 0.08) || failed
			failed = check("fig10-power", validate.MaxError(p), 0.085) || failed
		case "table1":
			rows := validate.Table1GateErrors()
			fmt.Print(validate.Report("Table 1 — gate error-rate validation", rows))
			failed = check("table1", validate.MaxError(rows), 0.30) || failed
		case "fig11":
			rows, ferr := validate.Fig11Workloads()
			if ferr != nil {
				return failed, ferr
			}
			fmt.Print(validate.Report("Fig. 11 — workload-level fidelity", rows))
			mean := validate.MeanError(rows)
			fmt.Printf("average fidelity difference: %.1f%% (paper: 5.1%%)\n", 100*mean)
			failed = check("fig11-mean", mean, 0.08) || failed
		default:
			return failed, simerr.Invalidf("unknown id %q", id)
		}
	}
	return failed, nil
}

func check(name string, got, bound float64) bool {
	if got > bound {
		fmt.Fprintf(os.Stderr, "qisim-validate: %s error %.3f exceeds bound %.3f\n", name, got, bound)
		return true
	}
	return false
}
