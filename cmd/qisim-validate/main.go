// Command qisim-validate runs QIsim's validation campaign (Section 5 of the
// paper): the CMOS and SFQ circuit models, the five gate/readout error
// models, and the workload-level fidelity model.
//
// Usage:
//
//	qisim-validate                 run the full campaign
//	qisim-validate fig8|fig10|table1|fig11
package main

import (
	"fmt"
	"os"

	"qisim/internal/validate"
)

func main() {
	ids := os.Args[1:]
	if len(ids) == 0 {
		ids = []string{"fig8", "fig10", "table1", "fig11"}
	}
	failed := false
	for _, id := range ids {
		switch id {
		case "fig8":
			rows := validate.Fig8CMOSPower()
			fmt.Print(validate.Report("Fig. 8 — 4K CMOS power (vs Horse Ridge I & II)", rows))
			failed = check("fig8", validate.MaxError(rows), 0.065) || failed
		case "fig10":
			f, p := validate.Fig10SFQ()
			fmt.Print(validate.Report("Fig. 10(a) — RSFQ frequency", f))
			fmt.Print(validate.Report("Fig. 10(b) — RSFQ power", p))
			failed = check("fig10-freq", validate.MaxError(f), 0.08) || failed
			failed = check("fig10-power", validate.MaxError(p), 0.085) || failed
		case "table1":
			rows := validate.Table1GateErrors()
			fmt.Print(validate.Report("Table 1 — gate error-rate validation", rows))
			failed = check("table1", validate.MaxError(rows), 0.30) || failed
		case "fig11":
			rows := validate.Fig11Workloads()
			fmt.Print(validate.Report("Fig. 11 — workload-level fidelity", rows))
			mean := validate.MeanError(rows)
			fmt.Printf("average fidelity difference: %.1f%% (paper: 5.1%%)\n", 100*mean)
			failed = check("fig11-mean", mean, 0.08) || failed
		default:
			fmt.Fprintf(os.Stderr, "qisim-validate: unknown id %q\n", id)
			os.Exit(2)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "qisim-validate: FAILED")
		os.Exit(1)
	}
	fmt.Println("qisim-validate: all validations within published accuracy bands")
}

func check(name string, got, bound float64) bool {
	if got > bound {
		fmt.Fprintf(os.Stderr, "qisim-validate: %s error %.3f exceeds bound %.3f\n", name, got, bound)
		return true
	}
	return false
}
