// Command qisim-rtl emits the parameterised Verilog RTL of the QCI digital
// parts (Section 4.1.1's Verilog code generator), after running the
// elaboration checker.
//
// Usage:
//
//	qisim-rtl [-fdm 32] [-phase 24] [-amp 14] [-iq 7] [-opt1] [-o dir]
//	          [-log-level info] [-log-format text]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"qisim/internal/buildinfo"
	"qisim/internal/obs"
	"qisim/internal/simerr"
	"qisim/internal/verilog"
)

func main() {
	fdm := flag.Int("fdm", 32, "drive FDM degree")
	phase := flag.Int("phase", 24, "NCO phase accumulator bits")
	amp := flag.Int("amp", 14, "DAC amplitude bits (Opt-#2 uses 6)")
	iq := flag.Int("iq", 7, "RX IQ sample bits")
	opt1 := flag.Bool("opt1", false, "use the Opt-#1 memory-less decision unit")
	out := flag.String("o", "", "output directory (default: stdout)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisim-rtl"))
		return
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qisim-rtl:", err)
		os.Exit(simerr.ExitCode(simerr.Invalidf("%v", err)))
	}

	mods := verilog.GenerateQCI(*fdm, *phase, *amp, *iq, !*opt1)
	if err := verilog.CheckBundle(mods); err != nil {
		logger.Error("elaboration check failed", "err", err, "class", simerr.Class(err))
		os.Exit(simerr.ExitCode(err))
	}
	if *out == "" {
		for _, m := range mods {
			fmt.Println(m.Source)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		logger.Error("cannot create output directory", "err", err, "dir", *out)
		os.Exit(1)
	}
	for _, m := range mods {
		path := filepath.Join(*out, m.Name+".v")
		if err := os.WriteFile(path, []byte(m.Source), 0o644); err != nil {
			logger.Error("cannot write module", "err", err, "path", path)
			os.Exit(1)
		}
		logger.Info("wrote module", "path", path, "module", m.Name)
	}
}
