// Command qisim-fidelity runs an OpenQASM 2 program through the full QIsim
// pipeline — parse → compile → cycle-accurate simulation → Pauli-channel
// fidelity — and reports timing, activity factors, and predicted fidelity.
//
// Usage:
//
//	qisim-fidelity [-machine ibm_mumbai] [-arch cmos|sfq] [-mc] [-workers n] file.qasm
//	cat circuit.qasm | qisim-fidelity -
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"qisim/internal/buildinfo"
	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/pauli"
	"qisim/internal/qasm"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
	"qisim/internal/validate"
)

func main() {
	machine := flag.String("machine", "ibm_mumbai", "reference machine (see qisim-fidelity -list)")
	arch := flag.String("arch", "cmos", "QCI architecture: cmos or sfq")
	mc := flag.Bool("mc", false, "also run the Monte-Carlo estimator")
	workers := flag.Int("workers", 0, "parallel worker goroutines for -mc (0 = all cores, 1 = serial; the estimate is identical for every value)")
	list := flag.Bool("list", false, "list reference machines")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisim-fidelity"))
		return
	}

	if *list {
		for _, m := range validate.Machines() {
			fmt.Printf("%-16s 1Q %.3g  2Q %.3g  RO %.3g  T1 %.0fµs  T2 %.0fµs\n",
				m.Name, m.Rates.OneQ, m.Rates.TwoQ, m.Rates.Readout, m.Rates.T1*1e6, m.Rates.T2*1e6)
		}
		return
	}
	if flag.NArg() != 1 {
		fatal("expected exactly one QASM file (or - for stdin)")
	}

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatalErr(err)
	}
	prog, err := qasm.Parse(src)
	if err != nil {
		fatalErr(err) // unsupported/malformed QASM exits with code 7
	}

	var rates pauli.ErrorRates
	found := false
	for _, m := range validate.Machines() {
		if m.Name == *machine {
			rates, found = m.Rates, true
		}
	}
	if !found {
		fatal(fmt.Sprintf("unknown machine %q (use -list)", *machine))
	}

	ex, err := compile.Compile(prog, compile.DefaultOptions())
	if err != nil {
		fatalErr(err)
	}
	var cfg cyclesim.Config
	switch *arch {
	case "cmos":
		cfg = cyclesim.CMOSConfig()
	case "sfq":
		cfg = cyclesim.SFQConfig(1)
	default:
		fatal("arch must be cmos or sfq")
	}
	res, err := cyclesim.Run(ex, cfg)
	if err != nil {
		fatalErr(err)
	}

	fmt.Printf("qubits:        %d\n", prog.NQubits)
	fmt.Printf("gates:         %d (1Q %d, 2Q %d, measure %d)\n",
		ex.NumOneQ+ex.NumTwoQ+ex.NumMeasure, ex.NumOneQ, ex.NumTwoQ, ex.NumMeasure)
	fmt.Printf("makespan:      %.1f ns\n", res.TotalTime*1e9)
	fmt.Printf("drive duty:    %.3f   pulse duty: %.3f   readout duty: %.3f\n",
		res.ActivityFactor("drive"), res.ActivityFactor("pulse"), res.ActivityFactor("readout"))
	pcfg := pauli.DefaultConfig(rates)
	fmt.Printf("fidelity:      %.4f  (%s, ESP)\n", pauli.ESP(res, pcfg), *machine)
	if *mc {
		pcfg.Shots = 50000
		mcRes, err := pauli.MonteCarloCtx(context.Background(), res, pcfg,
			simrun.Options{Workers: *workers})
		if err != nil {
			fatalErr(err)
		}
		fmt.Printf("fidelity (MC): %.4f  (50k shots)\n", mcRes.Fidelity)
	}
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "qisim-fidelity:", msg)
	os.Exit(1)
}

// fatalErr exits with the per-class code of the simerr contract (7 for
// unsupported QASM, 4 for invalid configuration, ...).
func fatalErr(err error) {
	fmt.Fprintln(os.Stderr, "qisim-fidelity:", err)
	os.Exit(simerr.ExitCode(err))
}
