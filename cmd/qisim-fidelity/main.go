// Command qisim-fidelity runs an OpenQASM 2 program through the full QIsim
// pipeline — parse → compile → cycle-accurate simulation → Pauli-channel
// fidelity — and reports timing, activity factors, and predicted fidelity.
//
// Usage:
//
//	qisim-fidelity [-machine ibm_mumbai] [-arch cmos|sfq] [-mc] [-workers n] file.qasm
//	cat circuit.qasm | qisim-fidelity -
//
// SIGINT/SIGTERM cancel the -mc estimator cooperatively: the partial
// estimate over the committed shard prefix is still printed (flagged
// truncated) and the process exits with code 3. With -checkpoint-dir the
// committed prefix is also persisted crash-safely, keyed by the normalized
// request (the same content address qisimd uses); -resume restarts from
// that snapshot and produces a fidelity bit-identical to an uninterrupted
// run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"qisim/internal/buildinfo"
	"qisim/internal/checkpoint"
	"qisim/internal/compile"
	"qisim/internal/cyclesim"
	"qisim/internal/obs"
	"qisim/internal/pauli"
	"qisim/internal/qasm"
	"qisim/internal/rescache"
	"qisim/internal/simerr"
	"qisim/internal/simrun"
	"qisim/internal/validate"
)

// logger is the process-wide structured logger, installed before the pipeline
// runs so checkpoint notices and trace-export warnings honour -log-format.
var logger = obs.Discard()

// tracer/traceOut are set when -trace-out is given; fatalErr flushes the
// (possibly partial) trace before exiting so failed runs can be diagnosed.
var (
	tracer   *obs.Tracer
	traceOut string
)

// flushTrace writes the Chrome trace if one was recorded. An export failure
// is a warning only: the run's own result and exit code are never affected.
func flushTrace() {
	if tracer == nil {
		return
	}
	if err := obs.WriteChromeFile(traceOut, tracer); err != nil {
		logger.Warn("trace export failed; run result unaffected", "err", err, "path", traceOut)
	}
	tracer = nil // idempotent: deferred and fatal paths may both call
}

func main() {
	machine := flag.String("machine", "ibm_mumbai", "reference machine (see qisim-fidelity -list)")
	arch := flag.String("arch", "cmos", "QCI architecture: cmos or sfq")
	mc := flag.Bool("mc", false, "also run the Monte-Carlo estimator")
	workers := flag.Int("workers", 0, "parallel worker goroutines for -mc (0 = all cores, 1 = serial; the estimate is identical for every value)")
	shots := flag.Int("shots", 50000, "-mc shot budget")
	seed := flag.Int64("seed", 3, "-mc RNG seed")
	shardSize := flag.Int("shard-size", 0, "-mc shots per shard (0 = engine default; part of the RNG stream layout and the checkpoint identity)")
	ckptDir := flag.String("checkpoint-dir", "", "persist crash-safe -mc checkpoints of the committed shard prefix in this directory")
	resume := flag.Bool("resume", false, "resume -mc from the checkpoint in -checkpoint-dir (bit-identical to an uninterrupted run)")
	ckptEvery := flag.Int("checkpoint-every", 1, "write a checkpoint every N committed shards (the final flush always writes)")
	list := flag.Bool("list", false, "list reference machines")
	traceOutFlag := flag.String("trace-out", "", "record a span trace of the run and write it as Chrome trace_event JSON to this file")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisim-fidelity"))
		return
	}
	var lerr error
	logger, lerr = obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "qisim-fidelity:", lerr)
		os.Exit(simerr.ExitCode(simerr.Invalidf("%v", lerr)))
	}

	if *list {
		for _, m := range validate.Machines() {
			fmt.Printf("%-16s 1Q %.3g  2Q %.3g  RO %.3g  T1 %.0fµs  T2 %.0fµs\n",
				m.Name, m.Rates.OneQ, m.Rates.TwoQ, m.Rates.Readout, m.Rates.T1*1e6, m.Rates.T2*1e6)
		}
		return
	}
	if flag.NArg() != 1 {
		fatal("expected exactly one QASM file (or - for stdin)")
	}
	if *resume && *ckptDir == "" {
		fatalErr(simerr.Invalidf("-resume requires -checkpoint-dir"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -trace-out arms the tracer for the whole pipeline; a root "cli" span
	// covers parse → compile → simulate → fidelity, and the -mc estimator's
	// engine spans nest underneath via the context. The trace flushes even on
	// a fatal exit (partial traces are how failed runs get diagnosed).
	if *traceOutFlag != "" {
		traceOut = *traceOutFlag
		tracer = obs.NewTracer(obs.TracerConfig{ID: "qisim-fidelity"})
		ctx = obs.WithTracer(ctx, tracer)
		root := tracer.Start("cli", nil, obs.String("cmd", "fidelity"))
		ctx = obs.ContextWithSpan(ctx, tracer, root)
		defer func() { root.End(); flushTrace() }()
	}

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatalErr(err)
	}
	_, parseSpan := obs.StartSpan(ctx, "qasm.parse")
	prog, err := qasm.Parse(src)
	parseSpan.End()
	if err != nil {
		fatalErr(err) // unsupported/malformed QASM exits with code 7
	}

	var rates pauli.ErrorRates
	found := false
	for _, m := range validate.Machines() {
		if m.Name == *machine {
			rates, found = m.Rates, true
		}
	}
	if !found {
		fatal(fmt.Sprintf("unknown machine %q (use -list)", *machine))
	}

	_, compileSpan := obs.StartSpan(ctx, "compile")
	ex, err := compile.Compile(prog, compile.DefaultOptions())
	compileSpan.End()
	if err != nil {
		fatalErr(err)
	}
	var cfg cyclesim.Config
	switch *arch {
	case "cmos":
		cfg = cyclesim.CMOSConfig()
	case "sfq":
		cfg = cyclesim.SFQConfig(1)
	default:
		fatal("arch must be cmos or sfq")
	}
	_, simSpan := obs.StartSpan(ctx, "cyclesim.run", obs.String("arch", *arch))
	res, err := cyclesim.Run(ex, cfg)
	simSpan.End()
	if err != nil {
		fatalErr(err)
	}

	fmt.Printf("qubits:        %d\n", prog.NQubits)
	fmt.Printf("gates:         %d (1Q %d, 2Q %d, measure %d)\n",
		ex.NumOneQ+ex.NumTwoQ+ex.NumMeasure, ex.NumOneQ, ex.NumTwoQ, ex.NumMeasure)
	fmt.Printf("makespan:      %.1f ns\n", res.TotalTime*1e9)
	fmt.Printf("drive duty:    %.3f   pulse duty: %.3f   readout duty: %.3f\n",
		res.ActivityFactor("drive"), res.ActivityFactor("pulse"), res.ActivityFactor("readout"))
	pcfg := pauli.DefaultConfig(rates)
	fmt.Printf("fidelity:      %.4f  (%s, ESP)\n", pauli.ESP(res, pcfg), *machine)
	if *mc {
		pcfg.Shots = *shots
		pcfg.Seed = *seed
		opt := simrun.Options{Workers: *workers, ShardSize: *shardSize}
		var sv *checkpoint.Saver
		if *ckptDir != "" {
			ss := opt.ShardSize
			if ss <= 0 {
				ss = simrun.DefaultShardSize
			}
			// Key params mirror qisimd's pauli.mc normalization (params minus
			// workers, with seed and shard size in the envelope), so the CLI
			// and the service agree on the checkpoint identity of a request.
			key, err := rescache.KeyFor("pauli.mc", map[string]any{
				"qasm": src, "machine": *machine, "arch": *arch,
				"shots": *shots, "period_ns": pcfg.DecoherencePeriod * 1e9, "rel_se": 0.0,
			}, *seed, ss)
			if err != nil {
				fatalErr(err)
			}
			meta := checkpoint.Meta{Kind: "pauli.mc", Key: string(key),
				Seed: *seed, ShardSize: ss, Budget: *shots}
			var snap *checkpoint.Snapshot
			sv, snap, err = checkpoint.Attach(&opt, *ckptDir, *resume, *ckptEvery, meta)
			if err != nil {
				fatalErr(err)
			}
			if snap != nil {
				logger.Info("resuming from checkpoint",
					"shots", snap.Shots, "budget", snap.Meta.Budget, "path", sv.Path)
			}
		}
		mcRes, err := pauli.MonteCarloCtx(ctx, res, pcfg, opt)
		if err != nil {
			fatalErr(err)
		}
		fmt.Printf("fidelity (MC): %.4f  (%d/%d shots)\n",
			mcRes.Fidelity, mcRes.Status.Completed, mcRes.Status.Requested)
		if sv != nil {
			if serr := sv.Err(); serr != nil {
				logger.Warn("checkpoint durability degraded", "err", serr)
			} else if mcRes.Status.Truncated {
				logger.Info("checkpoint saved — rerun with -resume to continue", "path", sv.Path)
			}
		}
		if mcRes.Status.Truncated {
			fmt.Printf("(truncated: %s after %d/%d shots — partial estimate)\n",
				mcRes.Status.StopReason, mcRes.Status.Completed, mcRes.Status.Requested)
		}
		if serr := mcRes.Status.Err(); serr != nil {
			fatalErr(serr) // exit 3: partial estimate already printed
		}
	}
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(msg string) {
	flushTrace()
	fmt.Fprintln(os.Stderr, "qisim-fidelity:", msg)
	os.Exit(1)
}

// fatalErr exits with the per-class code of the simerr contract (7 for
// unsupported QASM, 4 for invalid configuration, ...). The partial trace is
// flushed first — os.Exit skips the deferred export in main.
func fatalErr(err error) {
	flushTrace()
	fmt.Fprintln(os.Stderr, "qisim-fidelity:", err)
	os.Exit(simerr.ExitCode(err))
}
