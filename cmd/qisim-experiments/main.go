// Command qisim-experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	qisim-experiments              run every experiment
//	qisim-experiments list         list experiment ids
//	qisim-experiments <id> ...     run specific experiments (e.g. fig13)
package main

import (
	"flag"
	"fmt"
	"os"

	"qisim/internal/experiments"
)

func main() {
	csv := flag.Bool("csv", false, "emit sweep data as CSV (fig12/fig13/fig17 only)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Print(experiments.RunAll())
		fmt.Print(experiments.HeadlineTable())
		return
	}
	if args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *csv {
		for _, id := range args {
			s, err := experiments.FigureCSV(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qisim-experiments:", err)
				os.Exit(1)
			}
			fmt.Print(s)
		}
		return
	}
	for _, id := range args {
		s, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qisim-experiments:", err)
			os.Exit(1)
		}
		fmt.Print(s)
	}
}
