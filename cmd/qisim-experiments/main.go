// Command qisim-experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	qisim-experiments              run every experiment
//	qisim-experiments list         list experiment ids
//	qisim-experiments <id> ...     run specific experiments (e.g. fig13)
//
// SIGINT/SIGTERM and -timeout cancel cooperatively between experiments: the
// reports already generated stay on stdout and the process exits with
// code 3. Experiment failures exit with the per-class codes of
// internal/simerr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"qisim/internal/buildinfo"
	"qisim/internal/experiments"
	"qisim/internal/simerr"
)

func main() {
	csv := flag.Bool("csv", false, "emit sweep data as CSV (fig12/fig13/fig17 only)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = none)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisim-experiments"))
		return
	}
	args := flag.Args()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, args, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "qisim-experiments:", err)
		os.Exit(simerr.ExitCode(err))
	}
}

func run(ctx context.Context, args []string, csv bool) error {
	if len(args) == 1 && args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	ids := args
	headline := false
	if len(ids) == 0 {
		ids = experiments.IDs()
		headline = true
	}
	for i, id := range ids {
		// Cooperative cancellation between experiments: reports already on
		// stdout survive; the remainder is flagged as skipped.
		if cerr := ctx.Err(); cerr != nil {
			return simerr.Interruptedf("stopped after %d/%d experiments (%v)", i, len(ids), cerr)
		}
		var s string
		var err error
		if csv {
			s, err = experiments.FigureCSV(id)
		} else {
			s, err = experiments.Run(id)
		}
		if err != nil {
			return err
		}
		fmt.Print(s)
		if headline {
			fmt.Println()
		}
	}
	if headline && !csv {
		fmt.Print(experiments.HeadlineTable())
	}
	return nil
}
