// Command qisim-experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	qisim-experiments              run every experiment
//	qisim-experiments list         list experiment ids
//	qisim-experiments <id> ...     run specific experiments (e.g. fig13)
//
// SIGINT/SIGTERM and -timeout cancel cooperatively between experiments: the
// reports already generated stay on stdout and the process exits with
// code 3. Experiment failures exit with the per-class codes of
// internal/simerr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"qisim/internal/buildinfo"
	"qisim/internal/experiments"
	"qisim/internal/obs"
	"qisim/internal/simerr"
)

func main() {
	csv := flag.Bool("csv", false, "emit sweep data as CSV (fig12/fig13/fig17 only)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = none)")
	traceOut := flag.String("trace-out", "", "record a span trace of the run and write it as Chrome trace_event JSON to this file")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisim-experiments"))
		return
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qisim-experiments:", err)
		os.Exit(simerr.ExitCode(simerr.Invalidf("%v", err)))
	}
	args := flag.Args()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// -trace-out arms the span tracer: each experiment gets its own span
	// under a root "cli" span, so the trace shows where regeneration time
	// goes across figures/tables.
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.NewTracer(obs.TracerConfig{ID: "qisim-experiments"})
		ctx = obs.WithTracer(ctx, tr)
	}
	runErr := func() error {
		if tr != nil {
			span := tr.Start("cli", nil, obs.String("cmd", "experiments"))
			ctx = obs.ContextWithSpan(ctx, tr, span)
			defer span.End()
		}
		return run(ctx, args, *csv)
	}()
	if tr != nil {
		// Trace export is best-effort: a write failure warns and leaves the
		// run's exit code unchanged.
		if err := obs.WriteChromeFile(*traceOut, tr); err != nil {
			logger.Warn("trace export failed; run result unaffected", "err", err, "path", *traceOut)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "qisim-experiments:", runErr)
		os.Exit(simerr.ExitCode(runErr))
	}
}

func run(ctx context.Context, args []string, csv bool) error {
	if len(args) == 1 && args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	ids := args
	headline := false
	if len(ids) == 0 {
		ids = experiments.IDs()
		headline = true
	}
	for i, id := range ids {
		// Cooperative cancellation between experiments: reports already on
		// stdout survive; the remainder is flagged as skipped.
		if cerr := ctx.Err(); cerr != nil {
			return simerr.Interruptedf("stopped after %d/%d experiments (%v)", i, len(ids), cerr)
		}
		var s string
		var err error
		_, span := obs.StartSpan(ctx, "experiment", obs.String("id", id), obs.Bool("csv", csv))
		if csv {
			s, err = experiments.FigureCSV(id)
		} else {
			s, err = experiments.Run(id)
		}
		span.End()
		if err != nil {
			return err
		}
		fmt.Print(s)
		if headline {
			fmt.Println()
		}
	}
	if headline && !csv {
		fmt.Print(experiments.HeadlineTable())
	}
	return nil
}
