// Command qisimd serves QIsim's analyses over HTTP/JSON: a bounded job
// queue feeding a worker pool that drives the deterministic simulation
// entry points, a content-addressed result cache, and Prometheus metrics.
//
// Usage:
//
//	qisimd [-addr :8080] [-workers n] [-queue 64] [-cache-entries 256]
//	       [-job-timeout d] [-drain-timeout 30s] [-data-dir dir]
//	       [-tenant-quota n] [-pprof addr] [-log-level info] [-log-format text]
//	       [-role standalone|coordinator|worker] [-coordinator-url url]
//	       [-worker-id id] [-advertise url] [-lease-ttl 15s] [-unit-shards 4]
//	       [-spot-check 0.1] [-chaos-spec spec.json]
//
// Roles (see DESIGN.md "Distributed execution"):
//
//   - standalone (default): every job runs in-process.
//   - coordinator: jobs are split into leased work units dispatched across
//     registered fleet workers, with heartbeat renewal, retry with backoff,
//     work stealing, health-probe eviction, and graceful degradation to the
//     local path when the fleet is empty. Serves /v1/dist/* for workers.
//     Merged results are byte-identical to a standalone run.
//   - worker: runs the normal server (so /readyz answers the coordinator's
//     health probes) plus a claim→execute→report loop against
//     -coordinator-url. -advertise is the worker's own probeable base URL.
//
// API:
//
//	POST   /v1/jobs            {"kind": "surface.mc", "params": {...}}
//	GET    /v1/jobs            list jobs (?kind=&state=&tenant=&parent=&limit=)
//	GET    /v1/jobs/{id}       job state, live progress, result or typed error
//	DELETE /v1/jobs/{id}       cancel a job (a dse.sweep cancels its children)
//	GET    /v1/jobs/{id}/events SSE stream: state changes + partial frontiers
//	GET    /v1/jobs/{id}/trace finished job's span tree (?format=json|chrome|tree)
//	GET    /v1/results/{key}   cached result body (byte-exact replay)
//	GET    /v1/fleet/status    coordinator's fleet view (?format=json|tree)
//	GET    /v1/debug/flight    flight-recorder ring (?format=json|text)
//	GET    /metrics            Prometheus text exposition
//	GET    /healthz            liveness: 200 serving / 503 draining
//	GET    /readyz             readiness: 503 recovering / draining / saturated
//
// Multi-tenancy: clients may stamp submissions with an X-QIsim-Tenant
// header. -tenant-quota caps each tenant's concurrently in-flight
// top-level jobs (children fanned out by a dse.sweep are exempt); a
// submission over quota is refused with 429 and error class
// "quota-exceeded". Tenants are attribution only — results stay
// content-addressed, so identical work dedupes across tenants.
//
// Observability: every executed job records a bounded span trace (queue
// wait, executor, per-shard, merge, checkpoint spans) served by the trace
// endpoint and folded into the qisimd_stage_seconds / qisimd_shard_seconds
// / qisimd_queue_wait_seconds histograms. -pprof exposes net/http/pprof on
// a SEPARATE listener so profiling traffic never shares the API port.
// Logs are structured (log/slog) and stamped with job/trace/span IDs.
//
// Fleet observability (see DESIGN.md "Fleet observability"): every route
// records RED series (qisimd_http_requests_total / _request_seconds by
// route pattern); workers piggyback metrics summaries on renewals and
// reports, which the coordinator folds into qisimd_fleet_* series and
// /v1/fleet/status; an always-on flight recorder keeps the last ~4K
// lease/retry/eviction/quarantine/chaos/journal events, served by
// /v1/debug/flight and persisted to <data-dir>/flight-last.json by the
// panic backstop.
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops accepting,
// in-flight jobs are cancelled and finish through the partial-result path
// (their snapshots flagged "truncated"), and the process exits 0 once the
// pool has committed those partials (or -drain-timeout expires).
// SIGQUIT dumps the flight ring and all goroutine stacks to stderr and
// keeps serving — the live-debugging probe, not a shutdown.
//
// With -data-dir the daemon is crash-safe: accepted jobs are write-ahead-
// logged to <dir>/journal.wal and Monte-Carlo runs checkpoint their
// committed shard prefix under <dir>/checkpoints. On boot the journal is
// replayed — jobs that were queued or running when the previous process
// died are resubmitted and resume from their checkpoints, producing results
// byte-identical to an uninterrupted run. /readyz stays 503 until the
// replay finishes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"qisim/internal/buildinfo"
	"qisim/internal/chaos"
	"qisim/internal/cmos"
	"qisim/internal/dist"
	"qisim/internal/dsp"
	"qisim/internal/metrics"
	"qisim/internal/obs"
	"qisim/internal/service"
	"qisim/internal/simerr"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "job worker goroutines (0 = all cores)")
	queue := flag.Int("queue", 64, "bounded job-queue depth")
	cacheEntries := flag.Int("cache-entries", 256, "result-cache capacity (entries)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock cap (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM")
	dataDir := flag.String("data-dir", "", "crash-safe state directory (job journal + MC checkpoints); empty = in-memory only")
	tenantQuota := flag.Int("tenant-quota", 0, "max in-flight top-level jobs per tenant (0 = unlimited)")
	maxBody := flag.Int64("max-body-bytes", service.DefaultMaxBodyBytes, "largest accepted POST /v1/jobs body (413 beyond)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty = off")
	traceSpans := flag.Int("trace-max-spans", 0, "per-job span-buffer bound (0 = default, negative = disable job tracing)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	role := flag.String("role", "standalone", "fleet role: standalone|coordinator|worker")
	coordinatorURL := flag.String("coordinator-url", "", "coordinator base URL (required for -role worker)")
	workerID := flag.String("worker-id", "", "fleet worker identity (default <hostname>-<pid>)")
	advertise := flag.String("advertise", "", "this worker's probeable base URL, e.g. http://10.0.0.5:8080 (empty = health probes skip it)")
	leaseTTL := flag.Duration("lease-ttl", 0, "coordinator per-lease heartbeat deadline (0 = 15s default)")
	unitShards := flag.Int("unit-shards", 0, "coordinator work-unit granularity in shards (0 = default)")
	spotCheck := flag.Float64("spot-check", 0, "coordinator fraction of reported units re-executed locally to audit workers (0 = off, e.g. 0.1)")
	chaosSpec := flag.String("chaos-spec", "", "JSON chaos scenario file: coordinator injects faults into /v1/dist/* serving, worker injects them into its coordinator RPCs (see DESIGN.md)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisimd"))
		return
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qisimd:", err)
		os.Exit(simerr.ExitCode(simerr.Invalidf("%v", err)))
	}
	// Point the model packages' logging seams at the shared logger so
	// -log-level=debug surfaces their diagnostics in the daemon's stream.
	dsp.SetLogger(logger)
	cmos.SetLogger(logger)
	opts := daemonOpts{
		addr: *addr, workers: *workers, queue: *queue, cacheEntries: *cacheEntries,
		jobTimeout: *jobTimeout, drainTimeout: *drainTimeout, dataDir: *dataDir,
		tenantQuota: *tenantQuota,
		maxBody:     *maxBody, pprofAddr: *pprofAddr, traceSpans: *traceSpans,
		role: *role, coordinatorURL: *coordinatorURL, workerID: *workerID,
		advertise: *advertise, leaseTTL: *leaseTTL, unitShards: *unitShards,
		spotCheck: *spotCheck, chaosSpec: *chaosSpec,
	}
	if err := run(logger, opts); err != nil {
		logger.Error("qisimd exiting on error", "err", err, "class", simerr.Class(err))
		os.Exit(simerr.ExitCode(err))
	}
}

// daemonOpts carries the parsed flag set into run.
type daemonOpts struct {
	addr                     string
	workers, queue           int
	cacheEntries             int
	jobTimeout, drainTimeout time.Duration
	dataDir                  string
	tenantQuota              int
	maxBody                  int64
	pprofAddr                string
	traceSpans               int

	role           string
	coordinatorURL string
	workerID       string
	advertise      string
	leaseTTL       time.Duration
	unitShards     int
	spotCheck      float64
	chaosSpec      string
}

func run(logger *slog.Logger, o daemonOpts) error {
	switch o.role {
	case "standalone", "coordinator", "worker":
	default:
		return simerr.Invalidf("qisimd: unknown -role %q (roles: standalone, coordinator, worker)", o.role)
	}
	if o.role == "worker" && o.coordinatorURL == "" {
		return simerr.Invalidf("qisimd: -role worker requires -coordinator-url")
	}
	// -chaos-spec loads once and applies per role: a coordinator serves
	// /v1/dist/* through the fault-injection middleware, a worker routes
	// its coordinator RPCs through the fault-injection transport. Either
	// way the schedule is seeded and replayable (internal/chaos).
	var chaosSpec *chaos.Spec
	if o.chaosSpec != "" {
		spec, err := chaos.LoadSpec(o.chaosSpec)
		if err != nil {
			return err
		}
		chaosSpec = &spec
		logger.Warn("chaos injection armed", "spec", o.chaosSpec, "seed", spec.Seed, "role", o.role)
	}
	srv, err := service.New(service.Config{
		Workers:       o.workers,
		QueueDepth:    o.queue,
		CacheEntries:  o.cacheEntries,
		JobTimeout:    o.jobTimeout,
		DataDir:       o.dataDir,
		TenantQuota:   o.tenantQuota,
		MaxBodyBytes:  o.maxBody,
		Logger:        logger,
		TraceMaxSpans: o.traceSpans,
		Dist: service.DistConfig{
			Enabled:    o.role == "coordinator",
			LeaseTTL:   o.leaseTTL,
			UnitShards: o.unitShards,
			SpotCheck:  o.spotCheck,
			Chaos:      chaosSpec,
		},
	})
	if err != nil {
		return err
	}
	srv.Start()
	if n, err := srv.Recover(); err != nil {
		return err
	} else if n > 0 {
		logger.Info("recovered journaled jobs", "count", n, "data_dir", o.dataDir)
	}

	// Fleet worker: claim→execute→report against the coordinator, alongside
	// the normal HTTP server (whose /readyz answers the health probes).
	var fleetWorker *dist.Worker
	workerDone := make(chan error, 1)
	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	if o.role == "worker" {
		id := o.workerID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "worker"
			}
			id = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		client := &dist.Client{Base: o.coordinatorURL}
		if chaosSpec != nil {
			tr := chaos.NewTransport(*chaosSpec, nil)
			tr.OnInject(func(fault string) {
				srv.Flight().Record("chaos.inject",
					obs.String("side", "client"), obs.String("fault", fault))
			})
			// The transport's injections show up on the worker's own
			// /metrics AND — via federation — as the coordinator's
			// per-worker chaos counts.
			srv.RegisterChaosStats("client", tr.Stats)
			client.HTTP = &http.Client{Transport: tr}
		}
		// Worker-local federation instruments: counted here, shipped with
		// every renewal/report, folded into the coordinator's
		// qisimd_fleet_* series.
		wreg := srv.Registry()
		unitSeconds := wreg.Histogram("qisimd_worker_unit_seconds",
			"Work-unit execution wall clock on this worker.",
			metrics.DefaultLatencyBuckets())
		fleetWorker, err = dist.NewWorker(dist.WorkerConfig{
			ID:          id,
			Coordinator: client,
			Advertise:   o.advertise,
			Cores:       service.BuildCore,
			Logger:      logger,
			Trace:       true,
			Metrics:     wreg.Summary,
			Flight:      srv.Flight(),
			UnitSeconds: unitSeconds.Observe,
		})
		if err != nil {
			return err
		}
		fw := fleetWorker
		wreg.CounterFunc("qisimd_worker_units_total",
			"Work units fully executed by this worker.",
			func() float64 { return float64(fw.Stats().Executions) })
		wreg.CounterFunc("qisimd_worker_claims_total",
			"Leases granted to this worker.",
			func() float64 { return float64(fw.Stats().Claims) })
		wreg.CounterFunc("qisimd_worker_reports_total",
			"Unit uploads accepted from this worker.",
			func() float64 { return float64(fw.Stats().Reports) })
		wreg.CounterFunc("qisimd_worker_abandoned_total",
			"Units abandoned on a lost lease or refused upload.",
			func() float64 { return float64(fw.Stats().Abandoned) })
		go func() {
			logger.Info("fleet worker claiming", "id", id, "coordinator", o.coordinatorURL)
			workerDone <- fleetWorker.Run(workerCtx)
		}()
	}

	if o.pprofAddr != "" {
		// Profiling lives on its own listener: operators can firewall it
		// separately and a profile download can never saturate the API port.
		pprofSrv := &http.Server{
			Addr:              o.pprofAddr,
			Handler:           obs.PprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", o.pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener died", "err", err)
			}
		}()
		defer pprofSrv.Close()
	}

	// Slow-client hardening: bound the header read and reap idle keep-alive
	// connections so a stalled peer cannot pin a connection forever.
	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGQUIT is the flight-data key: dump the flight recorder and all
	// goroutine stacks to stderr and KEEP SERVING — it deliberately lives
	// on its own channel, not the NotifyContext below, so it never drains
	// the process. SIGINT/SIGTERM behave exactly as before.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			srv.Flight().Snapshot().WriteText(os.Stderr)
			buf := make([]byte, 1<<20)
			os.Stderr.Write(buf[:runtime.Stack(buf, true)])
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", o.addr, "role", o.role, "version", buildinfo.String("qisimd"))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listener died before any signal: that's a hard failure.
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	logger.Info("draining (in-flight jobs finish as truncated partials)")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	// Worker drain first: stop claiming new units but finish and report the
	// one in flight. Draining the service flips /readyz to "draining", which
	// the coordinator's probes read as lease-non-renewable — NOT dead — so
	// the unit is not prematurely re-dispatched elsewhere.
	if fleetWorker != nil {
		fleetWorker.Drain()
	}
	// Drain the job pool next so /v1/jobs polls during shutdown still see
	// the final (possibly truncated) snapshots, then close the listener.
	if err := srv.Drain(drainCtx); err != nil {
		httpSrv.Close()
		return err
	}
	if fleetWorker != nil {
		select {
		case err := <-workerDone:
			if err != nil {
				logger.Warn("fleet worker exited with error", "err", err)
			}
		case <-drainCtx.Done():
			stopWorker() // deadline passed: abandon the in-flight unit
			<-workerDone
		}
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return simerr.Interruptedf("qisimd: shutdown: %v", err)
	}
	logger.Info("drained cleanly")
	return nil
}
