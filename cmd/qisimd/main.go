// Command qisimd serves QIsim's analyses over HTTP/JSON: a bounded job
// queue feeding a worker pool that drives the deterministic simulation
// entry points, a content-addressed result cache, and Prometheus metrics.
//
// Usage:
//
//	qisimd [-addr :8080] [-workers n] [-queue 64] [-cache-entries 256]
//	       [-job-timeout d] [-drain-timeout 30s]
//
// API:
//
//	POST /v1/jobs          {"kind": "surface.mc", "params": {...}}
//	GET  /v1/jobs/{id}     job state, live progress, result or typed error
//	GET  /v1/results/{key} cached result body (byte-exact replay)
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          200 serving / 503 draining
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops accepting,
// in-flight jobs are cancelled and finish through the partial-result path
// (their snapshots flagged "truncated"), and the process exits 0 once the
// pool has committed those partials (or -drain-timeout expires).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qisim/internal/buildinfo"
	"qisim/internal/service"
	"qisim/internal/simerr"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "job worker goroutines (0 = all cores)")
	queue := flag.Int("queue", 64, "bounded job-queue depth")
	cacheEntries := flag.Int("cache-entries", 256, "result-cache capacity (entries)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock cap (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisimd"))
		return
	}
	if err := run(*addr, *workers, *queue, *cacheEntries, *jobTimeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "qisimd:", err)
		os.Exit(simerr.ExitCode(err))
	}
}

func run(addr string, workers, queue, cacheEntries int, jobTimeout, drainTimeout time.Duration) error {
	srv := service.New(service.Config{
		Workers:      workers,
		QueueDepth:   queue,
		CacheEntries: cacheEntries,
		JobTimeout:   jobTimeout,
	})
	srv.Start()

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "qisimd: %s listening on %s\n", buildinfo.String("qisimd"), addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listener died before any signal: that's a hard failure.
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	fmt.Fprintln(os.Stderr, "qisimd: draining (in-flight jobs finish as truncated partials)...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the job pool first so /v1/jobs polls during shutdown still see
	// the final (possibly truncated) snapshots, then close the listener.
	if err := srv.Drain(drainCtx); err != nil {
		httpSrv.Close()
		return err
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return simerr.Interruptedf("qisimd: shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "qisimd: drained cleanly")
	return nil
}
