// Command qisimd serves QIsim's analyses over HTTP/JSON: a bounded job
// queue feeding a worker pool that drives the deterministic simulation
// entry points, a content-addressed result cache, and Prometheus metrics.
//
// Usage:
//
//	qisimd [-addr :8080] [-workers n] [-queue 64] [-cache-entries 256]
//	       [-job-timeout d] [-drain-timeout 30s] [-data-dir dir]
//	       [-pprof addr] [-log-level info] [-log-format text]
//
// API:
//
//	POST /v1/jobs            {"kind": "surface.mc", "params": {...}}
//	GET  /v1/jobs/{id}       job state, live progress, result or typed error
//	GET  /v1/jobs/{id}/trace finished job's span tree (?format=json|chrome|tree)
//	GET  /v1/results/{key}   cached result body (byte-exact replay)
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz            liveness: 200 serving / 503 draining
//	GET  /readyz             readiness: 503 recovering / draining / saturated
//
// Observability: every executed job records a bounded span trace (queue
// wait, executor, per-shard, merge, checkpoint spans) served by the trace
// endpoint and folded into the qisimd_stage_seconds / qisimd_shard_seconds
// / qisimd_queue_wait_seconds histograms. -pprof exposes net/http/pprof on
// a SEPARATE listener so profiling traffic never shares the API port.
// Logs are structured (log/slog) and stamped with job/trace/span IDs.
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops accepting,
// in-flight jobs are cancelled and finish through the partial-result path
// (their snapshots flagged "truncated"), and the process exits 0 once the
// pool has committed those partials (or -drain-timeout expires).
//
// With -data-dir the daemon is crash-safe: accepted jobs are write-ahead-
// logged to <dir>/journal.wal and Monte-Carlo runs checkpoint their
// committed shard prefix under <dir>/checkpoints. On boot the journal is
// replayed — jobs that were queued or running when the previous process
// died are resubmitted and resume from their checkpoints, producing results
// byte-identical to an uninterrupted run. /readyz stays 503 until the
// replay finishes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qisim/internal/buildinfo"
	"qisim/internal/cmos"
	"qisim/internal/dsp"
	"qisim/internal/obs"
	"qisim/internal/service"
	"qisim/internal/simerr"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "job worker goroutines (0 = all cores)")
	queue := flag.Int("queue", 64, "bounded job-queue depth")
	cacheEntries := flag.Int("cache-entries", 256, "result-cache capacity (entries)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job wall-clock cap (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM")
	dataDir := flag.String("data-dir", "", "crash-safe state directory (job journal + MC checkpoints); empty = in-memory only")
	maxBody := flag.Int64("max-body-bytes", service.DefaultMaxBodyBytes, "largest accepted POST /v1/jobs body (413 beyond)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060); empty = off")
	traceSpans := flag.Int("trace-max-spans", 0, "per-job span-buffer bound (0 = default, negative = disable job tracing)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: text|json")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("qisimd"))
		return
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qisimd:", err)
		os.Exit(simerr.ExitCode(simerr.Invalidf("%v", err)))
	}
	// Point the model packages' logging seams at the shared logger so
	// -log-level=debug surfaces their diagnostics in the daemon's stream.
	dsp.SetLogger(logger)
	cmos.SetLogger(logger)
	if err := run(logger, *addr, *workers, *queue, *cacheEntries, *jobTimeout, *drainTimeout,
		*dataDir, *maxBody, *pprofAddr, *traceSpans); err != nil {
		logger.Error("qisimd exiting on error", "err", err, "class", simerr.Class(err))
		os.Exit(simerr.ExitCode(err))
	}
}

func run(logger *slog.Logger, addr string, workers, queue, cacheEntries int,
	jobTimeout, drainTimeout time.Duration, dataDir string, maxBody int64,
	pprofAddr string, traceSpans int) error {
	srv, err := service.New(service.Config{
		Workers:       workers,
		QueueDepth:    queue,
		CacheEntries:  cacheEntries,
		JobTimeout:    jobTimeout,
		DataDir:       dataDir,
		MaxBodyBytes:  maxBody,
		Logger:        logger,
		TraceMaxSpans: traceSpans,
	})
	if err != nil {
		return err
	}
	srv.Start()
	if n, err := srv.Recover(); err != nil {
		return err
	} else if n > 0 {
		logger.Info("recovered journaled jobs", "count", n, "data_dir", dataDir)
	}

	if pprofAddr != "" {
		// Profiling lives on its own listener: operators can firewall it
		// separately and a profile download can never saturate the API port.
		pprofSrv := &http.Server{
			Addr:              pprofAddr,
			Handler:           obs.PprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			logger.Info("pprof listening", "addr", pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener died", "err", err)
			}
		}()
		defer pprofSrv.Close()
	}

	// Slow-client hardening: bound the header read and reap idle keep-alive
	// connections so a stalled peer cannot pin a connection forever.
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr, "version", buildinfo.String("qisimd"))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listener died before any signal: that's a hard failure.
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	logger.Info("draining (in-flight jobs finish as truncated partials)")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the job pool first so /v1/jobs polls during shutdown still see
	// the final (possibly truncated) snapshots, then close the listener.
	if err := srv.Drain(drainCtx); err != nil {
		httpSrv.Close()
		return err
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return simerr.Interruptedf("qisimd: shutdown: %v", err)
	}
	logger.Info("drained cleanly")
	return nil
}
