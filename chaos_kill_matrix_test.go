// Chaos kill-matrix: the consumer-level proof that distributed execution
// keeps the repo's headline promise under failure. For surface-code and
// readout Monte-Carlo jobs, at engine worker counts 1 and 4, the merged JSON
// result body must be BYTE-IDENTICAL across four fleet shapes:
//
//	standalone            — no coordinator, the plain in-process path
//	healthy fleet         — 3 HTTP workers, no faults
//	killed worker         — a worker claims a unit and dies mid-shard; its
//	                        lease expires and the unit is retried elsewhere
//	slow worker           — a straggler renews its lease but never reports,
//	                        forcing a hedged re-dispatch (work stealing)
//
// The fleet runs the real stack: service servers over HTTP, dist.Client
// wire calls, lease sweeps on real timers. Faulty workers are driven
// manually through the same wire API a real worker uses. A final
// multi-process test SIGKILLs an actual qisimd worker process.
package qisim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"qisim/internal/dist"
	"qisim/internal/jobs"
	"qisim/internal/service"
)

// chaosJob is one (kind, engine-workers) cell of the matrix.
type chaosJob struct {
	name string
	body string // POST /v1/jobs payload
}

func chaosMatrix() []chaosJob {
	var out []chaosJob
	for _, ew := range []int{1, 4} {
		out = append(out,
			chaosJob{
				name: fmt.Sprintf("surface.mc/engine-workers-%d", ew),
				body: fmt.Sprintf(`{"kind":"surface.mc","params":{"distance":3,"shots":4000,"shard_size":128,"seed":11,"workers":%d}}`, ew),
			},
			chaosJob{
				name: fmt.Sprintf("readout.mc/engine-workers-%d", ew),
				body: fmt.Sprintf(`{"kind":"readout.mc","params":{"shots":4000,"shard_size":256,"seed":5,"workers":%d}}`, ew),
			},
		)
	}
	return out
}

// chaosServer builds, starts and tears down one service server + HTTP stack.
func chaosServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return srv, ts
}

type chaosSubmitResponse struct {
	Outcome string        `json:"outcome"`
	Job     jobs.Snapshot `json:"job"`
}

// chaosRun submits one job over HTTP and polls it to completion.
func chaosRun(t *testing.T, base, body string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr chaosSubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + sr.Job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var snap jobs.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode snapshot: %v", err)
		}
		switch snap.State {
		case jobs.StateDone:
			if snap.Status == nil || snap.Status.Truncated {
				t.Fatalf("job finished truncated: %+v", snap.Status)
			}
			return []byte(snap.Result)
		case jobs.StateFailed:
			t.Fatalf("job failed: %s: %s", snap.ErrorClass, snap.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return nil
}

// startChaosWorkers launches n healthy dist.Workers over the wire API.
func startChaosWorkers(t *testing.T, base string, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("healthy-%d", i)
		client := &dist.Client{Base: base}
		if err := client.Register(ctx, dist.WorkerInfo{ID: id}); err != nil {
			cancel()
			t.Fatalf("register %s: %v", id, err)
		}
		w, err := dist.NewWorker(dist.WorkerConfig{
			ID: id, Coordinator: client, Cores: service.BuildCore,
			PollInterval: 2 * time.Millisecond, Seed: int64(i + 1),
		})
		if err != nil {
			cancel()
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck // ends by cancellation
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// registerWorker announces a manual worker over the wire API. It must run
// BEFORE the job is submitted: admission checks for live workers, and a
// coordinator with zero registrations degrades to the local lane instead of
// granting leases.
func registerWorker(t *testing.T, base, id string) *dist.Client {
	t.Helper()
	client := &dist.Client{Base: base}
	if err := client.Register(context.Background(), dist.WorkerInfo{ID: id}); err != nil {
		t.Fatalf("register %s: %v", id, err)
	}
	return client
}

// claimOneUnit polls the wire API until the coordinator hands the manual
// worker a lease (the job is submitted concurrently).
func claimOneUnit(t *testing.T, client *dist.Client, id string) *dist.LeaseGrant {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		g, err := client.Claim(context.Background(), id, "")
		if err != nil {
			t.Fatalf("claim: %v", err)
		}
		if g != nil {
			return g
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s never received a lease", id)
	return nil
}

const chaosLeaseTTL = 200 * time.Millisecond

// TestChaosKillMatrix is the non-negotiable contract of the distributed
// layer, pinned end to end: the result body is byte-identical whether the
// job ran standalone, on a healthy fleet, on a fleet that lost a worker
// mid-shard, or on a fleet with a straggler that had to be hedged.
func TestChaosKillMatrix(t *testing.T) {
	for _, job := range chaosMatrix() {
		job := job
		t.Run(job.name, func(t *testing.T) {
			_, solo := chaosServer(t, service.Config{Workers: 2})
			want := chaosRun(t, solo.URL, job.body)
			if len(want) == 0 {
				t.Fatal("standalone run produced no body")
			}

			t.Run("healthy-fleet", func(t *testing.T) {
				coord, ts := chaosServer(t, service.Config{Workers: 2, Dist: service.DistConfig{
					Enabled: true, LeaseTTL: 5 * time.Second, UnitShards: 4,
				}})
				startChaosWorkers(t, ts.URL, 3)
				got := chaosRun(t, ts.URL, job.body)
				if !bytes.Equal(got, want) {
					t.Fatalf("healthy fleet differs from standalone:\n%s\n%s", got, want)
				}
				if st := coord.Dist().Stats(); st.UnitsDone == 0 {
					t.Fatalf("fleet never dispatched: %+v", st)
				}
			})

			t.Run("killed-worker", func(t *testing.T) {
				coord, ts := chaosServer(t, service.Config{Workers: 2, Dist: service.DistConfig{
					Enabled: true, LeaseTTL: chaosLeaseTTL, UnitShards: 4,
				}})
				// The doomed worker registers alone, grabs the first unit,
				// and is "SIGKILLed": no report or renewal ever arrives.
				doomed := registerWorker(t, ts.URL, "doomed")
				done := make(chan []byte, 1)
				go func() { done <- chaosRun(t, ts.URL, job.body) }()
				claimOneUnit(t, doomed, "doomed")
				// Only now do the healthy workers join; one of them must
				// pick up the expired lease's requeue.
				startChaosWorkers(t, ts.URL, 2)
				got := <-done
				if !bytes.Equal(got, want) {
					t.Fatalf("killed-worker fleet differs from standalone:\n%s\n%s", got, want)
				}
				if st := coord.Dist().Stats(); st.Expired == 0 {
					t.Fatalf("kill was never observed (no lease expiry): %+v", st)
				}
			})

			t.Run("slow-worker-steal", func(t *testing.T) {
				coord, ts := chaosServer(t, service.Config{Workers: 2, Dist: service.DistConfig{
					Enabled: true, LeaseTTL: chaosLeaseTTL, UnitShards: 4,
				}})
				// The straggler holds its unit alive with renewals but never
				// reports — the hedge (2×TTL) must re-dispatch its range to a
				// healthy worker, whose report wins.
				client := registerWorker(t, ts.URL, "slow")
				done := make(chan []byte, 1)
				go func() { done <- chaosRun(t, ts.URL, job.body) }()
				g := claimOneUnit(t, client, "slow")
				stopRenew := make(chan struct{})
				var renewWG sync.WaitGroup
				renewWG.Add(1)
				go func() {
					defer renewWG.Done()
					tick := time.NewTicker(chaosLeaseTTL / 4)
					defer tick.Stop()
					for {
						select {
						case <-stopRenew:
							return
						case <-tick.C:
							err := client.Renew(context.Background(), "slow", g.Key, g.Start, g.End, nil)
							if errors.Is(err, dist.ErrGone) {
								return // hedge winner reported; lease resolved
							}
						}
					}
				}()
				startChaosWorkers(t, ts.URL, 2)
				got := <-done
				close(stopRenew)
				renewWG.Wait()
				if !bytes.Equal(got, want) {
					t.Fatalf("slow-worker fleet differs from standalone:\n%s\n%s", got, want)
				}
				if st := coord.Dist().Stats(); st.Steals == 0 {
					t.Fatalf("straggler was never hedged: %+v", st)
				}
			})
		})
	}
}

// TestFleetSIGKILLMultiProcess runs the real binary: a coordinator qisimd,
// three worker qisimd processes, one of which is SIGKILLed while the job
// runs. The surviving fleet must finish with bytes identical to an
// in-process standalone run.
func TestFleetSIGKILLMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "qisimd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/qisimd")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build qisimd: %v\n%s", err, out)
	}

	freePort := func() int {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().(*net.TCPAddr).Port
	}
	waitReady := func(base string) {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("%s never became healthy", base)
	}

	var procs []*exec.Cmd
	killAll := func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill() //nolint:errcheck
			}
		}
		for _, p := range procs {
			p.Wait() //nolint:errcheck
		}
	}
	t.Cleanup(killAll)
	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start %v: %v", args, err)
		}
		procs = append(procs, cmd)
		return cmd
	}

	coordPort := freePort()
	coordBase := fmt.Sprintf("http://127.0.0.1:%d", coordPort)
	spawn("-addr", fmt.Sprintf("127.0.0.1:%d", coordPort), "-role", "coordinator",
		"-lease-ttl", "300ms", "-unit-shards", "2", "-workers", "2",
		"-data-dir", filepath.Join(dir, "coord"), "-log-level", "warn")
	waitReady(coordBase)

	var victim *exec.Cmd
	for i := 0; i < 3; i++ {
		p := freePort()
		base := fmt.Sprintf("http://127.0.0.1:%d", p)
		cmd := spawn("-addr", fmt.Sprintf("127.0.0.1:%d", p), "-role", "worker",
			"-coordinator-url", coordBase, "-worker-id", fmt.Sprintf("proc-w%d", i),
			"-advertise", base, "-workers", "2", "-log-level", "warn")
		waitReady(base)
		if i == 0 {
			victim = cmd
		}
	}

	job := `{"kind":"surface.mc","params":{"distance":3,"shots":6000,"shard_size":128,"seed":17}}`
	_, solo := chaosServer(t, service.Config{Workers: 2})
	want := chaosRun(t, solo.URL, job)

	done := make(chan []byte, 1)
	go func() { done <- chaosRun(t, coordBase, job) }()
	// SIGKILL one worker while the fleet is (very likely) mid-job. Whether
	// or not it held a lease at that instant, the survivors must converge
	// on the identical bytes.
	time.Sleep(150 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL victim: %v", err)
	}
	got := <-done
	if !bytes.Equal(got, want) {
		t.Fatalf("post-SIGKILL fleet result differs from standalone:\n%s\n%s", got, want)
	}
}
