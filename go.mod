module qisim

go 1.22
