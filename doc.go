// Package qisim is a from-scratch Go reproduction of "QIsim: Architecting
// 10+K Qubit QC Interfaces Toward Quantum Supremacy" (Min et al., ISCA
// 2023): a scalability-analysis framework for quantum–classical interfaces
// spanning circuit-level power models (cryo-CMOS and SFQ), cycle-accurate
// QCI simulation, Hamiltonian-level gate/readout error models, surface-code
// logical-error projection, and the eight architectural optimisations that
// lift QCIs from hundreds to 60,000+ qubits.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured record, and cmd/qisim for the CLI.
package qisim
