// Crash-resume equivalence: the consumer-level proof that the checkpoint
// layer keeps its headline promise. For every checkpointed Monte-Carlo kind
// the suite kills a run at a (seeded-random) shard boundary — and once
// mid-shard — persists the committed prefix through the real on-disk
// snapshot format, resumes in a fresh Options, and asserts the final
// marshaled result is BYTE-IDENTICAL to an uninterrupted run, for workers
// 1/4/7. This is the property that makes qisimd's recovery verifiable
// rather than best-effort: a resumed job's body is indistinguishable from a
// never-interrupted one, so cached results stay canonical across crashes.
package qisim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"qisim/internal/checkpoint"
	"qisim/internal/pauli"
	"qisim/internal/readout"
	"qisim/internal/simrun"
	"qisim/internal/surface"
)

// crashCase adapts one public MC entry point to the suite: run it under the
// given Options and hand back the marshaled result (the exact bytes a CLI
// would print or qisimd would cache) plus the run status.
type crashCase struct {
	kind   string
	budget int
	shard  int
	seed   int64
	run    func(ctx context.Context, opt simrun.Options) (json.RawMessage, simrun.Status, error)
}

func crashCases() []crashCase {
	marshal := func(res any, status simrun.Status, err error) (json.RawMessage, simrun.Status, error) {
		if err != nil {
			return nil, simrun.Status{}, err
		}
		b, merr := json.Marshal(res)
		return b, status, merr
	}
	return []crashCase{
		{
			kind: "surface.mc", budget: 4000, shard: 128, seed: 11,
			run: func(ctx context.Context, opt simrun.Options) (json.RawMessage, simrun.Status, error) {
				res, err := surface.MonteCarloPhenomenologicalCtx(ctx, 3, 0.02, 0.02, 3, 4000, 11, opt)
				return marshal(res, res.Status, err)
			},
		},
		{
			kind: "pauli.mc", budget: 1536, shard: 128, seed: 7,
			run: func(ctx context.Context, opt simrun.Options) (json.RawMessage, simrun.Status, error) {
				c := pauli.DecoherenceChannel(25e-9, 280e-6, 175e-6)
				res, err := pauli.TrajectoryAverageFidelityCtx(ctx, c, 1536, 7, opt)
				return marshal(res, res.Status, err)
			},
		},
		{
			kind: "readout.mc", budget: 1536, shard: 128, seed: 5,
			run: func(ctx context.Context, opt simrun.Options) (json.RawMessage, simrun.Status, error) {
				cfg := readout.DefaultMultiRoundConfig()
				cfg.Shots, cfg.Seed = 1536, 5
				res, err := readout.MultiRoundErrorCtx(ctx, readout.DefaultChain(), readout.DefaultTiming(), cfg, opt)
				return marshal(res, res.Status, err)
			},
		},
	}
}

func (c crashCase) meta() checkpoint.Meta {
	return checkpoint.Meta{Kind: c.kind, Key: c.kind, Seed: c.seed, ShardSize: c.shard, Budget: c.budget}
}

// runKilled executes one checkpointed run of c that cancels itself once the
// committed prefix reaches killShard shards (killShard <= 0: cancel shortly
// after the first commit, landing mid-shard for the in-flight workers). It
// returns the interrupted status; the snapshot is left under dir.
func runKilled(t *testing.T, c crashCase, dir string, workers, killShard int) simrun.Status {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := simrun.Options{ShardSize: c.shard, Workers: workers, CheckEvery: 1}
	sv, loaded, err := checkpoint.Attach(&opt, dir, true, 1, c.meta())
	if err != nil {
		t.Fatalf("attach for kill run: %v", err)
	}
	save := opt.Checkpoint
	if killShard > 0 {
		opt.Checkpoint = func(st simrun.CheckpointState) {
			save(st)
			if !st.Final && st.Shards >= killShard {
				cancel()
			}
		}
	} else {
		// Mid-shard kill: fire the cancel asynchronously just after the first
		// commit, so the workers' in-flight shards are torn and discarded.
		first := make(chan struct{})
		var once sync.Once
		opt.Checkpoint = func(st simrun.CheckpointState) {
			save(st)
			once.Do(func() { close(first) })
		}
		go func() {
			<-first
			time.Sleep(500 * time.Microsecond)
			cancel()
		}()
	}
	_ = loaded // first life: nothing to resume
	_, st, err := c.run(ctx, opt)
	if err != nil {
		t.Fatalf("killed run errored instead of truncating: %v", err)
	}
	if err := sv.Err(); err != nil {
		t.Fatalf("checkpoint durability degraded during kill run: %v", err)
	}
	if sv.Saves() == 0 {
		t.Fatal("kill run wrote no snapshot")
	}
	return st
}

// resumeToEnd resumes c from the snapshot under dir and runs to completion.
func resumeToEnd(t *testing.T, c crashCase, dir string, workers int) (json.RawMessage, simrun.Status) {
	t.Helper()
	opt := simrun.Options{ShardSize: c.shard, Workers: workers, CheckEvery: 1}
	_, loaded, err := checkpoint.Attach(&opt, dir, true, 1, c.meta())
	if err != nil {
		t.Fatalf("attach for resume: %v", err)
	}
	if loaded == nil {
		t.Fatal("no snapshot found to resume from")
	}
	got, st, err := c.run(context.Background(), opt)
	if err != nil {
		t.Fatalf("resumed run (from %d shards): %v", loaded.Shards, err)
	}
	return got, st
}

// TestCrashResumeEquivalence is the headline property: kill at a seeded-
// random shard boundary, resume from disk, byte-identical JSON vs. the cold
// run — per kind, per worker count. With workers > 1 the boundary cancel
// additionally lands mid-shard for the other workers, whose torn shards must
// be discarded rather than committed.
func TestCrashResumeEquivalence(t *testing.T) {
	for _, c := range crashCases() {
		c := c
		t.Run(c.kind, func(t *testing.T) {
			cold, coldSt, err := c.run(context.Background(), simrun.Options{ShardSize: c.shard})
			if err != nil {
				t.Fatalf("cold run: %v", err)
			}
			if coldSt.Truncated || coldSt.Completed != c.budget {
				t.Fatalf("cold run did not complete: %+v", coldSt)
			}
			nShards := (c.budget + c.shard - 1) / c.shard
			rng := rand.New(rand.NewSource(99))
			for _, workers := range []int{1, 4, 7} {
				workers := workers
				kill := 1 + rng.Intn(nShards/2) // seeded-random boundary, always mid-run
				t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
					dir := t.TempDir()
					st := runKilled(t, c, dir, workers, kill)
					if !st.Truncated {
						// Workers can race past the cancel and finish; the
						// equivalence claim below still holds from the
						// complete snapshot, but say so.
						t.Logf("kill at shard %d lost the race, run completed (%d/%d)",
							kill, st.Completed, st.Requested)
					} else if st.Completed%c.shard != 0 {
						t.Fatalf("interrupted run kept a torn shard: %d shots committed", st.Completed)
					}
					got, gotSt := resumeToEnd(t, c, dir, workers)
					if gotSt.Truncated || gotSt.Completed != c.budget {
						t.Fatalf("resumed run did not complete: %+v", gotSt)
					}
					if !bytes.Equal(got, cold) {
						t.Fatalf("resumed result differs from cold run\ncold:    %s\nresumed: %s", cold, got)
					}
				})
			}
		})
	}
}

// TestCrashResumeMidShardAndChained covers the two nastier shapes on the
// surface decoder: (1) a mid-shard kill — the cancel lands while shards are
// in flight, so the committed prefix is whatever survived; (2) a chained
// double crash — kill, resume, kill again later, resume again. Both must
// still reproduce the cold run byte-for-byte.
func TestCrashResumeMidShardAndChained(t *testing.T) {
	c := crashCases()[0] // surface.mc
	cold, _, err := c.run(context.Background(), simrun.Options{ShardSize: c.shard})
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	t.Run("mid-shard", func(t *testing.T) {
		dir := t.TempDir()
		st := runKilled(t, c, dir, 4, 0) // async cancel: mid-shard
		if st.Completed == c.budget {
			// The cancel lost the race and the run finished (its final
			// partial shard is then a legitimate commit, not a torn one).
			// The resume equivalence below still holds from the complete
			// snapshot.
			t.Logf("mid-shard cancel lost the race, run completed (%d/%d)", st.Completed, c.budget)
		} else if st.Completed%c.shard != 0 {
			t.Fatalf("mid-shard kill committed a torn shard: %d shots", st.Completed)
		}
		got, _ := resumeToEnd(t, c, dir, 4)
		if !bytes.Equal(got, cold) {
			t.Fatalf("mid-shard resume differs from cold run\ncold:    %s\nresumed: %s", cold, got)
		}
	})

	t.Run("chained-double-crash", func(t *testing.T) {
		dir := t.TempDir()
		runKilled(t, c, dir, 7, 3) // first crash early

		// Second life: resume AND crash again, later in the plan.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opt := simrun.Options{ShardSize: c.shard, Workers: 7, CheckEvery: 1}
		sv, loaded, err := checkpoint.Attach(&opt, dir, true, 1, c.meta())
		if err != nil {
			t.Fatalf("attach second life: %v", err)
		}
		if loaded == nil {
			t.Fatal("second life found no snapshot")
		}
		save := opt.Checkpoint
		opt.Checkpoint = func(st simrun.CheckpointState) {
			save(st)
			if !st.Final && st.Shards >= loaded.Shards+4 {
				cancel()
			}
		}
		if _, _, err := c.run(ctx, opt); err != nil {
			t.Fatalf("second life: %v", err)
		}
		if err := sv.Err(); err != nil {
			t.Fatalf("second-life durability: %v", err)
		}

		// Third life: run to completion.
		got, _ := resumeToEnd(t, c, dir, 7)
		if !bytes.Equal(got, cold) {
			t.Fatalf("double-crash resume differs from cold run\ncold:    %s\nresumed: %s", cold, got)
		}
	})
}
