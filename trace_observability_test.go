// Observability regression: tracing must be a pure observer. A traced
// Monte-Carlo run returns results byte-identical to an untraced one (spans
// never touch the RNG stream or the merge order), and the per-shard span
// cost stays under 1% of the work a shard actually does.
package qisim_test

import (
	"context"
	"testing"
	"time"

	"qisim/internal/obs"
	"qisim/internal/simrun"
	"qisim/internal/surface"
)

// TestSurfaceMCDeterministicWithTracing: identical seeds with tracing off
// and on (serial and parallel) produce identical DecoderResults, and the
// recorded trace is structurally valid with one span per shard.
func TestSurfaceMCDeterministicWithTracing(t *testing.T) {
	const (
		d, p, q   = 5, 0.01, 0.01
		rounds    = 5
		shots     = 4096
		seed      = 17
		shardSize = 512
	)
	run := func(ctx context.Context, workers int) surface.DecoderResult {
		r, err := surface.MonteCarloPhenomenologicalCtx(ctx, d, p, q, rounds, shots, seed,
			simrun.Options{Workers: workers, ShardSize: shardSize})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	plain := run(context.Background(), 1)
	for _, workers := range []int{1, 4} {
		tr := obs.NewTracer(obs.TracerConfig{ID: "determinism"})
		traced := run(obs.WithTracer(context.Background(), tr), workers)
		if traced != plain {
			t.Fatalf("workers=%d: traced run diverged:\nplain  %+v\ntraced %+v", workers, plain, traced)
		}
		trace := tr.Snapshot()
		if err := trace.Check(); err != nil {
			t.Fatalf("workers=%d: trace invariants: %v", workers, err)
		}
		if n := trace.Count("shard"); n != shots/shardSize {
			t.Fatalf("workers=%d: %d shard spans, want %d", workers, n, shots/shardSize)
		}
		if _, ok := trace.Find("mc.run"); !ok {
			t.Fatalf("workers=%d: no mc.run span", workers)
		}
	}
}

// TestTracedShardOverheadUnderOnePercent pins the overhead contract from
// first principles: the engine opens exactly one span per shard, so the
// tracing tax per shard is one Start+End pair. Measuring that pair against
// the wall clock of a real default-sized shard keeps the assertion stable
// where a head-to-head timing of two full runs would drown in scheduler
// noise.
func TestTracedShardOverheadUnderOnePercent(t *testing.T) {
	// Cost of one traced span (amortised over many; the buffer is sized so
	// nothing drops and the overflow fast path never engages).
	const spans = 50000
	tr := obs.NewTracer(obs.TracerConfig{MaxSpans: spans + 1})
	start := time.Now()
	for i := 0; i < spans; i++ {
		s := tr.Start("shard", nil, obs.Int("shard", i), obs.Int("shots", 512))
		s.End()
	}
	perSpan := time.Since(start) / spans

	// Wall clock of one default-sized shard of the phenomenological decoder
	// (min of rounds to shed warm-up noise).
	shardShots := simrun.DefaultShardSize
	shardTime := time.Duration(1<<62 - 1)
	for round := 0; round < 3; round++ {
		begin := time.Now()
		if _, err := surface.MonteCarloPhenomenologicalCtx(context.Background(),
			5, 0.01, 0.01, 5, shardShots, 17, simrun.Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(begin); el < shardTime {
			shardTime = el
		}
	}

	overhead := float64(perSpan) / float64(shardTime)
	t.Logf("span cost %v, shard (%d shots) %v, overhead %.4f%%",
		perSpan, shardShots, shardTime, 100*overhead)
	if overhead >= 0.01 {
		t.Fatalf("per-shard tracing overhead %.3f%% >= 1%% (span %v vs shard %v)",
			100*overhead, perSpan, shardTime)
	}
}

// BenchmarkTracedShardOverhead times the same Monte-Carlo workload with
// tracing off and on; the delta between the two sub-benchmarks is the
// end-to-end tracing tax (expected in the noise floor, <1%).
func BenchmarkTracedShardOverhead(b *testing.B) {
	workload := func(ctx context.Context) {
		if _, err := surface.MonteCarloPhenomenologicalCtx(ctx,
			7, 0.008, 0.008, 7, 8192, 23, simrun.Options{Workers: 1, ShardSize: 512}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			workload(context.Background())
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := obs.NewTracer(obs.TracerConfig{ID: "bench"})
			workload(obs.WithTracer(context.Background(), tr))
		}
	})
}
