// Chaos network equivalence: the headline invariant of the chaos layer.
// A 4-worker fleet whose every coordinator RPC passes through seeded fault
// injection — client-side (drops, resets, duplicated deliveries, reordering,
// corrupted and truncated responses) AND server-side (latency, 5xx bursts,
// aborted responses, duplicated handler deliveries) — must produce a merged
// result JSON byte-identical to a standalone run, for every seeded schedule
// that does not permanently partition the fleet. A second test puts a lying
// worker on the wire and proves the spot-check/quarantine pipeline fires all
// the way up to the Prometheus surface.
package qisim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"qisim/internal/backoff"
	"qisim/internal/chaos"
	"qisim/internal/dist"
	"qisim/internal/service"
)

// chaosNetJob exercises both engine parallelism and multi-unit dispatch:
// 4000 shots / 128-shard → 32 shards → 8 leased units on UnitShards 4.
const chaosNetJob = `{"kind":"surface.mc","params":{"distance":3,"shots":4000,"shard_size":128,"seed":11,"workers":2}}`

// chaosNetSchedules are the seeded fault mixes of the equivalence matrix.
// Every schedule carries drops, latency, corruption and duplication (the
// four headline faults); each emphasizes a different regime and none is
// severe enough to permanently partition a retrying fleet.
func chaosNetSchedules() []struct {
	name   string
	server chaos.Spec // wraps the coordinator's /v1/dist/* endpoints
	client chaos.Spec // wraps every worker's RPC transport
} {
	return []struct {
		name   string
		server chaos.Spec
		client chaos.Spec
	}{
		{
			name:   "lossy-and-slow",
			server: chaos.Spec{Seed: 101, Latency: chaos.LatencySpec{P: 0.2, MinMS: 1, MaxMS: 8}, Error5xx: chaos.Burst5xxSpec{P: 0.03, Len: 2, Status: 503}},
			client: chaos.Spec{Seed: 102, Drop: 0.12, Reset: 0.05, Duplicate: 0.05, Corrupt: 0.03, Latency: chaos.LatencySpec{P: 0.2, MinMS: 1, MaxMS: 6}},
		},
		{
			name:   "corrupting-middlebox",
			server: chaos.Spec{Seed: 201, Abort: 0.05, Latency: chaos.LatencySpec{P: 0.1, MinMS: 1, MaxMS: 4}},
			client: chaos.Spec{Seed: 202, Corrupt: 0.1, Truncate: 0.06, Drop: 0.05, Duplicate: 0.05, Latency: chaos.LatencySpec{P: 0.1, MinMS: 1, MaxMS: 4}},
		},
		{
			name:   "duplicating-reorderer",
			server: chaos.Spec{Seed: 301, Error5xx: chaos.Burst5xxSpec{P: 0.04, Len: 2, Status: 503}},
			client: chaos.Spec{Seed: 302, Duplicate: 0.15, Reorder: chaos.ReorderSpec{P: 0.08, HoldMS: 20}, Drop: 0.05, Corrupt: 0.03, Latency: chaos.LatencySpec{P: 0.15, MinMS: 1, MaxMS: 5}},
		},
	}
}

// startChaosNetWorkers launches n dist.Workers whose every coordinator RPC
// crosses a seeded chaos transport (each worker gets its own schedule seed
// so the fleet's fault patterns are decorrelated but reproducible).
func startChaosNetWorkers(t *testing.T, base string, n int, spec chaos.Spec) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("chaotic-%d", i)
		wspec := spec
		wspec.Seed = spec.Seed*1000 + int64(i)
		client := &dist.Client{
			Base:        base,
			HTTP:        &http.Client{Transport: chaos.NewTransport(wspec, nil)},
			MaxAttempts: 6,
			Backoff:     backoff.Policy{Base: 5 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2},
		}
		// Registration itself rides the chaotic transport: retries must
		// punch through the schedule's drop/corrupt probability.
		if err := client.Register(ctx, dist.WorkerInfo{ID: id}); err != nil {
			cancel()
			t.Fatalf("register %s through chaos: %v", id, err)
		}
		w, err := dist.NewWorker(dist.WorkerConfig{
			ID: id, Coordinator: client, Cores: service.BuildCore,
			PollInterval: 2 * time.Millisecond, Seed: int64(i + 1),
			Backoff: backoff.Policy{Base: 5 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2},
		})
		if err != nil {
			cancel()
			t.Fatalf("NewWorker: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck // ends by cancellation
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// TestChaosNetworkEquivalence pins the chaos layer's headline invariant:
// under every seeded schedule the 4-worker merged result is byte-identical
// to standalone.
func TestChaosNetworkEquivalence(t *testing.T) {
	_, solo := chaosServer(t, service.Config{Workers: 2})
	want := chaosRun(t, solo.URL, chaosNetJob)
	if len(want) == 0 {
		t.Fatal("standalone run produced no body")
	}

	for _, sched := range chaosNetSchedules() {
		sched := sched
		t.Run(sched.name, func(t *testing.T) {
			if err := sched.server.Validate(); err != nil {
				t.Fatalf("server spec: %v", err)
			}
			if err := sched.client.Validate(); err != nil {
				t.Fatalf("client spec: %v", err)
			}
			_, ts := chaosServer(t, service.Config{Workers: 2, Dist: service.DistConfig{
				Enabled: true, LeaseTTL: 500 * time.Millisecond, UnitShards: 4,
				SpotCheck: 0.25, // honest fleet: audits must all pass
				Chaos:     &sched.server,
			}})
			startChaosNetWorkers(t, ts.URL, 4, sched.client)
			got := chaosRun(t, ts.URL, chaosNetJob)
			if !bytes.Equal(got, want) {
				t.Fatalf("chaotic fleet differs from standalone:\n%s\n%s", got, want)
			}
			// The fleet must not have been quarantined: every injected fault
			// here is network-shaped, and honest workers survive audits.
			if v := scrapeMetric(t, ts.URL, "qisimd_dist_quarantine_total"); v != 0 {
				t.Fatalf("honest fleet quarantined %v workers", v)
			}
		})
	}
}

// TestChaosCorruptWorkerQuarantined drives a Byzantine worker through the
// real wire API: it reports forged shard states (well-formed container,
// honest digest over the lie), the coordinator's spot-check re-executes the
// window, the worker is quarantined, the job completes on the local lane
// with standalone bytes, and the Prometheus surface records the event.
func TestChaosCorruptWorkerQuarantined(t *testing.T) {
	_, solo := chaosServer(t, service.Config{Workers: 2})
	want := chaosRun(t, solo.URL, chaosNetJob)

	_, ts := chaosServer(t, service.Config{Workers: 2, Dist: service.DistConfig{
		Enabled: true, LeaseTTL: 5 * time.Second, UnitShards: 4,
		SpotCheck: 1, // audit everything: the first forged unit must be caught
	}})
	client := registerWorker(t, ts.URL, "liar")

	done := make(chan []byte, 1)
	go func() { done <- chaosRun(t, ts.URL, chaosNetJob) }()

	g := claimOneUnit(t, client, "liar")
	n := g.End - g.Start
	states := make([]json.RawMessage, n)
	events := make([]int, n)
	for i := range states {
		states[i] = json.RawMessage(fmt.Sprintf("%d", 9_999_000+i))
		events[i] = 1
	}
	body, err := dist.EncodeUnitResult(dist.UnitResult{Kind: g.Kind, Key: g.Key,
		Start: g.Start, End: g.End, States: states, Events: events, Worker: "liar"})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Report(context.Background(), "liar", body); err != nil {
		t.Fatal(err)
	}

	// With its only worker shunned the coordinator finishes locally —
	// byte-identical, because the forged unit's truth came from the
	// coordinator's own re-execution.
	select {
	case got := <-done:
		if !bytes.Equal(got, want) {
			t.Fatalf("post-quarantine result differs from standalone:\n%s\n%s", got, want)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("job did not finish after quarantine")
	}

	if v := scrapeMetric(t, ts.URL, "qisimd_dist_quarantine_total"); v < 1 {
		t.Fatalf("qisimd_dist_quarantine_total = %v, want >= 1", v)
	}
	if v := scrapeMetric(t, ts.URL, `qisimd_dist_spotcheck_total{result="fail"}`); v < 1 {
		t.Fatalf("failed spot-check not exported: %v", v)
	}
}

// scrapeMetric fetches /metrics and returns the named series' value (0 if
// the series is absent, which for counters is the same statement).
func scrapeMetric(t *testing.T, base, series string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + `(?:\s+)(\S+)$`)
	m := re.FindSubmatch(raw)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("metric %s: bad value %q", series, m[1])
	}
	return v
}
